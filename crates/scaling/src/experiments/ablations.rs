//! Ablation studies over the design choices DESIGN.md calls out — not
//! figures from the paper, but the sensitivity sweeps a reviewer would ask
//! for: how much each machine feature contributes to the node scheme's win.

use fugaku::machine::MachineConfig;
use fugaku::tni::TniDriving;
use fugaku::tofu::Torus3d;
use minimd::domain::Decomposition;

use dpmd_comm::node_based::{self, NodeSchemeConfig};
use dpmd_comm::plan::HaloPlan;
use dpmd_comm::three_stage;
use fugaku::utofu::CommApi;

use crate::report::{us, Table};

/// Build the strong-scaling 96-node configuration shared by the ablations.
fn strong_scaling_setup(
    machine: &MachineConfig,
) -> (Decomposition, Torus3d, HaloPlan, Vec<usize>, f64) {
    let _ = machine;
    let rc = 8.0;
    let nodes = MachineConfig::paper_96_node_topology();
    let bx = minimd::simbox::SimBox::new(
        0.5 * rc * 2.0 * nodes[0] as f64,
        0.5 * rc * 2.0 * nodes[1] as f64,
        0.5 * rc * nodes[2] as f64,
    );
    let cells = [
        (bx.lengths().x / 3.615).round() as usize,
        (bx.lengths().y / 3.615).round() as usize,
        (bx.lengths().z / 3.615).round() as usize,
    ];
    let (_, mut atoms) = minimd::lattice::fcc_lattice(cells[0], cells[1], cells[2], 3.615);
    let s = [
        bx.lengths().x / (cells[0] as f64 * 3.615),
        bx.lengths().y / (cells[1] as f64 * 3.615),
        bx.lengths().z / (cells[2] as f64 * 3.615),
    ];
    for p in &mut atoms.pos {
        p.x *= s[0];
        p.y *= s[1];
        p.z *= s[2];
        *p = bx.wrap(*p);
    }
    let decomp = Decomposition::new(bx, nodes);
    let torus = Torus3d::new(nodes);
    let plan = HaloPlan::build(&decomp, &atoms, rc);
    let apr: Vec<usize> = decomp.counts_per_rank(&atoms).into_iter().map(|c| c as usize).collect();
    let density = atoms.nlocal as f64 / bx.volume();
    (decomp, torus, plan, apr, density)
}

/// Ablation 1: node-scheme time vs number of TNIs per node (1..=6).
/// Quantifies how much of the win comes from the six RDMA engines.
pub fn tni_sweep() -> Vec<(usize, u64)> {
    let base = MachineConfig::default();
    let (decomp, torus, plan, apr, _) = strong_scaling_setup(&base);
    (1..=6)
        .map(|tnis| {
            let mut m = base;
            m.tofu.tnis_per_node = tnis;
            let t = node_based::simulate(&m, &decomp, &torus, &plan, &apr, NodeSchemeConfig::paper_best())
                .comm
                .total_ns;
            (tnis, t)
        })
        .collect()
}

/// Ablation 2: node-scheme time vs intra-node sync latency (the cost the
/// scheme pays twice per exchange) — how sensitive the 81% claim is to the
/// barrier implementation.
pub fn sync_latency_sweep() -> Vec<(u64, u64, f64)> {
    let base = MachineConfig::default();
    let (decomp, torus, plan, apr, density) = strong_scaling_setup(&base);
    [0u64, 400, 800, 1600, 3200, 6400]
        .into_iter()
        .map(|sync_ns| {
            let mut m = base;
            m.chip.sync_latency_ns = sync_ns as f64;
            let node =
                node_based::simulate(&m, &decomp, &torus, &plan, &apr, NodeSchemeConfig::paper_best())
                    .comm
                    .total_ns;
            let baseline =
                three_stage::simulate(&m, &decomp, &torus, 8.0, density, CommApi::Mpi).total_ns;
            (sync_ns, node, 1.0 - node as f64 / baseline as f64)
        })
        .collect()
}

/// Ablation 3: NIC cache capacity vs the Fig. 8 knee position — the design
/// margin of the RDMA memory pool.
pub fn nic_cache_sweep() -> Vec<(usize, Option<usize>)> {
    [16usize, 32, 64, 88, 128, 256]
        .into_iter()
        .map(|entries| {
            let m = MachineConfig { nic_cache_entries: entries, ..Default::default() };
            let pts = super::fig8::run(&m, 200);
            (entries, super::fig8::knee(&pts))
        })
        .collect()
}

/// Ablation 4: single- vs multi-thread TNI driving across leader counts —
/// the full 2×3 grid behind Fig. 7's lb/sg bars.
pub fn driving_grid() -> Vec<(usize, TniDriving, u64)> {
    let machine = MachineConfig::default();
    let (decomp, torus, plan, apr, _) = strong_scaling_setup(&machine);
    let mut out = Vec::new();
    for leaders in [1usize, 2, 4] {
        for driving in [TniDriving::SingleThread, TniDriving::ThreadPerTni] {
            let cfg = NodeSchemeConfig { leaders, driving, lb_broadcast: true };
            let t = node_based::simulate(&machine, &decomp, &torus, &plan, &apr, cfg).comm.total_ns;
            out.push((leaders, driving, t));
        }
    }
    out
}

/// Render all ablations as one report.
pub fn table() -> Table {
    let mut t = Table::new("Ablations — design-choice sensitivity", &["ablation", "setting", "result"]);
    for (tnis, ns) in tni_sweep() {
        t.row(vec!["TNIs/node".into(), tnis.to_string(), us(ns as f64)]);
    }
    for (sync, ns, red) in sync_latency_sweep() {
        t.row(vec![
            "sync latency".into(),
            format!("{sync} ns"),
            format!("{} ({:.0}% vs MPI)", us(ns as f64), red * 100.0),
        ]);
    }
    for (entries, knee) in nic_cache_sweep() {
        t.row(vec![
            "NIC cache entries".into(),
            entries.to_string(),
            knee.map_or("no knee ≤ 124".into(), |k| format!("knee at {k}")),
        ]);
    }
    for (leaders, driving, ns) in driving_grid() {
        t.row(vec![
            "leaders × driving".into(),
            format!("{leaders} × {driving:?}"),
            us(ns as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_tnis_never_hurt_and_help_overall() {
        let sweep = tni_sweep();
        for w in sweep.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1000, "TNI {} slower than {}: {:?}", w[1].0, w[0].0, sweep);
        }
        assert!(
            sweep[0].1 > sweep[5].1,
            "6 TNIs must beat 1: {:?}",
            sweep
        );
    }

    #[test]
    fn sync_latency_eats_the_comm_reduction() {
        let sweep = sync_latency_sweep();
        // Node time grows monotonically with sync cost; the reduction vs
        // the (sync-free) baseline shrinks.
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1, "{sweep:?}");
        }
        assert!(sweep[0].2 > sweep[5].2, "reduction must shrink with sync cost");
    }

    #[test]
    fn nic_cache_capacity_moves_the_knee() {
        let sweep = nic_cache_sweep();
        // Small caches knee early; at 256 entries (≥ 2×124) no knee at all.
        let small = sweep[0].1.expect("16-entry cache must knee");
        let large = sweep.last().unwrap().1;
        assert!(small <= 16, "knee at {small} for 16 entries");
        assert!(large.is_none(), "256 entries must cover 124 neighbours: {large:?}");
    }

    #[test]
    fn thread_per_tni_wins_at_every_leader_count() {
        for chunk in driving_grid().chunks(2) {
            let (single, multi) = (&chunk[0], &chunk[1]);
            assert_eq!(single.1, TniDriving::SingleThread);
            assert!(multi.2 <= single.2, "leaders {}: {:?}", single.0, chunk);
        }
    }
}
