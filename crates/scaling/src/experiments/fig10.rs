//! Fig. 10 — the distribution of pair time across MPI ranks, load-balanced
//! vs not, at {1, 2, 8} atoms/core.

use dpmd_balance::pair_time::PairTimeModel;

use crate::report::{f, Table};

/// A pair-time distribution rendered as percentiles.
#[derive(Clone, Debug)]
pub struct Fig10Series {
    /// Atoms per core.
    pub atoms_per_core: usize,
    /// Load balance on?
    pub lb: bool,
    /// (p5, p25, p50, p75, p95, max) of per-rank pair time, ns.
    pub percentiles: [f64; 6],
    /// SDMR of the full distribution, percent (the paper's metric).
    pub sdmr: f64,
}

fn percentiles(mut xs: Vec<f64>) -> [f64; 6] {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| xs[((xs.len() - 1) as f64 * q).round() as usize];
    [pick(0.05), pick(0.25), pick(0.50), pick(0.75), pick(0.95), *xs.last().unwrap()]
}

/// Run the figure from the same configurations as Table III.
pub fn run(seed: u64) -> Vec<Fig10Series> {
    let model = PairTimeModel::new(500_000.0);
    let mut out = Vec::new();
    for (apc, apr) in [(1usize, 12usize), (2, 24), (8, 96)] {
        let (decomp, atoms) = super::table3::build_public(apr, seed ^ apr as u64);
        let counts = decomp.counts_per_rank(&atoms);
        let t_nolb = model.rank_times_nolb(&decomp, &counts, seed);
        let t_lb = model.rank_times_lb(&decomp, &counts, seed);
        out.push(Fig10Series {
            atoms_per_core: apc,
            lb: false,
            sdmr: dpmd_balance::stats::sdmr(&t_nolb),
            percentiles: percentiles(t_nolb),
        });
        out.push(Fig10Series {
            atoms_per_core: apc,
            lb: true,
            sdmr: dpmd_balance::stats::sdmr(&t_lb),
            percentiles: percentiles(t_lb),
        });
    }
    out
}

/// Render the distribution table.
pub fn table(series: &[Fig10Series]) -> Table {
    let mut t = Table::new(
        "Fig. 10 — pair-time distribution across ranks (ms)",
        &["series", "p5", "p25", "p50", "p75", "p95", "max"],
    );
    for s in series {
        let name = format!("{}{}", if s.lb { "lb-" } else { "nolb-" }, s.atoms_per_core);
        let mut cells = vec![name];
        cells.extend(s.percentiles.iter().map(|&x| f(x / 1e6, 2)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_narrows_the_distribution() {
        // The paper's metric is SDMR (max − min stays discretized at the
        // 1-vs-2-atoms-per-thread boundary even after lb — Table III shows
        // the busiest thread still holds 2 atoms at 1 atom/core).
        let series = run(42);
        for pair in series.chunks(2) {
            let (no, yes) = (&pair[0], &pair[1]);
            assert!(
                yes.sdmr < no.sdmr,
                "apc {}: SDMR {} vs {}",
                no.atoms_per_core,
                yes.sdmr,
                no.sdmr
            );
        }
    }

    #[test]
    fn relative_imbalance_shrinks_with_atoms_per_core() {
        // Fig. 10: the 8 atoms/core distributions are much tighter in
        // relative terms than the 1 atom/core ones.
        let series = run(42);
        let rel = |s: &Fig10Series| (s.percentiles[5] - s.percentiles[0]) / s.percentiles[2];
        let one = rel(&series[0]);
        let eight = rel(&series[4]);
        assert!(eight < one, "{eight} vs {one}");
    }

    #[test]
    fn percentiles_are_sorted() {
        for s in run(1) {
            for w in s.percentiles.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }
}
