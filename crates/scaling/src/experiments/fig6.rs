//! Fig. 6 — radial distribution functions of the water system under
//! Double, MIX-fp32 and MIX-fp16 precision.
//!
//! The same trained water model drives three MD runs that differ only in
//! the inference precision; the O–O g(r) curves must overlap (the paper:
//! "the three curves overlap perfectly").

use deepmd::config::DeepPotConfig;
use deepmd::dataset::water_frames;
use deepmd::engine::DpEngine;
use deepmd::model::DeepPotModel;
use deepmd::train::{fit_energy_bias, train, TrainConfig};
use minimd::compute::Rdf;
use minimd::integrate::{init_velocities, Thermostat, VelocityVerlet};
use minimd::lattice::water_box;
use minimd::sim::Simulation;
use minimd::units::FEMTOSECOND;
use nnet::precision::Precision;

use crate::report::{f as ff, Table};

/// Effort knobs.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Config {
    /// Water molecules per box edge.
    pub cells: usize,
    /// MD steps per precision run.
    pub steps: u64,
    /// RDF sampling stride.
    pub sample_every: u64,
    /// Training frames / epochs for the model.
    pub train_frames: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config { cells: 4, steps: 400, sample_every: 20, train_frames: 4, epochs: 60, seed: 6 }
    }
}

/// One precision's sampled RDF.
#[derive(Clone, Debug)]
pub struct RdfCurve {
    /// Precision mode.
    pub precision: Precision,
    /// (r, g(r)) samples, O–O.
    pub curve: Vec<(f64, f64)>,
}

/// Train a small water model (shared across the three runs).
pub fn trained_water_model(cfg: &Fig6Config) -> DeepPotModel {
    let mut model = DeepPotModel::new(DeepPotConfig::tiny(2, 6.0));
    let frames = water_frames(cfg.train_frames, 3, 0, cfg.seed);
    fit_energy_bias(&mut model, &frames);
    train(&mut model, &frames, TrainConfig { epochs: cfg.epochs, lr: 3e-3, log_every: 0 });
    model
}

/// Run MD at one precision and sample the O–O RDF.
pub fn rdf_at(model: &DeepPotModel, precision: Precision, cfg: &Fig6Config) -> RdfCurve {
    let (bx, mut atoms) = water_box(cfg.cells, cfg.cells, cfg.cells, cfg.seed ^ 0xbeef);
    init_velocities(&mut atoms, 300.0, cfg.seed);
    let engine = DpEngine::new(model.clone(), precision);
    let mut vv = VelocityVerlet::new(0.5 * FEMTOSECOND);
    vv.thermostat = Thermostat::Berendsen { t_target: 300.0, tau_ps: 0.05 };
    let mut sim = Simulation::new(bx, atoms, Box::new(engine), vv, 1.0, 50);
    let mut rdf = Rdf::new(Some(0), Some(0), 6.0, 120);
    for step in 1..=cfg.steps {
        sim.step();
        if step % cfg.sample_every == 0 {
            rdf.sample(&sim.atoms, &sim.bx);
        }
    }
    RdfCurve { precision, curve: rdf.finish() }
}

/// The full figure: all three precisions from one trained model.
pub fn run(cfg: Fig6Config) -> Vec<RdfCurve> {
    let model = trained_water_model(&cfg);
    Precision::ALL.iter().map(|&p| rdf_at(&model, p, &cfg)).collect()
}

/// Maximum pointwise |g_a − g_b| between two curves (same binning).
pub fn max_deviation(a: &RdfCurve, b: &RdfCurve) -> f64 {
    a.curve
        .iter()
        .zip(&b.curve)
        .map(|((_, ga), (_, gb))| (ga - gb).abs())
        .fold(0.0, f64::max)
}

/// Render a compact comparison (subsampled bins).
pub fn table(curves: &[RdfCurve]) -> Table {
    let mut t = Table::new(
        "Fig. 6 — O-O RDF of water under three precisions",
        &["r (Å)", "g Double", "g MIX-fp32", "g MIX-fp16"],
    );
    let n = curves[0].curve.len();
    for k in (0..n).step_by(6) {
        t.row(vec![
            ff(curves[0].curve[k].0, 2),
            ff(curves[0].curve[k].1, 3),
            ff(curves[1].curve[k].1, 3),
            ff(curves[2].curve[k].1, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_precision_curves_overlap() {
        // Scaled-down effort: short trajectories, small box.
        let cfg = Fig6Config { cells: 3, steps: 80, sample_every: 10, train_frames: 2, epochs: 20, seed: 3 };
        let curves = run(cfg);
        assert_eq!(curves.len(), 3);
        let d32 = max_deviation(&curves[0], &curves[1]);
        let d16 = max_deviation(&curves[0], &curves[2]);
        // Chaotic MD at different rounding diverges eventually; over short
        // horizons the *structure* must coincide (paper: curves overlap).
        assert!(d32 < 0.8, "fp32 RDF deviation {d32}");
        assert!(d16 < 0.8, "fp16 RDF deviation {d16}");
        // And the curves are real RDFs: non-negative, finite.
        for c in &curves {
            assert!(c.curve.iter().all(|&(_, g)| g.is_finite() && g >= 0.0));
        }
    }
}
