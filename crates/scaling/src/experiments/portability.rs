//! Portability study (paper §V): does the node-based scheme still pay off
//! on machines that are not Fugaku?
//!
//! The paper argues the scheme ports to any machine with (a) fast intra-node
//! transport (NoC / GPU P2P) and (b) multiple NICs worth driving from
//! multiple threads — naming Frontier (Infinity Fabric + 4× Slingshot) and
//! the new Sunway (NoC + 2× RDMA NICs). We parameterize the machine model
//! accordingly and re-run the Fig. 7 strong-scaling comparison.

use fugaku::machine::MachineConfig;
use fugaku::tofu::Torus3d;
use fugaku::utofu::CommApi;
use minimd::domain::Decomposition;

use dpmd_comm::node_based::{self, NodeSchemeConfig};
use dpmd_comm::plan::HaloPlan;
use dpmd_comm::{p2p, three_stage};

use crate::report::{us, Table};

/// One machine's strong-scaling comparison.
#[derive(Clone, Debug)]
pub struct PortabilityRow {
    /// Machine label.
    pub machine: &'static str,
    /// MPI 3-stage baseline, ns.
    pub baseline_ns: u64,
    /// p2p, ns.
    pub p2p_ns: u64,
    /// Node-based scheme, ns.
    pub node_ns: u64,
}

impl PortabilityRow {
    /// Fractional reduction of the node scheme vs the 3-stage baseline.
    pub fn reduction(&self) -> f64 {
        1.0 - self.node_ns as f64 / self.baseline_ns as f64
    }
}

fn strong_setup() -> (Decomposition, Torus3d, HaloPlan, Vec<usize>, f64) {
    let rc = 8.0;
    let nodes = MachineConfig::paper_96_node_topology();
    let bx = minimd::simbox::SimBox::new(
        0.5 * rc * 2.0 * nodes[0] as f64,
        0.5 * rc * 2.0 * nodes[1] as f64,
        0.5 * rc * nodes[2] as f64,
    );
    let cells = [
        (bx.lengths().x / 3.615).round() as usize,
        (bx.lengths().y / 3.615).round() as usize,
        (bx.lengths().z / 3.615).round() as usize,
    ];
    let (_, mut atoms) = minimd::lattice::fcc_lattice(cells[0], cells[1], cells[2], 3.615);
    let s = [
        bx.lengths().x / (cells[0] as f64 * 3.615),
        bx.lengths().y / (cells[1] as f64 * 3.615),
        bx.lengths().z / (cells[2] as f64 * 3.615),
    ];
    for p in &mut atoms.pos {
        p.x *= s[0];
        p.y *= s[1];
        p.z *= s[2];
        *p = bx.wrap(*p);
    }
    let decomp = Decomposition::new(bx, nodes);
    let torus = Torus3d::new(nodes);
    let plan = HaloPlan::build(&decomp, &atoms, rc);
    let apr: Vec<usize> = decomp.counts_per_rank(&atoms).into_iter().map(|c| c as usize).collect();
    let density = atoms.nlocal as f64 / bx.volume();
    (decomp, torus, plan, apr, density)
}

/// Run the comparison on one machine configuration.
pub fn run_machine(label: &'static str, machine: &MachineConfig) -> PortabilityRow {
    let (decomp, torus, plan, apr, density) = strong_setup();
    // A machine with fewer TNIs should also drive fewer comm threads.
    let cfg = NodeSchemeConfig::paper_best();
    PortabilityRow {
        machine: label,
        baseline_ns: three_stage::simulate(machine, &decomp, &torus, 8.0, density, CommApi::Mpi)
            .total_ns,
        p2p_ns: p2p::simulate(machine, &decomp, &torus, &plan, CommApi::Utofu).total_ns,
        node_ns: node_based::simulate(machine, &decomp, &torus, &plan, &apr, cfg).comm.total_ns,
    }
}

/// All three machines.
pub fn run() -> Vec<PortabilityRow> {
    vec![
        run_machine("Fugaku", &MachineConfig::default()),
        run_machine("Frontier-like", &MachineConfig::frontier_like()),
        run_machine("Sunway-like", &MachineConfig::sunway_like()),
    ]
}

/// Render the table.
pub fn table(rows: &[PortabilityRow]) -> Table {
    let mut t = Table::new(
        "Portability (paper §V) — node scheme across machine models",
        &["machine", "3-stage MPI", "p2p", "node-based", "reduction"],
    );
    for r in rows {
        t.row(vec![
            r.machine.to_string(),
            us(r.baseline_ns as f64),
            us(r.p2p_ns as f64),
            us(r.node_ns as f64),
            format!("{:.0}%", r.reduction() * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_scheme_wins_on_every_machine_model() {
        // §V's claim: with fast intra-node transport and multiple NICs, the
        // scheme's benefit carries over.
        for row in run() {
            assert!(
                row.node_ns < row.baseline_ns,
                "{}: node {} vs baseline {}",
                row.machine,
                row.node_ns,
                row.baseline_ns
            );
            assert!(row.reduction() > 0.25, "{}: reduction {:.2}", row.machine, row.reduction());
        }
    }

    #[test]
    fn fugaku_leads_in_absolute_comm_time() {
        // Six TNIs + sub-µs puts: Fugaku's absolute halo time should be the
        // smallest of the three models at the strong-scaling point.
        let rows = run();
        let fugaku = rows.iter().find(|r| r.machine == "Fugaku").unwrap();
        for other in rows.iter().filter(|r| r.machine != "Fugaku") {
            assert!(fugaku.node_ns <= other.node_ns, "{}: {} < {}", other.machine, other.node_ns, fugaku.node_ns);
        }
    }
}
