//! Table III — pair time and atom-count statistics across MPI ranks, with
//! and without intra-node load balance, at 12/24/96 atoms per rank.

use minimd::atoms::Atoms;
use minimd::domain::Decomposition;
use minimd::simbox::SimBox;

use dpmd_balance::assign::lb_rank_loads;
use dpmd_balance::pair_time::PairTimeModel;
use dpmd_balance::stats::Summary;

use crate::report::{f, Table};

/// One half-row of Table III (a (case, lb) combination).
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Atoms per core (1, 2, 8).
    pub atoms_per_core: usize,
    /// Load balance on?
    pub lb: bool,
    /// Pair-time summary (units of 0.01 s in the paper; ns here).
    pub pair: Summary,
    /// Atom-count summary.
    pub natom: Summary,
}

/// Build a uniform-density random configuration at the given atoms/rank
/// over the 96-node topology (random placement reproduces the Poisson
/// fluctuations the paper's fine-grained sub-boxes see).
fn build(atoms_per_rank: usize, seed: u64) -> (Decomposition, Atoms) {
    use minimd::atoms::copper_species;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let nodes = [4usize, 6, 4];
    let decomp = Decomposition::new(SimBox::new(64.0, 96.0, 64.0), nodes);
    let total = atoms_per_rank * decomp.num_ranks();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut atoms = Atoms::new(copper_species());
    let l = decomp.bx.lengths();
    for i in 0..total {
        atoms.push_local(
            i as u64 + 1,
            0,
            minimd::vec3::Vec3::new(
                rng.random_range(0.0..l.x),
                rng.random_range(0.0..l.y),
                rng.random_range(0.0..l.z),
            ),
            minimd::vec3::Vec3::ZERO,
        );
    }
    (decomp, atoms)
}

/// Public access to the configuration builder (shared with Fig. 10, which
/// plots the distributions behind this table's summaries).
pub fn build_public(atoms_per_rank: usize, seed: u64) -> (Decomposition, Atoms) {
    build(atoms_per_rank, seed)
}

/// Run the table for the paper's three cases.
pub fn run(seed: u64) -> Vec<Table3Row> {
    let model = PairTimeModel::new(500_000.0); // ~0.5 ms/atom inference
    let mut rows = Vec::new();
    for (apc, apr) in [(1usize, 12usize), (2, 24), (8, 96)] {
        let (decomp, atoms) = build(apr, seed ^ apr as u64);
        let counts = decomp.counts_per_rank(&atoms);
        // Without lb.
        let t_nolb = model.rank_times_nolb(&decomp, &counts, seed);
        rows.push(Table3Row {
            atoms_per_core: apc,
            lb: false,
            pair: Summary::of(&t_nolb),
            natom: Summary::of_counts(&counts),
        });
        // With lb: counts per rank become the node-box even split.
        let lb_counts = lb_rank_loads(&decomp, &counts);
        let t_lb = model.rank_times_lb(&decomp, &counts, seed);
        rows.push(Table3Row {
            atoms_per_core: apc,
            lb: true,
            pair: Summary::of(&t_lb),
            natom: Summary::of_counts(&lb_counts),
        });
    }
    rows
}

/// The headline claim of §III-C/§VI: the reduction of the natom SDMR with
/// load balance, averaged over the paper's cases ("79.7% reduction of
/// atomic dispersion").
pub fn dispersion_reduction(rows: &[Table3Row]) -> f64 {
    let mut reds = Vec::new();
    for pair in rows.chunks(2) {
        let (no, yes) = (&pair[0], &pair[1]);
        debug_assert!(!no.lb && yes.lb);
        reds.push(1.0 - yes.natom.sdmr / no.natom.sdmr);
    }
    reds.iter().sum::<f64>() / reds.len() as f64
}

/// Render in the paper's layout.
pub fn table(rows: &[Table3Row]) -> Table {
    let mut t = Table::new(
        "Table III — pair time (ms) and atom counts across MPI ranks",
        &["case", "lb", "type", "Min", "Avg", "Max", "SDMR%"],
    );
    for r in rows {
        let case = format!("{} atom/core ({}/rank)", r.atoms_per_core, r.natom.avg.round());
        let lb = if r.lb { "yes" } else { "no" };
        t.row(vec![
            case.clone(),
            lb.into(),
            "pair".into(),
            f(r.pair.min / 1e6, 2),
            f(r.pair.avg / 1e6, 2),
            f(r.pair.max / 1e6, 2),
            f(r.pair.sdmr, 2),
        ]);
        t.row(vec![
            case,
            lb.into(),
            "natom".into(),
            f(r.natom.min, 0),
            f(r.natom.avg, 2),
            f(r.natom.max, 0),
            f(r.natom.sdmr, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_halves_pair_time_sdmr_and_crushes_natom_sdmr() {
        let rows = run(7);
        for pair in rows.chunks(2) {
            let (no, yes) = (&pair[0], &pair[1]);
            assert!(yes.pair.sdmr < no.pair.sdmr, "pair SDMR {} vs {}", yes.pair.sdmr, no.pair.sdmr);
            assert!(
                yes.natom.sdmr < 0.6 * no.natom.sdmr,
                "natom SDMR {} vs {}",
                yes.natom.sdmr,
                no.natom.sdmr
            );
            // Totals preserved.
            assert!((yes.natom.avg - no.natom.avg).abs() < 1e-9);
        }
    }

    #[test]
    fn max_pair_time_drops_at_strong_scaling() {
        let rows = run(11);
        // 1 and 2 atoms/core cases (paper: max pair −16% / −12%).
        for case in 0..2 {
            let (no, yes) = (&rows[2 * case], &rows[2 * case + 1]);
            assert!(yes.pair.max <= no.pair.max, "case {case}");
            let gain = 1.0 - yes.pair.max / no.pair.max;
            assert!((0.0..=0.6).contains(&gain), "case {case}: gain {gain}");
        }
    }

    #[test]
    fn dispersion_reduction_near_paper_value() {
        let rows = run(3);
        let red = dispersion_reduction(&rows);
        // Paper: 79.7% reduction of atomic dispersion (we average the three
        // cases; random placement gives the same order).
        assert!((0.40..=0.95).contains(&red), "dispersion reduction {red:.3}");
    }

    #[test]
    fn paper_shape_at_1_atom_per_core() {
        // Table III, 1 atom/core: natom SDMR ~80% before, ~24% after; the
        // busiest rank still holds more than 12 atoms afterwards (≥ 2
        // atoms on some thread).
        let rows = run(5);
        let (no, yes) = (&rows[0], &rows[1]);
        assert!(no.natom.sdmr > 15.0, "pre-lb SDMR {}", no.natom.sdmr);
        assert!(yes.natom.max >= 12.0, "post-lb max {}", yes.natom.max);
    }
}
