//! Weak scaling — not a paper figure (the paper is a strong-scaling study),
//! but the natural complement its §I cites from the baseline work [33]:
//! grow the system with the machine at fixed atoms/core and watch the
//! per-step time stay flat.

use fugaku::tofu::Torus3d;
use minimd::domain::Decomposition;

use dpmd_comm::plan::HaloPlan;

use crate::kernels::OptLevel;
use crate::report::{f, us, Table};
use crate::step_model::StepModel;
use crate::systems::SystemSpec;

/// One weak-scaling point.
#[derive(Clone, Copy, Debug)]
pub struct WeakPoint {
    /// Node count.
    pub nodes: usize,
    /// Atoms in the grown system.
    pub natoms: usize,
    /// Per-step time, ns (comm_lb).
    pub step_ns: f64,
}

/// Run weak scaling at `atoms_per_core` across node grids.
pub fn run(spec: SystemSpec, atoms_per_core: usize, grids: &[[usize; 3]]) -> Vec<WeakPoint> {
    let model = StepModel::new(spec);
    grids
        .iter()
        .map(|&dims| {
            let nodes: usize = dims.iter().product();
            let target = atoms_per_core * nodes * 48;
            let (nx, ny, nz) = minimd::lattice::fcc_cells_for(target);
            let (bx, atoms) = minimd::lattice::fcc_lattice(nx, ny, nz, 3.615);
            let decomp = Decomposition::new(bx, dims);
            let torus = Torus3d::new(dims);
            let counts = decomp.counts_per_rank(&atoms);
            let plan = HaloPlan::build(&decomp, &atoms, spec.rcut);
            let b = model.evaluate_with(&decomp, &torus, &counts, &plan, OptLevel::CommLb);
            WeakPoint { nodes, natoms: atoms.nlocal, step_ns: b.total_ns() }
        })
        .collect()
}

/// Weak-scaling efficiency of point `i` relative to the first point.
pub fn efficiency(points: &[WeakPoint], i: usize) -> f64 {
    points[0].step_ns / points[i].step_ns
}

/// Render the table.
pub fn table(points: &[WeakPoint]) -> Table {
    let mut t = Table::new(
        "Weak scaling (comm_lb) — fixed atoms/core",
        &["nodes", "atoms", "step time", "efficiency"],
    );
    for (i, p) in points.iter().enumerate() {
        t.row(vec![
            p.nodes.to_string(),
            p.natoms.to_string(),
            us(p.step_ns),
            format!("{}%", f(efficiency(points, i) * 100.0, 1)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_is_nearly_flat() {
        // 2 atoms/core from 48 to 384 nodes: the step time should stay
        // within ~35% (halo work per node is constant; collectives grow
        // logarithmically).
        let grids = [[2usize, 3, 2], [4, 3, 4], [4, 6, 4], [8, 6, 8]];
        let pts = run(SystemSpec::copper(), 2, &grids);
        assert_eq!(pts.len(), 4);
        for (i, p) in pts.iter().enumerate() {
            let eff = efficiency(&pts, i);
            assert!(eff > 0.65, "node count {}: efficiency {eff:.2}", p.nodes);
            // Atom counts actually grew with the machine.
            if i > 0 {
                assert!(p.natoms > pts[i - 1].natoms);
            }
        }
    }

    #[test]
    fn weak_beats_strong_efficiency_at_the_same_node_count() {
        // The defining contrast: at 96 nodes, weak scaling (constant work
        // per core) holds efficiency better than strong scaling from 12
        // nodes does.
        let weak = run(SystemSpec::copper(), 2, &[[2, 3, 2], [4, 6, 4]]);
        let weak_eff = efficiency(&weak, 1);
        // Strong: same total atoms as the 12-node weak point, spread over
        // 96 nodes.
        let spec = SystemSpec::copper();
        let model = StepModel::new(spec);
        let target = 2 * 12 * 48;
        let (nx, ny, nz) = minimd::lattice::fcc_cells_for(target);
        let (bx, atoms) = minimd::lattice::fcc_lattice(nx, ny, nz, 3.615);
        let d12 = Decomposition::new(bx, [2, 3, 2]);
        let d96 = Decomposition::new(bx, [4, 6, 4]);
        let t12 = {
            let counts = d12.counts_per_rank(&atoms);
            let plan = HaloPlan::build(&d12, &atoms, spec.rcut);
            model
                .evaluate_with(&d12, &Torus3d::new([2, 3, 2]), &counts, &plan, OptLevel::CommLb)
                .total_ns()
        };
        let t96 = {
            let counts = d96.counts_per_rank(&atoms);
            let plan = HaloPlan::build(&d96, &atoms, spec.rcut);
            model
                .evaluate_with(&d96, &Torus3d::new([4, 6, 4]), &counts, &plan, OptLevel::CommLb)
                .total_ns()
        };
        let strong_eff = (t12 / t96) / 8.0; // 8× the nodes
        assert!(weak_eff > strong_eff, "weak {weak_eff:.2} vs strong {strong_eff:.2}");
    }
}
