//! Table II — energy and force error of a single step under Double /
//! MIX-fp32 / MIX-fp16 precision, against the reference labels.
//!
//! A Deep Potential model is trained on Sutton–Chen-labelled copper frames
//! (the AIMD stand-in per DESIGN.md), then evaluated at the three precision
//! paths. The paper's observation to reproduce: the error is dominated by
//! the model itself (Double ≡ MIX-fp32 at display precision), with MIX-fp16
//! adding a small energy degradation and no visible force degradation.

use deepmd::config::DeepPotConfig;
use deepmd::dataset::{copper_frames, Frame};
use deepmd::engine::DpEngine;
use deepmd::model::DeepPotModel;
use deepmd::train::{fit_energy_bias, train, TrainConfig};
use minimd::neighbor::{ListKind, NeighborList};
use minimd::vec3::Vec3;
use nnet::precision::Precision;

use crate::report::Table;

/// Effort knobs (tests scale these down; the bench uses larger values).
#[derive(Clone, Copy, Debug)]
pub struct Table2Config {
    /// Training frames.
    pub frames: usize,
    /// FCC cells per edge in each frame.
    pub cells: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Perturbation amplitude, Å.
    pub amp: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config { frames: 8, cells: 3, epochs: 150, amp: 0.1, seed: 2024 }
    }
}

/// One row: precision, energy error (eV/atom), force error (eV/Å).
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Precision mode.
    pub precision: Precision,
    /// |E − E_ref| per atom, eV.
    pub energy_err: f64,
    /// Force RMSE vs reference, eV/Å.
    pub force_err: f64,
}

/// Evaluate a model at one precision against labelled frames.
pub fn errors_at(model: &DeepPotModel, precision: Precision, frames: &[Frame]) -> (f64, f64) {
    let engine = DpEngine::new(model.clone(), precision);
    let mut e_err = 0.0;
    let mut f_sq = 0.0;
    let mut f_n = 0usize;
    for frame in frames {
        let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
        nl.build(&frame.atoms, &frame.bx);
        let mut forces = vec![Vec3::ZERO; frame.atoms.len()];
        let out = engine.energy_forces(&frame.atoms, &nl, &frame.bx, &mut forces);
        e_err += ((out.energy - frame.energy) / frame.atoms.nlocal as f64).abs();
        for (&f, &fr) in forces.iter().zip(&frame.forces).take(frame.atoms.nlocal) {
            f_sq += (f - fr).norm2();
            f_n += 3;
        }
    }
    (e_err / frames.len() as f64, (f_sq / f_n as f64).sqrt())
}

/// Train a model and produce the three precision rows.
pub fn run(cfg: Table2Config) -> Vec<Table2Row> {
    let mut model = DeepPotModel::new(DeepPotConfig::tiny(1, 6.0));
    let all = copper_frames(cfg.frames + 2, cfg.cells, cfg.amp, cfg.seed);
    let (train_set, val_set) = deepmd::dataset::split(all, cfg.frames as f64 / (cfg.frames + 2) as f64);
    fit_energy_bias(&mut model, &train_set);
    train(&mut model, &train_set, TrainConfig { epochs: cfg.epochs, lr: 3e-3, log_every: 0 });
    Precision::ALL
        .iter()
        .map(|&p| {
            let (e, f) = errors_at(&model, p, &val_set);
            Table2Row { precision: p, energy_err: e, force_err: f }
        })
        .collect()
}

/// Render in the paper's layout.
pub fn table(rows: &[Table2Row]) -> Table {
    let mut t = Table::new(
        "Table II — error of energy and force for one time-step",
        &["Precision", "Error in energy [eV/atom]", "Error in force [eV/A]"],
    );
    for r in rows {
        t.row(vec![
            r.precision.label().to_string(),
            format!("{:.1e}", r.energy_err),
            format!("{:.1e}", r.force_err),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_rows_reproduce_the_papers_shape() {
        // Small effort for test time; the bench runs the default config.
        let rows = run(Table2Config { frames: 4, cells: 2, epochs: 60, amp: 0.08, seed: 5 });
        assert_eq!(rows.len(), 3);
        let (d, m32, m16) = (&rows[0], &rows[1], &rows[2]);
        // Double and MIX-fp32 agree at display precision (the paper prints
        // identical 1.6e-3 / 4.4e-2 for both).
        assert!((d.energy_err - m32.energy_err).abs() / d.energy_err < 0.05);
        assert!((d.force_err - m32.force_err).abs() / d.force_err < 0.02);
        // fp16 energy error ≥ fp32's; forces stay at the model error floor.
        assert!(m16.energy_err >= m32.energy_err * 0.99);
        assert!((m16.force_err - d.force_err).abs() / d.force_err < 0.1);
        // Sanity: all errors finite and the model actually learned
        // something (error below the untrained scale).
        for r in &rows {
            assert!(r.energy_err.is_finite() && r.force_err.is_finite());
            assert!(r.energy_err < 0.5, "energy error {}", r.energy_err);
        }
    }
}
