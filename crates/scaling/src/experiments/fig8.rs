//! Fig. 8 — communication time vs neighbour count over 10 k iterations
//! with 8-byte payloads: RDMA memory pool vs per-neighbour registration.

use dpmd_comm::mempool;
use fugaku::machine::MachineConfig;

use crate::report::{f, Table};

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Point {
    /// Neighbour count.
    pub neighbors: usize,
    /// Memory-pool time, ns.
    pub pool_ns: u64,
    /// Per-neighbour-registration time, ns.
    pub per_neighbor_ns: u64,
}

/// Run the sweep (paper: 10,000 iterations).
pub fn run(machine: &MachineConfig, iterations: usize) -> Vec<Fig8Point> {
    mempool::figure8_sweep(machine, iterations)
        .into_iter()
        .map(|(n, pool, per)| Fig8Point { neighbors: n, pool_ns: pool, per_neighbor_ns: per })
        .collect()
}

/// Render as a two-series table.
pub fn table(points: &[Fig8Point]) -> Table {
    let mut t = Table::new(
        "Fig. 8 — comm time vs #neighbors (8 B payload)",
        &["neighbors", "memory pool (ms)", "per-neighbor reg (ms)", "ratio"],
    );
    for p in points {
        t.row(vec![
            p.neighbors.to_string(),
            f(p.pool_ns as f64 / 1e6, 3),
            f(p.per_neighbor_ns as f64 / 1e6, 3),
            f(p.per_neighbor_ns as f64 / p.pool_ns as f64, 2),
        ]);
    }
    t
}

/// Locate the knee: the first sweep point where the per-neighbour curve
/// exceeds the pool curve by more than 20%.
pub fn knee(points: &[Fig8Point]) -> Option<usize> {
    points
        .iter()
        .find(|p| p.per_neighbor_ns as f64 > 1.2 * p.pool_ns as f64)
        .map(|p| p.neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpmd_comm::mempool::Registration;

    #[test]
    fn knee_sits_near_44_neighbors_as_in_the_paper() {
        let machine = MachineConfig::default();
        let pts = run(&machine, 300);
        let k = knee(&pts).expect("a knee must exist");
        assert!((44..=74).contains(&k), "knee at {k}, paper: departs at 44");
    }

    #[test]
    fn pool_scales_linearly_to_124() {
        let machine = MachineConfig::default();
        let pts = run(&machine, 200);
        let per_neighbor: Vec<f64> =
            pts.iter().map(|p| p.pool_ns as f64 / p.neighbors as f64).collect();
        let first = per_neighbor[0];
        for (p, v) in pts.iter().zip(&per_neighbor) {
            assert!((v / first - 1.0).abs() < 0.1, "pool per-message cost drifted at {}", p.neighbors);
        }
    }

    #[test]
    fn direct_strategy_comparison() {
        let machine = MachineConfig::default();
        let pool = mempool::simulate(&machine, 124, 8, 100, Registration::MemoryPool);
        let per = mempool::simulate(&machine, 124, 8, 100, Registration::PerNeighbor);
        assert!(per > 2 * pool, "at 124 neighbours the pool wins big: {per} vs {pool}");
    }
}
