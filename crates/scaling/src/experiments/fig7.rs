//! Fig. 7 — step-by-step communication results on 96 nodes.
//!
//! Eight bars per configuration: the MPI 3-stage baseline, 3-stage and p2p
//! over uTofu, the node-based scheme with 1/2/4 leaders, the single-thread
//! variant (`sg-lb-4l`) and the original-layout variant (`ref-4l`); swept
//! over cutoff radii {8, 10} Å and sub-box sides {[1,1,1], [0.5,0.5,1],
//! [0.5,0.5,0.5]}·r_c, on the paper's 4×6×4 topology.

use fugaku::machine::MachineConfig;
use fugaku::tni::TniDriving;
use fugaku::tofu::Torus3d;
use fugaku::utofu::CommApi;
use minimd::atoms::Atoms;
use minimd::domain::Decomposition;
use minimd::lattice::fcc_lattice;
use minimd::simbox::SimBox;

use dpmd_comm::node_based::{self, NodeSchemeConfig};
use dpmd_comm::plan::HaloPlan;
use dpmd_comm::{p2p, three_stage};

use crate::report::{us, Table};

/// The eight bars of the figure.
pub const BARS: [&str; 8] =
    ["baseline", "3stage-utofu", "p2p-utofu", "lb-1l", "lb-2l", "lb-4l", "sg-lb-4l", "ref-4l"];

/// One configuration's simulated times (ns per halo exchange), bar order.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Cutoff radius, Å.
    pub rc: f64,
    /// Sub-box side as a fraction of r_c per axis.
    pub frac: [f64; 3],
    /// Times per bar, ns.
    pub times: [u64; 8],
}

/// Build a uniform copper-density configuration matching a sub-box spec.
fn build(frac: [f64; 3], rc: f64, nodes: [usize; 3]) -> (Decomposition, Torus3d, Atoms) {
    let bx = SimBox::new(
        frac[0] * rc * 2.0 * nodes[0] as f64,
        frac[1] * rc * 2.0 * nodes[1] as f64,
        frac[2] * rc * nodes[2] as f64,
    );
    let a = 3.615;
    let cells = [
        (bx.lengths().x / a).round().max(1.0) as usize,
        (bx.lengths().y / a).round().max(1.0) as usize,
        (bx.lengths().z / a).round().max(1.0) as usize,
    ];
    let (_, mut atoms) = fcc_lattice(cells[0], cells[1], cells[2], a);
    let s = [
        bx.lengths().x / (cells[0] as f64 * a),
        bx.lengths().y / (cells[1] as f64 * a),
        bx.lengths().z / (cells[2] as f64 * a),
    ];
    for p in &mut atoms.pos {
        p.x *= s[0];
        p.y *= s[1];
        p.z *= s[2];
        *p = bx.wrap(*p);
    }
    (Decomposition::new(bx, nodes), Torus3d::new(nodes), atoms)
}

/// Simulate one configuration's eight bars.
pub fn run_config(machine: &MachineConfig, rc: f64, frac: [f64; 3]) -> Fig7Row {
    let nodes = MachineConfig::paper_96_node_topology();
    let (decomp, torus, atoms) = build(frac, rc, nodes);
    let density = atoms.nlocal as f64 / decomp.bx.volume();
    let plan = HaloPlan::build(&decomp, &atoms, rc);
    let apr: Vec<usize> = decomp.counts_per_rank(&atoms).into_iter().map(|c| c as usize).collect();

    let node_cfg = |leaders, driving, lb| NodeSchemeConfig { leaders, driving, lb_broadcast: lb };
    let nb = |cfg| node_based::simulate(machine, &decomp, &torus, &plan, &apr, cfg).comm.total_ns;

    let times = [
        three_stage::simulate(machine, &decomp, &torus, rc, density, CommApi::Mpi).total_ns,
        three_stage::simulate(machine, &decomp, &torus, rc, density, CommApi::Utofu).total_ns,
        p2p::simulate(machine, &decomp, &torus, &plan, CommApi::Utofu).total_ns,
        nb(node_cfg(1, TniDriving::ThreadPerTni, true)),
        nb(node_cfg(2, TniDriving::ThreadPerTni, true)),
        nb(node_cfg(4, TniDriving::ThreadPerTni, true)),
        nb(node_cfg(4, TniDriving::SingleThread, true)),
        nb(node_cfg(4, TniDriving::ThreadPerTni, false)),
    ];
    Fig7Row { rc, frac, times }
}

/// The full figure: both cutoffs, all three box configurations.
pub fn run(machine: &MachineConfig) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for rc in [8.0, 10.0] {
        for frac in [[1.0, 1.0, 1.0], [0.5, 0.5, 1.0], [0.5, 0.5, 0.5]] {
            rows.push(run_config(machine, rc, frac));
        }
    }
    rows
}

/// Render as the paper-shaped table.
pub fn table(rows: &[Fig7Row]) -> Table {
    let mut headers = vec!["rc (Å)".to_string(), "sub-box (×rc)".to_string()];
    headers.extend(BARS.iter().map(|s| s.to_string()));
    let mut t = Table::new(
        "Fig. 7 — halo-exchange time on 96 nodes (4x6x4)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for r in rows {
        let mut cells = vec![
            format!("{:.0}", r.rc),
            format!("[{},{},{}]", r.frac[0], r.frac[1], r.frac[2]),
        ];
        cells.extend(r.times.iter().map(|&ns| us(ns as f64)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_holds_at_both_cutoffs() {
        let machine = MachineConfig::default();
        for rc in [8.0, 10.0] {
            // [1,1,1]·rc: bandwidth-dominated — the node scheme's edge
            // collapses to (near) nothing: the paper has it slightly losing
            // to 3stage-utofu/p2p here; our model has it within ~25% of the
            // best alternative (documented deviation in EXPERIMENTS.md).
            let big = run_config(&machine, rc, [1.0, 1.0, 1.0]);
            let best_alt = big.times[1].min(big.times[2]) as f64;
            let lb4 = big.times[5] as f64;
            let advantage_big = best_alt / lb4;
            assert!(
                advantage_big < 1.25,
                "rc={rc}: node advantage must collapse at [1,1,1]: {:?}",
                big.times
            );
            // [0.5,0.5,0.5]·rc: latency-dominated — node scheme wins big.
            let small = run_config(&machine, rc, [0.5, 0.5, 0.5]);
            let best_alt_s = small.times[1].min(small.times[2]) as f64;
            let advantage_small = best_alt_s / small.times[5] as f64;
            assert!(
                small.times[5] < small.times[1] && small.times[5] < small.times[2],
                "rc={rc}: node scheme must win at [0.5,0.5,0.5]: {:?}",
                small.times
            );
            assert!(
                advantage_small > advantage_big,
                "rc={rc}: crossover direction: {advantage_small:.2} vs {advantage_big:.2}"
            );
        }
    }

    #[test]
    fn leader_ordering_and_variants() {
        let machine = MachineConfig::default();
        let row = run_config(&machine, 8.0, [0.5, 0.5, 0.5]);
        let [_, _, _, lb1, lb2, lb4, sg, refv] = row.times;
        assert!(lb4 <= lb2 && lb2 <= lb1, "leader ordering {:?}", row.times);
        assert!(sg > lb4, "single-thread driving must cost");
        // ref-4l (no broadcast) within a modest delta of lb-4l.
        let delta = (refv as f64 - lb4 as f64).abs() / lb4 as f64;
        assert!(delta < 0.3, "broadcast delta {delta}");
    }

    #[test]
    fn node_scheme_cuts_strong_scaling_comm_by_most_of_the_paper_81_percent() {
        let machine = MachineConfig::default();
        let row = run_config(&machine, 8.0, [0.5, 0.5, 0.5]);
        let reduction = 1.0 - row.times[5] as f64 / row.times[0] as f64;
        assert!(
            (0.55..=0.95).contains(&reduction),
            "comm reduction {reduction:.2} vs paper's 0.81"
        );
    }

    #[test]
    fn table_renders_all_rows() {
        let machine = MachineConfig::default();
        let rows = vec![run_config(&machine, 8.0, [1.0, 1.0, 1.0])];
        let t = table(&rows);
        assert!(t.render().contains("lb-4l"));
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use dpmd_comm::node_based;
    use fugaku::tni::TniDriving;

    #[test]
    #[ignore]
    fn dump_components() {
        let machine = MachineConfig::default();
        for frac in [[1.0, 1.0, 1.0], [0.5, 0.5, 0.5]] {
            let nodes = MachineConfig::paper_96_node_topology();
            let (decomp, torus, atoms) = build(frac, 8.0, nodes);
            let plan = HaloPlan::build(&decomp, &atoms, 8.0);
            let apr: Vec<usize> =
                decomp.counts_per_rank(&atoms).into_iter().map(|c| c as usize).collect();
            let sends = plan.node_sends(0);
            let total_bytes: usize = sends.iter().map(|(_, b)| b).sum();
            println!(
                "frac {frac:?}: node sends {} msgs, {} bytes total, rank locals ~{}",
                sends.len(),
                total_bytes,
                apr[0]
            );
            let r = node_based::simulate(
                &machine, &decomp, &torus, &plan, &apr,
                NodeSchemeConfig { leaders: 4, driving: TniDriving::ThreadPerTni, lb_broadcast: true },
            );
            println!("  node total {} ns, noc_bytes {}", r.comm.total_ns, r.noc_bytes);
        }
    }
}
