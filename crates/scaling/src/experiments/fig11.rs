//! Fig. 11 — strong scaling of the 0.54 M copper and 0.56 M water systems
//! from 768 to 12,000 nodes: ns/day, parallel efficiency, and the headline
//! speedup over the baseline DeePMD-kit (149 ns/day and 31.7× for copper;
//! 68.5 ns/day and 32.6× for water in the paper).

use fugaku::machine::MachineConfig;
use fugaku::tofu::Torus3d;
use minimd::domain::Decomposition;

use dpmd_comm::plan::HaloPlan;

use crate::kernels::OptLevel;
use crate::report::{f, speedup, Table};
use crate::step_model::StepModel;
use crate::systems::{Benchmark, SystemSpec};

/// One scaling point.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Node count.
    pub nodes: usize,
    /// Average atoms per core.
    pub atoms_per_core: f64,
    /// Optimized (comm_lb) ns/day.
    pub nsday_opt: f64,
    /// Baseline ns/day.
    pub nsday_base: f64,
    /// Optimized per-step time, ns.
    pub step_ns_opt: f64,
}

/// One system's scaling curve.
#[derive(Clone, Debug)]
pub struct ScalingCurve {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Points per topology, 768 → 12,000 nodes.
    pub points: Vec<ScalePoint>,
}

impl ScalingCurve {
    /// Parallel efficiency of point `i` relative to the first point.
    pub fn efficiency(&self, i: usize) -> f64 {
        let p0 = &self.points[0];
        let p = &self.points[i];
        (p.nsday_opt / p0.nsday_opt) / (p.nodes as f64 / p0.nodes as f64)
    }

    /// The end-point speedup over baseline (the paper's 31.7× / 32.6×).
    pub fn final_speedup(&self) -> f64 {
        let p = self.points.last().expect("curve has points");
        p.nsday_opt / p.nsday_base
    }
}

/// Run the strong-scaling sweep for one system, optionally restricted to
/// the first `max_points` topologies (the full 12,000-node plan build is
/// expensive; tests pass a smaller count).
pub fn run(spec: SystemSpec, max_points: usize) -> ScalingCurve {
    let model = StepModel::new(spec);
    let (bx, atoms) = spec.build_full(1);
    let mut points = Vec::new();
    for dims in MachineConfig::paper_scaling_topologies().into_iter().take(max_points) {
        let decomp = Decomposition::new(bx, dims);
        let torus = Torus3d::new(dims);
        let counts = decomp.counts_per_rank(&atoms);
        let plan = HaloPlan::build(&decomp, &atoms, spec.rcut);
        let opt = model.evaluate_with(&decomp, &torus, &counts, &plan, OptLevel::CommLb);
        let base = model.evaluate_with(&decomp, &torus, &counts, &plan, OptLevel::Baseline);
        points.push(ScalePoint {
            nodes: decomp.num_nodes(),
            atoms_per_core: spec.atoms_per_core(decomp.num_nodes()),
            nsday_opt: opt.ns_per_day(spec.timestep_fs),
            nsday_base: base.ns_per_day(spec.timestep_fs),
            step_ns_opt: opt.total_ns(),
        });
    }
    ScalingCurve { benchmark: spec.benchmark, points }
}

/// Render the scaling table.
pub fn table(curve: &ScalingCurve) -> Table {
    let mut t = Table::new(
        &format!("Fig. 11 — strong scaling, {:?}", curve.benchmark),
        &["nodes", "atoms/core", "ns/day (opt)", "ns/day (base)", "speedup", "efficiency"],
    );
    for (i, p) in curve.points.iter().enumerate() {
        t.row(vec![
            p.nodes.to_string(),
            f(p.atoms_per_core, 3),
            f(p.nsday_opt, 1),
            f(p.nsday_base, 2),
            speedup(p.nsday_opt / p.nsday_base),
            format!("{:.1}%", curve.efficiency(i) * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copper_curve_shape_two_points() {
        // Two topologies keep test time modest; the full sweep runs in the
        // bench harness.
        let curve = run(SystemSpec::copper(), 2);
        assert_eq!(curve.points[0].nodes, 768);
        assert_eq!(curve.points[1].nodes, 2160);
        // More nodes ⇒ more ns/day, at sub-linear efficiency.
        assert!(curve.points[1].nsday_opt > curve.points[0].nsday_opt);
        let eff = curve.efficiency(1);
        assert!((0.25..1.0).contains(&eff), "efficiency {eff}");
        // Strong-scaling speedup over baseline is already large at 768.
        let sp = curve.points[0].nsday_opt / curve.points[0].nsday_base;
        assert!(sp > 5.0, "speedup {sp}");
    }

    #[test]
    fn nsday_is_headed_toward_the_paper_magnitude() {
        // At 768 nodes (~14.6 atoms/core) the model should already deliver
        // tens of ns/day for copper; the 149 ns/day endpoint is asserted in
        // the integration suite where the full sweep runs in release mode.
        let curve = run(SystemSpec::copper(), 1);
        let p = &curve.points[0];
        assert!(p.nsday_opt > 5.0 && p.nsday_opt < 200.0, "ns/day {}", p.nsday_opt);
    }
}
