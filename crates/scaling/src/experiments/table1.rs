//! Table I — performance of typical NNMD packages.
//!
//! The literature rows are constants cited from the papers listed in
//! Table I; the two "This work" rows are produced by the Fig. 11 scaling
//! model at 12,000 nodes.

use crate::experiments::fig11;
use crate::report::Table;
use crate::systems::SystemSpec;

/// One row of the survey table.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Work / package.
    pub work: &'static str,
    /// Year.
    pub year: u32,
    /// Potential class.
    pub pot: &'static str,
    /// Physical system.
    pub system: &'static str,
    /// Atom count (display string, matches the paper's units).
    pub atoms: &'static str,
    /// Machine.
    pub machine: &'static str,
    /// Time-step, fs.
    pub timestep_fs: f64,
    /// Simulated ns/day (None where the source didn't report it).
    pub nsday: Option<f64>,
}

/// The literature rows exactly as cited in the paper's Table I.
pub fn literature_rows() -> Vec<Table1Row> {
    vec![
        Table1Row { work: "Simple-NN [13]", year: 2019, pot: "BP", system: "SiO2", atoms: "14K", machine: "Unknown", timestep_fs: 0.0, nsday: None },
        Table1Row { work: "Singraber et al. [38]", year: 2019, pot: "BP", system: "H2O", atoms: "8.4K", machine: "VSC", timestep_fs: 0.5, nsday: Some(1.25) },
        Table1Row { work: "SNAP ML-IAP [32]", year: 2021, pot: "SNAP", system: "C", atoms: "1B", machine: "Summit", timestep_fs: 0.5, nsday: Some(1.03) },
        Table1Row { work: "Allegro [29]", year: 2023, pot: "Allegro", system: "Li3PO4", atoms: "0.42M", machine: "A100", timestep_fs: 2.0, nsday: Some(15.5) },
        Table1Row { work: "Allegro [29]", year: 2023, pot: "Allegro", system: "Ag", atoms: "1M", machine: "A100", timestep_fs: 5.0, nsday: Some(49.4) },
        Table1Row { work: "DeePMD-kit [33] (baseline)", year: 2022, pot: "DP", system: "Cu", atoms: "13.5M", machine: "Summit", timestep_fs: 1.0, nsday: Some(11.2) },
        Table1Row { work: "DeePMD-kit [33] (baseline)", year: 2022, pot: "DP", system: "Cu", atoms: "2.1M", machine: "Fugaku", timestep_fs: 1.0, nsday: Some(4.7) },
    ]
}

/// The two "This work" rows, measured on the simulated machine. `full`
/// runs all five topologies (endpoint 12,000 nodes); otherwise a cheaper
/// prefix is used and the last available point reported.
pub fn this_work_rows(max_points: usize) -> Vec<(Table1Row, usize)> {
    let mut rows = Vec::new();
    for spec in [SystemSpec::copper(), SystemSpec::water()] {
        let curve = fig11::run(spec, max_points);
        let p = curve.points.last().expect("curve has points");
        let (system, atoms) = match spec.benchmark {
            crate::systems::Benchmark::Copper => ("Cu", "0.5M"),
            crate::systems::Benchmark::Water => ("H2O", "0.5M"),
        };
        rows.push((
            Table1Row {
                work: "This work (reproduction)",
                year: 2024,
                pot: "DP",
                system,
                atoms,
                machine: "Fugaku (simulated)",
                timestep_fs: spec.timestep_fs,
                nsday: Some(p.nsday_opt),
            },
            p.nodes,
        ));
    }
    rows
}

/// Render the full table.
pub fn table(max_points: usize) -> Table {
    let mut t = Table::new(
        "Table I — performance of typical NNMD packages",
        &["work", "year", "pot", "system", "#atoms", "machine", "dt (fs)", "ns/day"],
    );
    let fmt = |r: &Table1Row| {
        vec![
            r.work.to_string(),
            r.year.to_string(),
            r.pot.to_string(),
            r.system.to_string(),
            r.atoms.to_string(),
            r.machine.to_string(),
            if r.timestep_fs > 0.0 { format!("{}", r.timestep_fs) } else { "-".into() },
            r.nsday.map_or("-".into(), |x| format!("{x:.1}")),
        ]
    };
    for r in literature_rows() {
        t.row(fmt(&r));
    }
    for (r, _nodes) in this_work_rows(max_points) {
        t.row(fmt(&r));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literature_rows_match_paper_citations() {
        let rows = literature_rows();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[6].nsday, Some(4.7), "the Fugaku baseline the paper beats 31.7x");
        assert_eq!(rows[5].nsday, Some(11.2));
    }

    #[test]
    fn this_work_beats_the_baseline_rows() {
        // Even at the cheapest scaling point, the reproduction's ns/day
        // exceeds every literature DP row.
        let ours = this_work_rows(1);
        let cu = ours[0].0.nsday.unwrap();
        assert!(cu > 11.2, "Cu ns/day {cu}");
    }

    #[test]
    fn table_renders_with_both_sections() {
        let t = table(1);
        let s = t.render();
        assert!(s.contains("This work"));
        assert!(s.contains("DeePMD-kit"));
    }
}
