//! Fig. 9 — step-by-step computation optimization on 96 nodes over
//! 100 time-steps: the seven-bar ladder for {1, 2, 8} atoms/core on both
//! benchmark systems.

use fugaku::machine::MachineConfig;
use fugaku::tofu::Torus3d;
use minimd::atoms::Atoms;
use minimd::domain::Decomposition;
use minimd::simbox::SimBox;

use dpmd_comm::plan::HaloPlan;

use crate::kernels::OptLevel;
use crate::report::{us, Table};
use crate::step_model::StepModel;
use crate::systems::{Benchmark, SystemSpec};

/// One (system, atoms/core) configuration's ladder.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Benchmark system.
    pub benchmark: Benchmark,
    /// Nominal atoms per core (1, 2 or 8).
    pub atoms_per_core: usize,
    /// Achieved atoms per core after lattice rounding.
    pub actual_apc: f64,
    /// Per-step time per bar, ns (100-step average in the paper; our model
    /// is per-step deterministic).
    pub step_ns: Vec<(OptLevel, f64)>,
}

/// Build a system configuration sized for `apc` atoms/core on the 96-node
/// topology, with the box shaped so sub-box edges stay meaningful vs r_c.
fn build(spec: &SystemSpec, apc: usize) -> (Decomposition, Torus3d, Atoms) {
    let nodes = MachineConfig::paper_96_node_topology();
    let ncores = 96 * 48;
    let target = apc * ncores;
    let (bx, atoms): (SimBox, Atoms) = match spec.benchmark {
        Benchmark::Copper => {
            let (nx, ny, nz) = minimd::lattice::fcc_cells_for(target);
            minimd::lattice::fcc_lattice(nx, ny, nz, 3.615)
        }
        Benchmark::Water => {
            let molecules = (target as f64 / 3.0).round() as usize;
            let edge = (molecules as f64).powf(1.0 / 3.0).round().max(2.0) as usize;
            minimd::lattice::water_box(edge, edge, edge, 9)
        }
    };
    (Decomposition::new(bx, nodes), Torus3d::new(nodes), atoms)
}

/// Run one row of the figure.
pub fn run_config(spec: SystemSpec, apc: usize) -> Fig9Row {
    let model = StepModel::new(spec);
    let (decomp, torus, atoms) = build(&spec, apc);
    let counts = decomp.counts_per_rank(&atoms);
    let plan = HaloPlan::build(&decomp, &atoms, spec.rcut);
    let step_ns = OptLevel::ALL
        .iter()
        .map(|&lvl| (lvl, model.evaluate_with(&decomp, &torus, &counts, &plan, lvl).total_ns()))
        .collect();
    Fig9Row {
        benchmark: spec.benchmark,
        atoms_per_core: apc,
        actual_apc: atoms.nlocal as f64 / decomp.num_cores() as f64,
        step_ns,
    }
}

/// The full figure: both systems × {1, 2, 8} atoms/core.
pub fn run() -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for spec in [SystemSpec::copper(), SystemSpec::water()] {
        for apc in [1usize, 2, 8] {
            rows.push(run_config(spec, apc));
        }
    }
    rows
}

/// Render in the paper's layout (bars as columns).
pub fn table(rows: &[Fig9Row]) -> Table {
    let mut headers = vec!["system".to_string(), "atoms/core".to_string()];
    headers.extend(OptLevel::ALL.iter().map(|l| l.label().to_string()));
    let mut t = Table::new(
        "Fig. 9 — per-step time ladder on 96 nodes",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for r in rows {
        let mut cells = vec![
            format!("{:?}", r.benchmark),
            format!("{} ({:.2})", r.atoms_per_core, r.actual_apc),
        ];
        cells.extend(r.step_ns.iter().map(|&(_, ns)| us(ns)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn time_of(row: &Fig9Row, level: OptLevel) -> f64 {
        row.step_ns.iter().find(|(l, _)| *l == level).unwrap().1
    }

    #[test]
    fn copper_strong_scaling_ladder_shape() {
        let row = run_config(SystemSpec::copper(), 1);
        assert!((0.8..=1.2).contains(&row.actual_apc), "apc {}", row.actual_apc);
        let base = time_of(&row, OptLevel::Baseline);
        let rmtf = time_of(&row, OptLevel::RmtfF64);
        let best = time_of(&row, OptLevel::CommLb);
        assert!((3.5..=7.5).contains(&(base / rmtf)), "rmtf ratio {}", base / rmtf);
        assert!(base / best > 10.0, "total ladder {}", base / best);
    }

    #[test]
    fn eight_atoms_per_core_shows_no_sve_gain() {
        let row = run_config(SystemSpec::copper(), 8);
        let blas = time_of(&row, OptLevel::BlasF32);
        let sve = time_of(&row, OptLevel::SveF32);
        // sve dispatch is M ≤ 3 only; at 8 atoms/core, M = 8 → same time.
        let ratio = blas / sve;
        assert!((0.98..=1.05).contains(&ratio), "sve gain at 8 apc: {ratio}");
    }

    #[test]
    fn comm_and_lb_bars_improve_at_strong_scaling() {
        let row = run_config(SystemSpec::copper(), 2);
        let sve16 = time_of(&row, OptLevel::SveF16);
        let nolb = time_of(&row, OptLevel::CommNolb);
        let lb = time_of(&row, OptLevel::CommLb);
        assert!(nolb < sve16, "comm switch must help: {nolb} vs {sve16}");
        assert!(lb <= nolb, "lb must not regress");
        // Paper: comm+threadpool up to 22%, lb up to 18.5%.
        let comm_gain = 1.0 - nolb / sve16;
        assert!((0.02..=0.45).contains(&comm_gain), "comm gain {comm_gain:.2}");
    }

    #[test]
    fn water_rows_run_and_are_slower_per_step_than_copper_at_same_apc() {
        let cu = run_config(SystemSpec::copper(), 1);
        let w = run_config(SystemSpec::water(), 1);
        // Water has 2 species and a smaller neighbour count; at the same
        // apc the per-step times are within the same order of magnitude.
        let tcu = time_of(&cu, OptLevel::CommLb);
        let tw = time_of(&w, OptLevel::CommLb);
        assert!(tw / tcu > 0.3 && tw / tcu < 3.0, "{tw} vs {tcu}");
    }
}
