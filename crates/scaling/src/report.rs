//! Plain-text table/series rendering shared by the experiment drivers and
//! the bench harness: every experiment prints rows shaped like the paper's
//! tables and figures so outputs can be compared side by side.

/// A labelled table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// If the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (c, h) in self.headers.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:>w$}", s, w = width[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `d` decimals.
pub fn f(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

/// Format nanoseconds as human-readable microseconds.
pub fn us(ns: f64) -> String {
    format!("{:.1} µs", ns / 1000.0)
}

/// Format a speedup ratio.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "23".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Right-aligned: the short name is padded to the long one's width.
        assert!(lines[3].starts_with("     a"), "{:?}", lines[3]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(us(1500.0), "1.5 µs");
        assert_eq!(speedup(31.70), "31.70x");
    }
}
