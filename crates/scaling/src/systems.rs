//! The paper's two benchmark systems and their builders.

use minimd::atoms::Atoms;
use minimd::lattice::{fcc_copper, fcc_cells_for, water_box};
use minimd::simbox::SimBox;
use serde::{Deserialize, Serialize};

/// Which benchmark system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Benchmark {
    /// 0.54 M-atom FCC copper, r_c = 8 Å, 1 fs steps.
    Copper,
    /// 0.56 M-atom water, r_c = 6 Å, 0.5 fs steps.
    Water,
}

/// Static description of a benchmark system (§IV).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Which system.
    pub benchmark: Benchmark,
    /// Cutoff radius, Å.
    pub rcut: f64,
    /// Verlet skin, Å (paper: 2 Å, rebuilt every 50 steps).
    pub skin: f64,
    /// Time-step, fs.
    pub timestep_fs: f64,
    /// Neighbour-list budget of the busiest species (512 Cu, 92 O).
    pub nmax: usize,
    /// Mean neighbours inside r_c per atom (drives descriptor cost):
    /// copper 78 at 8 Å; water ≈ 61 at 6 Å averaged over species.
    pub mean_neighbors: f64,
    /// Atom number density, atoms/Å³.
    pub density: f64,
    /// Number of species.
    pub ntypes: usize,
    /// Target atom count of the paper's strong-scaling runs.
    pub target_atoms: usize,
}

impl SystemSpec {
    /// The copper benchmark.
    pub fn copper() -> Self {
        SystemSpec {
            benchmark: Benchmark::Copper,
            rcut: 8.0,
            skin: 2.0,
            timestep_fs: 1.0,
            nmax: 512,
            mean_neighbors: 180.0, // FCC shells within 8 Å
            density: 4.0 / (3.615f64.powi(3)),
            ntypes: 1,
            target_atoms: 540_000,
        }
    }

    /// The water benchmark.
    pub fn water() -> Self {
        SystemSpec {
            benchmark: Benchmark::Water,
            rcut: 6.0,
            skin: 2.0,
            timestep_fs: 0.5,
            nmax: 92,
            mean_neighbors: 90.0,
            density: 3.0 * 0.0334,
            ntypes: 2,
            target_atoms: 558_000,
        }
    }

    /// Build the full-size configuration of the paper's strong-scaling runs
    /// (0.54 M copper atoms / 0.56 M water atoms).
    pub fn build_full(&self, seed: u64) -> (SimBox, Atoms) {
        match self.benchmark {
            Benchmark::Copper => {
                let (nx, ny, nz) = fcc_cells_for(self.target_atoms);
                fcc_copper(nx, ny, nz)
            }
            Benchmark::Water => {
                // 558,000 atoms = 186,000 molecules ≈ 57³.
                let edge = ((self.target_atoms as f64 / 3.0).powf(1.0 / 3.0)).round() as usize;
                water_box(edge, edge, edge, seed)
            }
        }
    }

    /// Atoms per core for `nodes` Fugaku nodes (48 compute cores each).
    pub fn atoms_per_core(&self, nodes: usize) -> f64 {
        self.target_atoms as f64 / (nodes as f64 * 48.0)
    }

    /// Forward-halo bytes per ghost atom (positions + id/type).
    pub fn ghost_bytes(&self) -> usize {
        dpmd_comm::ATOM_FORWARD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_atom_counts() {
        let (_, cu) = SystemSpec::copper().build_full(1);
        let n = cu.nlocal as f64;
        assert!((n - 540_000.0).abs() / 540_000.0 < 0.02, "Cu atoms {n}");
        let (_, w) = SystemSpec::water().build_full(1);
        let nw = w.nlocal as f64;
        assert!((nw - 558_000.0).abs() / 558_000.0 < 0.02, "water atoms {nw}");
    }

    #[test]
    fn paper_atoms_per_core_at_12000_nodes() {
        // §IV-E: "the average atoms per core stand at 0.93 and 0.968".
        let cu = SystemSpec::copper().atoms_per_core(12_000);
        assert!((cu - 0.9375).abs() < 0.01, "{cu}");
        let w = SystemSpec::water().atoms_per_core(12_000);
        assert!((w - 0.969).abs() < 0.01, "{w}");
    }

    #[test]
    fn densities_are_physical() {
        let cu = SystemSpec::copper();
        assert!((cu.density - 0.0847).abs() < 0.001);
        let w = SystemSpec::water();
        assert!((w.density - 0.1002).abs() < 0.002);
    }
}
