//! # dpmd-scaling — time-to-solution model and experiment drivers
//!
//! Combines the compute-kernel cost model ([`kernels`]), the communication
//! simulations (crate `dpmd-comm`), and the load-balance machinery (crate
//! `dpmd-balance`) into a per-step time model ([`step_model`]) for the
//! optimized DeePMD-kit on the simulated Fugaku, then drives one module per
//! table/figure of the paper ([`experiments`]).
//!
//! Conventions: times in nanoseconds, sizes in bytes, the headline metric
//! is ns/day via [`minimd::units::ns_per_day`].

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod kernels;
pub mod memory;
pub mod report;
pub mod step_model;
pub mod systems;

pub mod experiments {
    //! One module per table/figure of the paper's evaluation section, plus
    //! the [`ablations`] sensitivity sweeps.
    pub mod ablations;
    pub mod fig10;
    pub mod fig11;
    pub mod fig6;
    pub mod fig7;
    pub mod fig8;
    pub mod fig9;
    pub mod portability;
    pub mod table1;
    pub mod table2;
    pub mod table3;
    pub mod weak_scaling;
}

pub use step_model::{OptLevel, StepModel};
pub use systems::SystemSpec;
