//! The per-step time model: pair compute + halo communication + framework
//! overheads, composed per optimization level, on a concrete decomposition
//! of a concrete atom configuration.

use fugaku::machine::MachineConfig;
use fugaku::tofu::Torus3d;
use fugaku::utofu::CommApi;
use minimd::atoms::Atoms;
use minimd::domain::Decomposition;
use minimd::units::ns_per_day;

use dpmd_balance::assign::{busiest_thread_atoms, lb_busiest_thread_atoms};
use dpmd_comm::node_based::{self, NodeSchemeConfig};
use dpmd_comm::plan::HaloPlan;
use dpmd_comm::three_stage;

/// Ratio of reverse-path to forward-path time for the *baseline* 3-stage
/// pattern (the node scheme simulates its reverse phase explicitly).
const BASELINE_REVERSE_FACTOR: f64 = 0.75;

pub use crate::kernels::OptLevel;
use crate::kernels::KernelModel;
use crate::systems::SystemSpec;

/// Per-step time breakdown, ns.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepBreakdown {
    /// Pair phase (DeePMD inference) — the slowest rank.
    pub pair_ns: f64,
    /// Forward + reverse halo communication.
    pub comm_ns: f64,
    /// Framework overhead (TF sessions / thread management).
    pub framework_ns: f64,
    /// Everything else (integration, thermo, amortized neighbour rebuild).
    pub other_ns: f64,
}

impl StepBreakdown {
    /// Total step time, ns.
    pub fn total_ns(&self) -> f64 {
        self.pair_ns + self.comm_ns + self.framework_ns + self.other_ns
    }

    /// Simulated nanoseconds per wall-clock day at `timestep_fs`.
    pub fn ns_per_day(&self, timestep_fs: f64) -> f64 {
        ns_per_day(timestep_fs, self.total_ns() * 1e-9)
    }
}

/// The assembled model.
#[derive(Clone, Debug)]
pub struct StepModel {
    /// Machine parameters.
    pub machine: MachineConfig,
    /// Kernel cost calibration.
    pub kernel: KernelModel,
    /// Benchmark system.
    pub spec: SystemSpec,
}

impl StepModel {
    /// Defaults for a benchmark system.
    pub fn new(spec: SystemSpec) -> Self {
        StepModel { machine: MachineConfig::default(), kernel: KernelModel::default(), spec }
    }

    /// Pair-phase time: the slowest rank's kernel time given the actual
    /// per-rank atom counts and the level's balancing policy.
    pub fn pair_time_ns(&self, decomp: &Decomposition, counts: &[u32], level: OptLevel) -> f64 {
        let chip = &self.machine.chip;
        let mut worst: f64 = 0.0;
        if level.uses_intranode_lb() {
            for node in 0..decomp.num_nodes() {
                let total: u32 = decomp.node_ranks(node).iter().map(|&r| counts[r]).sum();
                let per_thread = lb_busiest_thread_atoms(total);
                let t = self.kernel.thread_kernel_ns(
                    chip,
                    level,
                    per_thread,
                    self.spec.mean_neighbors,
                    self.spec.ntypes,
                );
                worst = worst.max(t);
            }
        } else {
            for &c in counts {
                let per_thread = busiest_thread_atoms(c);
                let t = self.kernel.thread_kernel_ns(
                    chip,
                    level,
                    per_thread,
                    self.spec.mean_neighbors,
                    self.spec.ntypes,
                );
                worst = worst.max(t);
            }
        }
        worst
    }

    /// Communication time (forward + reverse) for a level.
    pub fn comm_time_ns(
        &self,
        decomp: &Decomposition,
        torus: &Torus3d,
        plan: &HaloPlan,
        counts: &[u32],
        level: OptLevel,
    ) -> f64 {
        if level.uses_node_comm() {
            let atoms_per_rank: Vec<usize> = counts.iter().map(|&c| c as usize).collect();
            node_based::simulate_round_trip(
                &self.machine,
                decomp,
                torus,
                plan,
                &atoms_per_rank,
                NodeSchemeConfig::paper_best(),
            )
            .comm
            .total_ns as f64
        } else {
            let fwd = three_stage::simulate(
                &self.machine,
                decomp,
                torus,
                self.spec.rcut,
                self.spec.density,
                CommApi::Mpi,
            )
            .total_ns as f64;
            fwd * (1.0 + BASELINE_REVERSE_FACTOR)
        }
    }

    /// Full per-step breakdown for a level.
    pub fn evaluate(
        &self,
        decomp: &Decomposition,
        torus: &Torus3d,
        atoms: &Atoms,
        level: OptLevel,
    ) -> StepBreakdown {
        let counts = decomp.counts_per_rank(atoms);
        let plan = HaloPlan::build(decomp, atoms, self.spec.rcut);
        self.evaluate_with(decomp, torus, &counts, &plan, level)
    }

    /// Like [`Self::evaluate`] with precomputed counts and plan (the plan is
    /// the expensive part; experiments sweeping levels reuse it).
    pub fn evaluate_with(
        &self,
        decomp: &Decomposition,
        torus: &Torus3d,
        counts: &[u32],
        plan: &HaloPlan,
        level: OptLevel,
    ) -> StepBreakdown {
        let pair = self.pair_time_ns(decomp, counts, level);
        let comm = self.comm_time_ns(decomp, torus, plan, counts, level);
        let framework = self.kernel.framework_step_ns(level);
        // Integration + the per-step global thermo allreduce + the
        // amortized rebuild (every 50 steps the neighbour list and the
        // exchange run again ⇒ ~2% of a pair phase).
        let api = if level.uses_node_comm() { CommApi::Utofu } else { CommApi::Mpi };
        let allreduce = fugaku::collectives::thermo_allreduce_ns(&self.machine, torus, api) as f64;
        let other = 2_000.0 + allreduce + 0.02 * pair;
        StepBreakdown { pair_ns: pair, comm_ns: comm, framework_ns: framework, other_ns: other }
    }

    /// ns/day for a level on a topology.
    pub fn nsday(
        &self,
        decomp: &Decomposition,
        torus: &Torus3d,
        atoms: &Atoms,
        level: OptLevel,
    ) -> f64 {
        self.evaluate(decomp, torus, atoms, level).ns_per_day(self.spec.timestep_fs)
    }
}

/// Scale the simulation box of `atoms` onto the decomposition implied by a
/// node grid — helper used by experiments that pick topologies first.
pub fn decompose(atoms_box: minimd::simbox::SimBox, nodes: [usize; 3]) -> (Decomposition, Torus3d) {
    (Decomposition::new(atoms_box, nodes), Torus3d::new(nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::lattice::fcc_copper;

    fn small_setup() -> (StepModel, Decomposition, Torus3d, Atoms) {
        // A scaled-down copper problem: 4×6×4 nodes (the 96-node topology),
        // 9,216 atoms = 2.0 atoms/core — the strong-scaling regime where
        // the full ladder (TF removal, precision, sve, comm, lb) engages.
        let (bx, atoms) = fcc_copper(12, 12, 16);
        let model = StepModel::new(SystemSpec::copper());
        let (decomp, torus) = decompose(bx, [4, 6, 4]);
        (model, decomp, torus, atoms)
    }

    #[test]
    fn full_ladder_is_monotone_improving() {
        let (model, decomp, torus, atoms) = small_setup();
        let counts = decomp.counts_per_rank(&atoms);
        let plan = HaloPlan::build(&decomp, &atoms, model.spec.rcut);
        let mut last = f64::INFINITY;
        for level in OptLevel::ALL {
            let t = model.evaluate_with(&decomp, &torus, &counts, &plan, level).total_ns();
            assert!(
                t <= last * 1.02,
                "{} regressed: {t} after {last}",
                level.label()
            );
            last = t;
        }
    }

    #[test]
    fn overall_speedup_matches_paper_scale() {
        // Paper: 31.7× total speedup for copper. Accept a generous band —
        // the exact value is checked at the Fig. 11 endpoint instead.
        let (model, decomp, torus, atoms) = small_setup();
        let counts = decomp.counts_per_rank(&atoms);
        let plan = HaloPlan::build(&decomp, &atoms, model.spec.rcut);
        let base = model.evaluate_with(&decomp, &torus, &counts, &plan, OptLevel::Baseline).total_ns();
        let best = model.evaluate_with(&decomp, &torus, &counts, &plan, OptLevel::CommLb).total_ns();
        let speedup = base / best;
        assert!((15.0..=60.0).contains(&speedup), "overall speedup {speedup:.1}");
    }

    #[test]
    fn lb_improves_or_matches_pair_time() {
        let (model, decomp, _, atoms) = small_setup();
        let counts = decomp.counts_per_rank(&atoms);
        let nolb = model.pair_time_ns(&decomp, &counts, OptLevel::CommNolb);
        let lb = model.pair_time_ns(&decomp, &counts, OptLevel::CommLb);
        assert!(lb <= nolb, "{lb} vs {nolb}");
    }

    #[test]
    fn nsday_uses_the_timestep() {
        let (model, decomp, torus, atoms) = small_setup();
        let b = model.evaluate(&decomp, &torus, &atoms, OptLevel::CommLb);
        let cu = b.ns_per_day(1.0);
        let water_like = b.ns_per_day(0.5);
        assert!((cu / water_like - 2.0).abs() < 1e-9);
        assert!(cu > 0.0);
    }
}
