//! Compute-kernel cost model for DeePMD inference on the A64FX.
//!
//! Grounded in the *production* model sizes (embedding 25→50→100 with
//! DP-Compress tables, M₂ = 16, fitting net 1600→240→240→240→1) rather than
//! the miniature nets used for functional testing — per-atom inference is a
//! few MFLOPs, which at tall-and-skinny GEMM efficiencies lands in the
//! ~1 ms/atom/core regime the paper reports ("the execution time for all
//! computation kernels is less than 2 milliseconds" per strong-scaling
//! step).
//!
//! The ladder of §III-B is expressed as multiplicative effects:
//!
//! * **TensorFlow baseline** — fixed 4 ms session overhead per step, graph
//!   redundancy on every kernel, dynamic allocation, and GEMM-NT backward
//!   at half the NN rate;
//! * **rmtf** — direct kernels: framework gone, redundancy trimmed, NT→NN;
//! * **MIX-fp32** — GEMM rate ×~1.7 (short of the 2× SIMD bound at M ≤ 3),
//!   element-wise work ×1.5;
//! * **sve-gemm** — ×1.35 on GEMMs when the M dimension is ≤ 3;
//! * **MIX-fp16** — ×1.6 on the fitting-net GEMMs.

use fugaku::a64fx::A64fx;
use nnet::graph::SESSION_FIXED_OVERHEAD_NS;
use serde::{Deserialize, Serialize};

/// Production network sizes used for costing (the paper's configuration).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkDims {
    /// Embedding feature width M₁.
    pub m1: usize,
    /// Second factor width M₂.
    pub m2: usize,
    /// Fitting-net hidden width (240 in the paper).
    pub fit_width: usize,
    /// Number of fitting hidden layers (3 in the paper).
    pub fit_layers: usize,
}

impl Default for NetworkDims {
    fn default() -> Self {
        NetworkDims { m1: 100, m2: 16, fit_width: 240, fit_layers: 3 }
    }
}

impl NetworkDims {
    /// Fitting-net input width (descriptor length).
    pub fn descriptor_len(&self) -> usize {
        self.m1 * self.m2
    }

    /// FLOPs of one fitting-net forward pass per atom.
    pub fn fit_forward_flops(&self) -> f64 {
        let mut sum = self.descriptor_len() * self.fit_width; // input layer
        sum += (self.fit_layers - 1) * self.fit_width * self.fit_width;
        sum += self.fit_width; // scalar head
        2.0 * sum as f64
    }

    /// GEMM FLOPs of forward + input-gradient backward per atom.
    pub fn fit_gemm_flops(&self) -> f64 {
        2.0 * self.fit_forward_flops()
    }

    /// Non-GEMM FLOPs per atom at `nneigh` neighbours: compressed-table
    /// embedding, T/D assembly, and the per-neighbour force chain rule.
    pub fn other_flops(&self, nneigh: f64) -> f64 {
        let table = nneigh * self.m1 as f64 * 12.0;
        let t_assembly = nneigh * self.m1 as f64 * 8.0;
        let d_contract = (self.m1 * self.m2 * 8 * 2) as f64;
        let chain = nneigh * (self.m1 as f64 * 8.0 + 30.0);
        let env = nneigh * 40.0;
        table + t_assembly + d_contract + chain + env
    }
}

/// The optimization ladder of Fig. 9 (bar order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// Original DeePMD-kit: TensorFlow graph, Fugaku BLAS, fp64, MPI comm.
    Baseline,
    /// TensorFlow removed, kernels simplified, NT→NN (`rmtf-fp64`).
    RmtfF64,
    /// MIX-fp32 precision on BLAS (`blas-fp32`).
    BlasF32,
    /// sve-gemm at MIX-fp32 (`sve-fp32`).
    SveF32,
    /// sve-gemm with fp16 fitting GEMMs (`sve-fp16`).
    SveF16,
    /// + node-based comm and threadpool, no intra-node LB (`comm_nolb`).
    CommNolb,
    /// + intra-node load balance (`comm_lb`) — the full optimized code.
    CommLb,
}

impl OptLevel {
    /// Bars in Fig. 9 order.
    pub const ALL: [OptLevel; 7] = [
        OptLevel::Baseline,
        OptLevel::RmtfF64,
        OptLevel::BlasF32,
        OptLevel::SveF32,
        OptLevel::SveF16,
        OptLevel::CommNolb,
        OptLevel::CommLb,
    ];

    /// Label matching the paper's figure.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Baseline => "baseline",
            OptLevel::RmtfF64 => "rmtf-fp64",
            OptLevel::BlasF32 => "blas-fp32",
            OptLevel::SveF32 => "sve-fp32",
            OptLevel::SveF16 => "sve-fp16",
            OptLevel::CommNolb => "comm_nolb",
            OptLevel::CommLb => "comm_lb",
        }
    }

    /// Does this level run with the TensorFlow framework?
    pub fn uses_tensorflow(self) -> bool {
        self == OptLevel::Baseline
    }

    /// Does this level use the node-based comm scheme + threadpool?
    pub fn uses_node_comm(self) -> bool {
        matches!(self, OptLevel::CommNolb | OptLevel::CommLb)
    }

    /// Does this level balance atoms within the node?
    pub fn uses_intranode_lb(self) -> bool {
        self == OptLevel::CommLb
    }
}

/// Calibration constants of the kernel model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KernelModel {
    /// Network sizes.
    pub dims: NetworkDims,
    /// Fraction of per-core peak achieved by BLAS fp64 GEMM at M ≤ 3.
    pub eff_gemm_small_m: f64,
    /// Fraction of peak for the tall-skinny GEMMs at M ≥ 4. Barely above
    /// the M ≤ 3 value: a 15×1600·240 GEMM still streams the full weight
    /// matrix per call, so the paper's observed per-atom cost is nearly
    /// flat in M — this is what produces Fig. 11's 62% parallel efficiency
    /// (a too-optimistic value here makes the 768-node point unrealistically
    /// fast and collapses the efficiency).
    pub eff_gemm_medium_m: f64,
    /// Fraction of peak for non-GEMM (table lookups, chain rule) work.
    pub eff_other: f64,
    /// MIX-fp32 GEMM rate multiplier (≤ 2; bandwidth-bound at small M).
    pub fp32_gemm_rate: f64,
    /// MIX-fp32 element-wise rate multiplier.
    pub fp32_other_rate: f64,
    /// sve-gemm rate multiplier over BLAS at M ≤ 3.
    pub sve_rate: f64,
    /// fp16 fitting-GEMM rate multiplier over fp32.
    pub fp16_gemm_rate: f64,
    /// Graph-runtime redundancy multiplier on kernel time (baseline).
    pub tf_redundancy: f64,
    /// Dynamic-allocation multiplier (baseline).
    pub tf_alloc: f64,
    /// GEMM-NT slowdown on the baseline backward pass.
    pub nt_penalty: f64,
    /// Per-step OpenMP parallel-region management, ns (all pre-threadpool
    /// levels).
    pub openmp_step_ns: f64,
    /// Per-step threadpool management, ns (comm_* levels).
    pub threadpool_step_ns: f64,
    /// Extra slice/concat multiplier per additional species (baseline's
    /// interleaved environment matrix).
    pub multitype_slice_factor: f64,
}

impl Default for KernelModel {
    fn default() -> Self {
        KernelModel {
            dims: NetworkDims::default(),
            eff_gemm_small_m: 0.035,
            eff_gemm_medium_m: 0.045,
            eff_other: 0.07,
            fp32_gemm_rate: 1.7,
            fp32_other_rate: 1.5,
            sve_rate: 1.35,
            fp16_gemm_rate: 1.6,
            tf_redundancy: 1.35,
            tf_alloc: 1.10,
            nt_penalty: 2.0,
            openmp_step_ns: 40_000.0,
            threadpool_step_ns: 4_000.0,
            multitype_slice_factor: 0.12,
        }
    }
}

impl KernelModel {
    /// Kernel (pair-phase) time for one thread evaluating `atoms_per_thread`
    /// atoms with `nneigh` mean neighbours and `ntypes` species, ns —
    /// excluding framework overhead and comm.
    pub fn thread_kernel_ns(
        &self,
        chip: &A64fx,
        level: OptLevel,
        atoms_per_thread: u32,
        nneigh: f64,
        ntypes: usize,
    ) -> f64 {
        if atoms_per_thread == 0 {
            return 0.0;
        }
        let n = atoms_per_thread as f64;
        let peak = chip.dp_gflops_per_core(); // GFLOP/s = FLOP/ns
        // The GEMM M dimension is the thread's atom batch: sve only kicks in
        // at M ≤ 3 (the paper's dispatch rule).
        let small_m = atoms_per_thread <= 3;
        let base_gemm_eff = if small_m { self.eff_gemm_small_m } else { self.eff_gemm_medium_m };

        let gemm_flops = n * self.dims.fit_gemm_flops();
        let other_flops = n * self.dims.other_flops(nneigh);

        let mut gemm_rate = peak * base_gemm_eff;
        let mut other_rate = peak * self.eff_other;
        let gemm_time = match level {
            OptLevel::Baseline => {
                // fp64, BLAS, NT backward, graph redundancy + allocs.
                let fwd = 0.5 * gemm_flops / gemm_rate;
                let bwd = 0.5 * gemm_flops / (gemm_rate / self.nt_penalty);
                let gemm_time = (fwd + bwd) * self.tf_redundancy * self.tf_alloc;
                let mut other_time = other_flops / other_rate * self.tf_redundancy * self.tf_alloc;
                other_time *= 1.0 + self.multitype_slice_factor * (ntypes as f64 - 1.0);
                return gemm_time + other_time;
            }
            OptLevel::RmtfF64 => gemm_flops / gemm_rate,
            OptLevel::BlasF32 => {
                gemm_rate *= self.fp32_gemm_rate;
                other_rate *= self.fp32_other_rate;
                gemm_flops / gemm_rate
            }
            OptLevel::SveF32 | OptLevel::CommNolb | OptLevel::CommLb | OptLevel::SveF16 => {
                gemm_rate *= self.fp32_gemm_rate;
                other_rate *= self.fp32_other_rate;
                if small_m {
                    gemm_rate *= self.sve_rate;
                }
                if level != OptLevel::SveF32 {
                    // fp16 fitting GEMMs (sve-fp16 and both comm_* levels).
                    gemm_rate *= self.fp16_gemm_rate;
                }
                gemm_flops / gemm_rate
            }
        };
        gemm_time + other_flops / other_rate
    }

    /// Fixed per-step framework/runtime overhead for a level, ns.
    pub fn framework_step_ns(&self, level: OptLevel) -> f64 {
        let threading = if level.uses_node_comm() { self.threadpool_step_ns } else { self.openmp_step_ns };
        let tf = if level.uses_tensorflow() { SESSION_FIXED_OVERHEAD_NS as f64 } else { 0.0 };
        threading + tf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn per_atom(level: OptLevel, atoms: u32) -> f64 {
        let m = KernelModel::default();
        let chip = A64fx::default();
        m.thread_kernel_ns(&chip, level, atoms, 180.0, 1) + m.framework_step_ns(level)
    }

    /// The Fig. 9 calibration anchors, as bands around the paper's ratios.
    #[test]
    fn ladder_ratios_match_paper_bands() {
        for atoms in [1u32, 2] {
            let base = per_atom(OptLevel::Baseline, atoms);
            let rmtf = per_atom(OptLevel::RmtfF64, atoms);
            let f32b = per_atom(OptLevel::BlasF32, atoms);
            let f32s = per_atom(OptLevel::SveF32, atoms);
            let f16s = per_atom(OptLevel::SveF16, atoms);
            let r0 = base / rmtf;
            let r1 = rmtf / f32b;
            let r2 = f32b / f32s;
            let r3 = f32s / f16s;
            assert!((3.5..=7.5).contains(&r0), "TF removal ratio {r0:.2} at {atoms} atoms");
            assert!((1.45..=1.8).contains(&r1), "fp32 ratio {r1:.2} at {atoms} atoms");
            assert!((1.15..=1.45).contains(&r2), "sve ratio {r2:.2} at {atoms} atoms");
            assert!((1.3..=1.65).contains(&r3), "fp16 ratio {r3:.2} at {atoms} atoms");
        }
    }

    #[test]
    fn sve_gives_no_benefit_at_8_atoms_per_core() {
        // §IV-C: "the performance of sve-gemm optimizations for the
        // 8 atoms/core setting shows no improvement."
        let m = KernelModel::default();
        let chip = A64fx::default();
        let blas = m.thread_kernel_ns(&chip, OptLevel::BlasF32, 8, 180.0, 1);
        let sve = m.thread_kernel_ns(&chip, OptLevel::SveF32, 8, 180.0, 1);
        assert!((sve / blas - 1.0).abs() < 1e-9, "sve inactive at M=8");
    }

    #[test]
    fn baseline_kernels_are_sub_2ms_and_tf_dominates() {
        // §III-B1: kernels < 2 ms while the 4 ms session overhead is > 60%.
        let m = KernelModel::default();
        let chip = A64fx::default();
        let kernels = m.thread_kernel_ns(&chip, OptLevel::Baseline, 1, 180.0, 1);
        assert!(kernels < 2.0e6, "kernel time {kernels} ns");
        let total = kernels + m.framework_step_ns(OptLevel::Baseline);
        assert!(m.framework_step_ns(OptLevel::Baseline) / total > 0.60);
    }

    #[test]
    fn kernel_time_scales_linearly_with_atoms_at_fixed_m_regime() {
        let m = KernelModel::default();
        let chip = A64fx::default();
        let t4 = m.thread_kernel_ns(&chip, OptLevel::SveF16, 4, 180.0, 1);
        let t8 = m.thread_kernel_ns(&chip, OptLevel::SveF16, 8, 180.0, 1);
        assert!((t8 / t4 - 2.0).abs() < 1e-9);
        assert_eq!(m.thread_kernel_ns(&chip, OptLevel::SveF16, 0, 180.0, 1), 0.0);
    }

    #[test]
    fn multitype_slicing_penalizes_only_the_baseline() {
        let m = KernelModel::default();
        let chip = A64fx::default();
        let cu = m.thread_kernel_ns(&chip, OptLevel::Baseline, 1, 90.0, 1);
        let water = m.thread_kernel_ns(&chip, OptLevel::Baseline, 1, 90.0, 2);
        assert!(water > cu, "second species must cost slice/concat copies");
        let cu_opt = m.thread_kernel_ns(&chip, OptLevel::RmtfF64, 1, 90.0, 1);
        let water_opt = m.thread_kernel_ns(&chip, OptLevel::RmtfF64, 1, 90.0, 2);
        assert_eq!(cu_opt, water_opt, "type-sorted layout removes the penalty");
    }

    #[test]
    fn production_dims_match_paper() {
        let d = NetworkDims::default();
        assert_eq!(d.descriptor_len(), 1600);
        assert_eq!(d.fit_width, 240);
        // ~1 MFLOP forward per atom.
        assert!(d.fit_forward_flops() > 0.9e6 && d.fit_forward_flops() < 1.1e6);
    }
}
