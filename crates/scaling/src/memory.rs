//! Memory-footprint model (§III-C's closing argument): the load-balanced
//! layout costs extra ghost storage — equations (1)/(2) — and the paper
//! argues it is "a few dozen kilobytes" against 8 GB of HBM2 per CMG. This
//! module makes that argument quantitative for any configuration.

use dpmd_balance::ghost::{nghost_baseline, nghost_loadbalance};

use crate::kernels::NetworkDims;
use crate::systems::SystemSpec;

/// Bytes of per-atom state a rank stores (position, velocity, force, id,
/// type, image flags — LAMMPS' core arrays).
pub const ATOM_STATE_BYTES: usize = 3 * 8 * 3 + 8 + 4 + 4;

/// Bytes of per-ghost state (position, id, type).
pub const GHOST_STATE_BYTES: usize = 3 * 8 + 8 + 4;

/// HBM2 capacity per CMG (= per rank), bytes.
pub const HBM_PER_CMG: usize = 8 << 30;

/// Per-rank memory breakdown at a given sub-box edge, bytes.
#[derive(Clone, Copy, Debug)]
pub struct RankMemory {
    /// Local atom state.
    pub locals: usize,
    /// Ghost state under the original layout (eq. 1).
    pub ghosts_baseline: usize,
    /// Ghost state under the load-balanced node-box layout (eq. 2).
    pub ghosts_lb: usize,
    /// Model parameters (embedding tables + fitting nets, f64).
    pub model: usize,
    /// Inference workspace (per-thread activations for the widest layer).
    pub workspace: usize,
}

impl RankMemory {
    /// Total with the load-balanced layout.
    pub fn total_lb(&self) -> usize {
        self.locals + self.ghosts_lb + self.model + self.workspace
    }

    /// The extra bytes the lb layout costs (the paper's "few dozen kB").
    pub fn lb_overhead(&self) -> usize {
        self.ghosts_lb.saturating_sub(self.ghosts_baseline)
    }
}

/// Model parameter bytes for the production network sizes.
pub fn model_bytes(dims: &NetworkDims, ntypes: usize, table_intervals: usize) -> usize {
    let fit = dims.descriptor_len() * dims.fit_width
        + (dims.fit_layers - 1) * dims.fit_width * dims.fit_width
        + dims.fit_width;
    // Fitting nets (weights + transposed copies, per species) + compressed
    // embedding tables (6 coefficients per interval per feature).
    let tables = table_intervals * dims.m1 * 6;
    ntypes * (2 * fit + tables) * 8
}

/// Per-rank memory at `nodes` total nodes for a benchmark system.
pub fn rank_memory(spec: &SystemSpec, nodes: usize) -> RankMemory {
    let ranks = nodes * 4;
    let atoms_per_rank = spec.target_atoms as f64 / ranks as f64;
    // Sub-box edge from the density (cubic-equivalent).
    let a = (atoms_per_rank / spec.density).powf(1.0 / 3.0);
    let r = spec.rcut;
    let ghosts_bs = nghost_baseline(a, r) * spec.density;
    let ghosts_lb = nghost_loadbalance(a, r) * spec.density;
    let dims = NetworkDims::default();
    RankMemory {
        locals: (atoms_per_rank * ATOM_STATE_BYTES as f64) as usize,
        ghosts_baseline: (ghosts_bs * GHOST_STATE_BYTES as f64) as usize,
        ghosts_lb: (ghosts_lb * GHOST_STATE_BYTES as f64) as usize,
        model: model_bytes(&dims, spec.ntypes, 512),
        workspace: 12 * dims.fit_width * 8 * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_overhead_is_tens_of_kilobytes_at_the_strong_scaling_limit() {
        // §III-C: "the additional atoms we introduce only add a few dozen
        // kilobytes of memory occupation".
        let m = rank_memory(&SystemSpec::copper(), 12_000);
        let overhead = m.lb_overhead();
        assert!(
            (5_000..200_000).contains(&overhead),
            "lb ghost overhead {overhead} B"
        );
    }

    #[test]
    fn everything_fits_hbm_with_orders_of_magnitude_to_spare() {
        for spec in [SystemSpec::copper(), SystemSpec::water()] {
            for nodes in [768usize, 12_000] {
                let m = rank_memory(&spec, nodes);
                assert!(
                    m.total_lb() * 100 < HBM_PER_CMG,
                    "{nodes} nodes: {} B used of {HBM_PER_CMG}",
                    m.total_lb()
                );
            }
        }
    }

    #[test]
    fn ghosts_dominate_locals_at_the_strong_scaling_limit() {
        // At ~11 atoms/rank with an 8 Å cutoff, the halo dwarfs the locals —
        // the geometric fact behind the whole communication story.
        let m = rank_memory(&SystemSpec::copper(), 12_000);
        assert!(m.ghosts_baseline > 10 * m.locals);
    }

    #[test]
    fn model_parameters_dominate_the_footprint() {
        // A 240³ fitting net is ~1.5 MB ≫ any atom storage at strong
        // scaling; DeePMD's memory is model-bound, not atom-bound.
        let m = rank_memory(&SystemSpec::copper(), 12_000);
        assert!(m.model > m.ghosts_lb);
        assert!(m.model > 1_000_000);
    }
}
