//! Explicit-SIMD GEMM microkernels behind runtime dispatch.
//!
//! This crate is the workspace's *audited unsafe island* for CPU intrinsics:
//! every other crate except `dpmd-threads` is `#![forbid(unsafe_code)]`, so
//! the `std::arch` kernels live here, each `unsafe` block carries a
//! `// SAFETY:` comment (enforced by `dpmd-analyze` rule D3), and
//! `unsafe_op_in_unsafe_fn` is denied so no operation is implicitly unsafe.
//!
//! # Dispatch classes and the determinism contract
//!
//! Kernels are grouped into **dispatch classes** ([`DispatchClass`]):
//!
//! * `Scalar` — the portable auto-vectorized kernels in `nnet::gemm`
//!   (one multiply **and one add rounding** per accumulation step).
//! * `Avx2` — x86_64 AVX2+FMA microkernels in this crate.
//! * `Neon` — aarch64 NEON microkernels in this crate.
//!
//! The determinism bar is scoped *per class*: every kernel inside a class
//! produces bitwise-identical output on every machine that selects that
//! class. Classes are **not** bitwise-interchangeable — the SIMD classes use
//! fused multiply-add (one rounding per step), the scalar class rounds the
//! product and the sum separately — and that is by design: the paper's
//! trajectories are only reproducible on the hardware class that ran them.
//!
//! Within the SIMD classes the contract is concrete: every output element
//! `c[i][j]` is the fold `acc = fma(a[i][p], b[p][j], acc)` for `p = 0..k`
//! ascending, with `acc` seeded at `+0.0`. The fold never depends on `m`, on
//! the row-group an output row landed in, or on the column-strip width —
//! scalar tails use [`f32::mul_add`]/[`f64::mul_add`], which are
//! correctly-rounded fused operations and therefore bit-identical to the
//! vector lanes. Two consequences, both load-bearing for the engine:
//!
//! 1. **Row independence**: stacking rows (batched inference) is
//!    bitwise-invisible, exactly as for the scalar class.
//! 2. The portable [`reference_nn_f32`]/[`reference_nn_f64`] folds below
//!    reproduce the SIMD results **bit for bit**, so tests can pin the
//!    intrinsics against safe Rust without hardware-specific goldens.
//!
//! NT forms are deliberately absent: the engine pre-transposes every
//! weight matrix at model build (the paper's NT→NN preprocessing), so the
//! hot path only ever issues unit-stride NN GEMMs.

#![deny(unsafe_op_in_unsafe_fn)]

/// Which family of GEMM kernels runtime dispatch selected.
///
/// Bitwise determinism is guaranteed *within* a class, never across classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchClass {
    /// Portable auto-vectorized kernels (two roundings per accumulate).
    Scalar,
    /// x86_64 AVX2 + FMA microkernels (fused accumulate).
    Avx2,
    /// aarch64 NEON microkernels (fused accumulate).
    Neon,
}

impl DispatchClass {
    /// Stable lowercase tag for logs, metrics and CLI output.
    pub fn tag(self) -> &'static str {
        match self {
            DispatchClass::Scalar => "scalar",
            DispatchClass::Avx2 => "avx2",
            DispatchClass::Neon => "neon",
        }
    }
}

/// A GEMM kernel family: NN (`C = A·B`, row-major, overwrite) in f32 and f64.
///
/// Implementations must uphold the per-class fold contract documented at the
/// crate root; in particular output rows may depend only on (that row of `A`,
/// `B`, `n`, `k`) so that batching by row-stacking is bitwise-invisible.
pub trait Kernel: Send + Sync {
    /// The dispatch class this kernel belongs to.
    fn class(&self) -> DispatchClass;
    /// `C = A·B` in f32: `A` is `m×k`, `B` is `k×n`, `C` is `m×n`, row-major.
    fn nn_f32(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]);
    /// `C = A·B` in f64; see [`Kernel::nn_f32`].
    fn nn_f64(&self, m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]);
}

/// The native SIMD kernel for this machine, if its class is available:
/// AVX2+FMA on x86_64 (runtime-detected), NEON on aarch64 (baseline).
/// `None` means the caller must fall back to its scalar class.
pub fn native() -> Option<&'static dyn Kernel> {
    // Miri interprets no std::arch vector intrinsics: always report "no
    // native kernel" there so callers take the scalar class, which shares
    // the same fold-order contract bit for bit. This is what lets CI run
    // `cargo miri test -p dpmd-simd` on a SIMD host.
    #[cfg(miri)]
    {
        None
    }
    #[cfg(all(not(miri), target_arch = "x86_64"))]
    {
        if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            static KERNEL: avx2::Avx2Kernel = avx2::Avx2Kernel;
            return Some(&KERNEL);
        }
        None
    }
    #[cfg(all(not(miri), target_arch = "aarch64"))]
    {
        static KERNEL: neon::NeonKernel = neon::NeonKernel;
        Some(&KERNEL)
    }
    #[cfg(all(not(miri), not(any(target_arch = "x86_64", target_arch = "aarch64"))))]
    {
        None
    }
}

/// The [`DispatchClass`] [`native`] would select, or `Scalar` if none.
pub fn native_class() -> DispatchClass {
    native().map_or(DispatchClass::Scalar, |k| k.class())
}

fn check_dims_f32(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &[f32]) {
    assert!(a.len() >= m * k, "A too small: {} < {m}×{k}", a.len());
    assert!(b.len() >= k * n, "B too small: {} < {k}×{n}", b.len());
    assert!(c.len() >= m * n, "C too small: {} < {m}×{n}", c.len());
}

fn check_dims_f64(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &[f64]) {
    assert!(a.len() >= m * k, "A too small: {} < {m}×{k}", a.len());
    assert!(b.len() >= k * n, "B too small: {} < {k}×{n}", b.len());
    assert!(c.len() >= m * n, "C too small: {} < {m}×{n}", c.len());
}

// ---------------------------------------------------------------------------
// Portable fused-fold references.
//
// These are the *semantic definition* of the SIMD dispatch classes: the
// ascending-p single-rounding fold every AVX2/NEON kernel must reproduce bit
// for bit. They are safe Rust (`mul_add` is a correctly-rounded fused op on
// every target with hardware FMA) and exist so tests and proptests can pin
// the intrinsics without per-machine golden files. They are not fast; the
// hot path never calls them.

/// Fused-fold reference `C = A·B` in f32 (bitwise-defines the SIMD classes).
pub fn reference_nn_f32(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims_f32(m, n, k, a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc = a[i * k + p].mul_add(b[p * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
}

/// Fused-fold reference `C = A·B` in f64; see [`reference_nn_f32`].
pub fn reference_nn_f64(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    check_dims_f64(m, n, k, a, b, c);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc = a[i * k + p].mul_add(b[p * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA (x86_64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::{
        _mm256_fmadd_pd, _mm256_fmadd_ps, _mm256_loadu_pd, _mm256_loadu_ps,
        _mm256_set1_pd, _mm256_set1_ps, _mm256_setzero_pd, _mm256_setzero_ps, _mm256_storeu_pd,
        _mm256_storeu_ps,
    };

    /// f32 lanes per 256-bit register.
    const LF32: usize = 8;
    /// f64 lanes per 256-bit register.
    const LF64: usize = 4;

    pub(crate) struct Avx2Kernel;

    impl crate::Kernel for Avx2Kernel {
        fn class(&self) -> crate::DispatchClass {
            crate::DispatchClass::Avx2
        }

        fn nn_f32(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
            crate::check_dims_f32(m, n, k, a, b, c);
            // SAFETY: `Avx2Kernel` is only handed out by `crate::native()`
            // after `is_x86_feature_detected!` confirmed both avx2 and fma,
            // so the target features `nn_f32` requires are present.
            unsafe { nn_f32(m, n, k, a, b, c) }
        }

        fn nn_f64(&self, m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
            crate::check_dims_f64(m, n, k, a, b, c);
            // SAFETY: as for `nn_f32` above — construction implies avx2+fma.
            unsafe { nn_f64(m, n, k, a, b, c) }
        }
    }

    /// Register tile: `R` output rows × `S` eight-lane column strips.
    ///
    /// The fold for each output element is `p` ascending with one FMA per
    /// step, independent of `R`/`S` — grouping choices are bitwise-invisible.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn micro_f32<const R: usize, const S: usize>(
        k: usize,
        n: usize,
        a: &[f32],      // ≥ R rows, row stride k
        b: &[f32],      // k×n row-major
        j: usize,       // first column of this strip; j + S·LF32 ≤ n
        c: &mut [f32],  // ≥ R rows, row stride n
    ) {
        debug_assert!(j + S * LF32 <= n);
        let bp = b.as_ptr();
        let mut acc = [[_mm256_setzero_ps(); S]; R];
        for p in 0..k {
            let mut bv = [_mm256_setzero_ps(); S];
            for (s, lane) in bv.iter_mut().enumerate() {
                // SAFETY: entry asserts give b.len() ≥ k·n; with p < k and
                // j + S·LF32 ≤ n every strip read ends at or before
                // p·n + j + S·LF32 ≤ k·n.
                *lane = unsafe { _mm256_loadu_ps(bp.add(p * n + j + s * LF32)) };
            }
            for (r, row) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(a[r * k + p]);
                for (s, cell) in row.iter_mut().enumerate() {
                    *cell = _mm256_fmadd_ps(av, bv[s], *cell);
                }
            }
        }
        let cp = c.as_mut_ptr();
        for (r, row) in acc.iter().enumerate() {
            for (s, cell) in row.iter().enumerate() {
                // SAFETY: entry asserts give c.len() ≥ R rows of stride n
                // and j + S·LF32 ≤ n, so each store ends at or before
                // r·n + j + S·LF32 ≤ R·n ≤ c.len().
                unsafe { _mm256_storeu_ps(cp.add(r * n + j + s * LF32), *cell) };
            }
        }
    }

    /// All columns for a fixed group of `R` rows: wide strips, then single
    /// registers, then a scalar `mul_add` tail (bit-identical fold).
    #[target_feature(enable = "avx2", enable = "fma")]
    fn rows_f32<const R: usize, const S: usize>(
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        let mut j = 0;
        while j + S * LF32 <= n {
            micro_f32::<R, S>(k, n, a, b, j, c);
            j += S * LF32;
        }
        while j + LF32 <= n {
            micro_f32::<R, 1>(k, n, a, b, j, c);
            j += LF32;
        }
        for jj in j..n {
            for r in 0..R {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc = a[r * k + p].mul_add(b[p * n + jj], acc);
                }
                c[r * n + jj] = acc;
            }
        }
    }

    /// `C = A·B` (overwrite). Dedicated tall-skinny microkernels serve the
    /// paper's M ≤ 3 shapes with the widest strips; taller panels run
    /// four-row groups with the remainder on the M ≤ 3 kernels.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn nn_f32(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        let mut i = 0;
        while i + 4 <= m {
            rows_f32::<4, 2>(k, n, &a[i * k..], b, &mut c[i * n..]);
            i += 4;
        }
        match m - i {
            1 => rows_f32::<1, 6>(k, n, &a[i * k..], b, &mut c[i * n..]),
            2 => rows_f32::<2, 4>(k, n, &a[i * k..], b, &mut c[i * n..]),
            3 => rows_f32::<3, 3>(k, n, &a[i * k..], b, &mut c[i * n..]),
            _ => {}
        }
    }

    /// f64 mirror of [`micro_f32`]: `R` rows × `S` four-lane strips.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn micro_f64<const R: usize, const S: usize>(
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        j: usize,
        c: &mut [f64],
    ) {
        debug_assert!(j + S * LF64 <= n);
        let bp = b.as_ptr();
        let mut acc = [[_mm256_setzero_pd(); S]; R];
        for p in 0..k {
            let mut bv = [_mm256_setzero_pd(); S];
            for (s, lane) in bv.iter_mut().enumerate() {
                // SAFETY: b.len() ≥ k·n (entry asserts), p < k and
                // j + S·LF64 ≤ n bound every read by k·n.
                *lane = unsafe { _mm256_loadu_pd(bp.add(p * n + j + s * LF64)) };
            }
            for (r, row) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_pd(a[r * k + p]);
                for (s, cell) in row.iter_mut().enumerate() {
                    *cell = _mm256_fmadd_pd(av, bv[s], *cell);
                }
            }
        }
        let cp = c.as_mut_ptr();
        for (r, row) in acc.iter().enumerate() {
            for (s, cell) in row.iter().enumerate() {
                // SAFETY: c.len() ≥ R rows of stride n (entry asserts) and
                // j + S·LF64 ≤ n bound every store by R·n ≤ c.len().
                unsafe { _mm256_storeu_pd(cp.add(r * n + j + s * LF64), *cell) };
            }
        }
    }

    /// f64 mirror of [`rows_f32`].
    #[target_feature(enable = "avx2", enable = "fma")]
    fn rows_f64<const R: usize, const S: usize>(
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
    ) {
        let mut j = 0;
        while j + S * LF64 <= n {
            micro_f64::<R, S>(k, n, a, b, j, c);
            j += S * LF64;
        }
        while j + LF64 <= n {
            micro_f64::<R, 1>(k, n, a, b, j, c);
            j += LF64;
        }
        for jj in j..n {
            for r in 0..R {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc = a[r * k + p].mul_add(b[p * n + jj], acc);
                }
                c[r * n + jj] = acc;
            }
        }
    }

    /// f64 mirror of [`nn_f32`].
    #[target_feature(enable = "avx2", enable = "fma")]
    fn nn_f64(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        let mut i = 0;
        while i + 4 <= m {
            rows_f64::<4, 2>(k, n, &a[i * k..], b, &mut c[i * n..]);
            i += 4;
        }
        match m - i {
            1 => rows_f64::<1, 6>(k, n, &a[i * k..], b, &mut c[i * n..]),
            2 => rows_f64::<2, 4>(k, n, &a[i * k..], b, &mut c[i * n..]),
            3 => rows_f64::<3, 3>(k, n, &a[i * k..], b, &mut c[i * n..]),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// NEON (aarch64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use core::arch::aarch64::{
        float32x4_t, float64x2_t, vdupq_n_f32, vdupq_n_f64, vfmaq_f32, vfmaq_f64, vld1q_f32,
        vld1q_f64, vst1q_f32, vst1q_f64,
    };

    /// f32 lanes per 128-bit register.
    const LF32: usize = 4;
    /// f64 lanes per 128-bit register.
    const LF64: usize = 2;

    pub(crate) struct NeonKernel;

    // NEON is part of the aarch64 baseline target features, so no runtime
    // detection and no `#[target_feature]` attributes are needed; only the
    // pointer loads/stores are unsafe.

    impl crate::Kernel for NeonKernel {
        fn class(&self) -> crate::DispatchClass {
            crate::DispatchClass::Neon
        }

        fn nn_f32(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
            crate::check_dims_f32(m, n, k, a, b, c);
            nn_f32(m, n, k, a, b, c);
        }

        fn nn_f64(&self, m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
            crate::check_dims_f64(m, n, k, a, b, c);
            nn_f64(m, n, k, a, b, c);
        }
    }

    /// Register tile: `R` output rows × `S` four-lane column strips; the
    /// same ascending-p single-FMA fold as the AVX2 kernels, so the
    /// portable fused references pin this class bit for bit too.
    fn micro_f32<const R: usize, const S: usize>(
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        j: usize,
        c: &mut [f32],
    ) {
        debug_assert!(j + S * LF32 <= n);
        let bp = b.as_ptr();
        let mut acc = [[vdupq_n_f32(0.0); S]; R];
        for p in 0..k {
            let mut bv = [vdupq_n_f32(0.0); S];
            for (s, lane) in bv.iter_mut().enumerate() {
                // SAFETY: entry asserts give b.len() ≥ k·n; p < k and
                // j + S·LF32 ≤ n bound every lane read by k·n.
                *lane = unsafe { vld1q_f32(bp.add(p * n + j + s * LF32)) };
            }
            for (r, row) in acc.iter_mut().enumerate() {
                let av = vdupq_n_f32(a[r * k + p]);
                for (s, cell) in row.iter_mut().enumerate() {
                    *cell = vfmaq_f32(*cell, av, bv[s]);
                }
            }
        }
        let cp = c.as_mut_ptr();
        for (r, row) in acc.iter().enumerate() {
            for (s, cell) in row.iter().enumerate() {
                // SAFETY: c.len() ≥ R rows of stride n (entry asserts) and
                // j + S·LF32 ≤ n bound every store by R·n ≤ c.len().
                unsafe { vst1q_f32(cp.add(r * n + j + s * LF32), *cell) };
            }
        }
    }

    fn rows_f32<const R: usize, const S: usize>(
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        let mut j = 0;
        while j + S * LF32 <= n {
            micro_f32::<R, S>(k, n, a, b, j, c);
            j += S * LF32;
        }
        while j + LF32 <= n {
            micro_f32::<R, 1>(k, n, a, b, j, c);
            j += LF32;
        }
        for jj in j..n {
            for r in 0..R {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc = a[r * k + p].mul_add(b[p * n + jj], acc);
                }
                c[r * n + jj] = acc;
            }
        }
    }

    fn nn_f32(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        let mut i = 0;
        while i + 4 <= m {
            rows_f32::<4, 4>(k, n, &a[i * k..], b, &mut c[i * n..]);
            i += 4;
        }
        match m - i {
            1 => rows_f32::<1, 8>(k, n, &a[i * k..], b, &mut c[i * n..]),
            2 => rows_f32::<2, 6>(k, n, &a[i * k..], b, &mut c[i * n..]),
            3 => rows_f32::<3, 4>(k, n, &a[i * k..], b, &mut c[i * n..]),
            _ => {}
        }
    }

    fn micro_f64<const R: usize, const S: usize>(
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        j: usize,
        c: &mut [f64],
    ) {
        debug_assert!(j + S * LF64 <= n);
        let bp = b.as_ptr();
        let mut acc = [[vdupq_n_f64(0.0); S]; R];
        for p in 0..k {
            let mut bv = [vdupq_n_f64(0.0); S];
            for (s, lane) in bv.iter_mut().enumerate() {
                // SAFETY: entry asserts give b.len() ≥ k·n; p < k and
                // j + S·LF64 ≤ n bound every lane read by k·n.
                *lane = unsafe { vld1q_f64(bp.add(p * n + j + s * LF64)) };
            }
            for (r, row) in acc.iter_mut().enumerate() {
                let av = vdupq_n_f64(a[r * k + p]);
                for (s, cell) in row.iter_mut().enumerate() {
                    *cell = vfmaq_f64(*cell, av, bv[s]);
                }
            }
        }
        let cp = c.as_mut_ptr();
        for (r, row) in acc.iter().enumerate() {
            for (s, cell) in row.iter().enumerate() {
                // SAFETY: c.len() ≥ R rows of stride n (entry asserts) and
                // j + S·LF64 ≤ n bound every store by R·n ≤ c.len().
                unsafe { vst1q_f64(cp.add(r * n + j + s * LF64), *cell) };
            }
        }
    }

    fn rows_f64<const R: usize, const S: usize>(
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
    ) {
        let mut j = 0;
        while j + S * LF64 <= n {
            micro_f64::<R, S>(k, n, a, b, j, c);
            j += S * LF64;
        }
        while j + LF64 <= n {
            micro_f64::<R, 1>(k, n, a, b, j, c);
            j += LF64;
        }
        for jj in j..n {
            for r in 0..R {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc = a[r * k + p].mul_add(b[p * n + jj], acc);
                }
                c[r * n + jj] = acc;
            }
        }
    }

    fn nn_f64(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        let mut i = 0;
        while i + 4 <= m {
            rows_f64::<4, 4>(k, n, &a[i * k..], b, &mut c[i * n..]);
            i += 4;
        }
        match m - i {
            1 => rows_f64::<1, 8>(k, n, &a[i * k..], b, &mut c[i * n..]),
            2 => rows_f64::<2, 6>(k, n, &a[i * k..], b, &mut c[i * n..]),
            3 => rows_f64::<3, 4>(k, n, &a[i * k..], b, &mut c[i * n..]),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so the crate stays dependency-free.
    struct Rng(u64);
    impl Rng {
        fn next_unit(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        }
    }

    const EDGE_SHAPES: &[(usize, usize, usize)] = &[
        (0, 5, 4),    // m = 0
        (1, 1, 0),    // k = 0
        (1, 240, 240),
        (2, 33, 17),  // n not a multiple of any strip width
        (3, 8, 64),
        (4, 5, 3),
        (5, 31, 7),   // m % 4 != 0 and ragged n
        (8, 48, 24),
        (17, 33, 12),
    ];

    /// The native kernel (when present) must reproduce the portable fused
    /// fold bit for bit on every edge shape — this is the class contract.
    #[test]
    fn native_matches_fused_reference_bitwise() {
        let Some(kernel) = native() else { return };
        let mut rng = Rng(0x9e3779b97f4a7c15);
        for &(m, n, k) in EDGE_SHAPES {
            let a64: Vec<f64> = (0..m * k).map(|_| rng.next_unit()).collect();
            let b64: Vec<f64> = (0..k * n).map(|_| rng.next_unit()).collect();
            let mut want64 = vec![0.0f64; m * n];
            let mut got64 = vec![1.5f64; m * n]; // poison: kernels overwrite
            reference_nn_f64(m, n, k, &a64, &b64, &mut want64);
            kernel.nn_f64(m, n, k, &a64, &b64, &mut got64);
            if m * n > 0 {
                assert_eq!(want64, got64, "f64 {m}x{n}x{k} ({:?})", kernel.class());
            }

            let a32: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
            let b32: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
            let mut want32 = vec![0.0f32; m * n];
            let mut got32 = vec![1.5f32; m * n];
            reference_nn_f32(m, n, k, &a32, &b32, &mut want32);
            kernel.nn_f32(m, n, k, &a32, &b32, &mut got32);
            if m * n > 0 {
                assert_eq!(want32, got32, "f32 {m}x{n}x{k} ({:?})", kernel.class());
            }
        }
    }

    /// Row independence: computing a stacked panel equals computing each row
    /// alone, bit for bit — the property batched inference leans on.
    #[test]
    fn native_rows_are_independent_bitwise() {
        let Some(kernel) = native() else { return };
        let (m, n, k) = (7, 50, 33);
        let mut rng = Rng(42);
        let a: Vec<f32> = (0..m * k).map(|_| rng.next_unit() as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.next_unit() as f32).collect();
        let mut stacked = vec![0.0f32; m * n];
        kernel.nn_f32(m, n, k, &a, &b, &mut stacked);
        for i in 0..m {
            let mut solo = vec![0.0f32; n];
            kernel.nn_f32(1, n, k, &a[i * k..(i + 1) * k], &b, &mut solo);
            assert_eq!(&stacked[i * n..(i + 1) * n], &solo[..], "row {i}");
        }
    }

    #[test]
    fn class_tags_are_stable() {
        assert_eq!(DispatchClass::Scalar.tag(), "scalar");
        assert_eq!(DispatchClass::Avx2.tag(), "avx2");
        assert_eq!(DispatchClass::Neon.tag(), "neon");
        let class = native_class();
        if let Some(k) = native() {
            assert_eq!(k.class(), class);
            assert_ne!(class, DispatchClass::Scalar);
        }
    }
}
