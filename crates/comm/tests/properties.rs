//! Property-based tests of the communication layer: scheme equivalence and
//! plan conservation laws on randomized configurations.

use proptest::prelude::*;

use dpmd_comm::fault::{FaultPlan, FaultSession};
use dpmd_comm::functional::{
    exchange_ghosts, exchange_ghosts_recoverable, ghost_signature, partition, ExchangeScheme,
};
use dpmd_comm::plan::{HaloPlan, ATOM_FORWARD_BYTES};
use minimd::atoms::{copper_species, Atoms};
use minimd::domain::Decomposition;
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;

/// A random uniform configuration over a random (small) node grid.
fn random_setup(seed: u64, natoms: usize, grid: [usize; 3]) -> (Decomposition, Atoms) {
    let bx = SimBox::new(24.0 * grid[0] as f64, 24.0 * grid[1] as f64, 12.0 * grid[2] as f64);
    let decomp = Decomposition::new(bx, grid);
    let mut atoms = Atoms::new(copper_species());
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let l = bx.lengths();
    for i in 0..natoms {
        atoms.push_local(
            i as u64 + 1,
            0,
            Vec3::new(next() * l.x, next() * l.y, next() * l.z),
            Vec3::ZERO,
        );
    }
    (decomp, atoms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The two exchange schemes deliver identical ghost multisets on random
    /// configurations and cutoffs.
    #[test]
    fn schemes_equivalent_on_random_configs(
        seed in any::<u64>(),
        natoms in 50usize..300,
        rc in 3.0f64..6.0,
    ) {
        let (decomp, atoms) = random_setup(seed, natoms, [2, 2, 3]);
        let mut a = partition(&decomp, &atoms);
        let mut b = partition(&decomp, &atoms);
        exchange_ghosts(&decomp, &mut a, rc, ExchangeScheme::RankP2p, false);
        exchange_ghosts(&decomp, &mut b, rc, ExchangeScheme::NodeBased, false);
        for r in 0..decomp.num_ranks() {
            prop_assert_eq!(ghost_signature(&a[r]), ghost_signature(&b[r]), "rank {}", r);
        }
    }

    /// Plan conservation: every rank's send bytes sum to the plan total,
    /// and node-level traffic never exceeds rank-level traffic.
    #[test]
    fn plan_conservation(seed in any::<u64>(), natoms in 50usize..400) {
        let (decomp, atoms) = random_setup(seed, natoms, [2, 3, 2]);
        let plan = HaloPlan::build(&decomp, &atoms, 5.0);
        let per_rank: usize = (0..decomp.num_ranks()).map(|r| plan.rank_send_bytes(r)).sum();
        prop_assert_eq!(per_rank, plan.rank_ghost_atoms() * ATOM_FORWARD_BYTES);
        prop_assert!(plan.node_ghost_atoms() <= plan.rank_ghost_atoms());
        prop_assert!(plan.node_message_count() <= plan.rank_message_count().max(1));
    }

    /// Ghost counts in the plan match what the functional exchange delivers
    /// at node level.
    #[test]
    fn plan_counts_match_functional_exchange(seed in any::<u64>(), natoms in 80usize..250) {
        let rc = 5.0;
        let (decomp, atoms) = random_setup(seed, natoms, [2, 2, 3]);
        let plan = HaloPlan::build(&decomp, &atoms, rc);
        let mut per_rank = partition(&decomp, &atoms);
        exchange_ghosts(&decomp, &mut per_rank, rc, ExchangeScheme::NodeBased, false);
        // Inter-node plan total = unique (atom, dst-node) pairs; functional
        // rank ghosts include intra-node siblings, so plan ≤ delivered sum.
        let delivered: usize = per_rank.iter().map(|a| a.nghost()).sum();
        prop_assert!(plan.node_ghost_atoms() <= delivered + natoms);
    }

    /// Fault injection with recovery is invisible: on random configurations,
    /// fault seeds and fault rates, the faulted exchange produces ghost
    /// arrays *bitwise* identical to the clean exchange — for both schemes.
    #[test]
    fn faulted_exchange_is_bitwise_invisible(
        seed in any::<u64>(),
        fseed in any::<u64>(),
        natoms in 50usize..200,
        drop in 0.0f64..0.5,
        dup in 0.0f64..0.4,
    ) {
        let rc = 4.5;
        let (decomp, atoms) = random_setup(seed, natoms, [2, 2, 2]);
        for scheme in [ExchangeScheme::RankP2p, ExchangeScheme::NodeBased] {
            let mut clean = partition(&decomp, &atoms);
            let mut faulted = partition(&decomp, &atoms);
            exchange_ghosts(&decomp, &mut clean, rc, scheme, false);
            let mut plan = FaultPlan::chaos(fseed);
            plan.drop_p = drop;
            plan.dup_p = dup;
            let mut session = FaultSession::new(plan);
            exchange_ghosts_recoverable(
                &decomp, &mut faulted, rc, scheme, false, &mut session, 1,
            );
            for r in 0..decomp.num_ranks() {
                prop_assert_eq!(clean[r].len(), faulted[r].len(), "rank {}", r);
                for i in clean[r].nlocal..clean[r].len() {
                    prop_assert_eq!(clean[r].id[i], faulted[r].id[i], "rank {} ghost {}", r, i);
                    for k in 0..3 {
                        prop_assert_eq!(
                            clean[r].pos[i][k].to_bits(),
                            faulted[r].pos[i][k].to_bits(),
                            "rank {} ghost {} axis {}: {:?} scheme", r, i, k, scheme
                        );
                    }
                }
            }
        }
    }

    /// The two schemes' ghost arrays are bitwise equal (not just equal as
    /// quantized multisets) — the invariant that lets a stalled-leader
    /// fallback swap schemes mid-run without perturbing the trajectory.
    #[test]
    fn schemes_are_bitwise_interchangeable(seed in any::<u64>(), natoms in 50usize..250) {
        let rc = 5.0;
        let (decomp, atoms) = random_setup(seed, natoms, [2, 2, 3]);
        let mut p2p = partition(&decomp, &atoms);
        let mut node = partition(&decomp, &atoms);
        exchange_ghosts(&decomp, &mut p2p, rc, ExchangeScheme::RankP2p, false);
        exchange_ghosts(&decomp, &mut node, rc, ExchangeScheme::NodeBased, false);
        for r in 0..decomp.num_ranks() {
            prop_assert_eq!(p2p[r].len(), node[r].len(), "rank {}", r);
            for i in p2p[r].nlocal..p2p[r].len() {
                prop_assert_eq!(p2p[r].id[i], node[r].id[i]);
                for k in 0..3 {
                    prop_assert_eq!(
                        p2p[r].pos[i][k].to_bits(),
                        node[r].pos[i][k].to_bits(),
                        "rank {} ghost {} axis {}", r, i, k
                    );
                }
            }
        }
    }

    /// Same fault seed ⇒ identical injected faults and recovery work: two
    /// runs of the same scenario produce equal stats, field for field.
    #[test]
    fn fault_replay_is_deterministic(fseed in any::<u64>(), natoms in 50usize..150) {
        let rc = 4.5;
        let (decomp, atoms) = random_setup(9, natoms, [2, 2, 2]);
        let run = |fseed: u64| {
            let mut per_rank = partition(&decomp, &atoms);
            let mut session = FaultSession::new(FaultPlan::chaos(fseed));
            for step in 1..=3 {
                exchange_ghosts_recoverable(
                    &decomp, &mut per_rank, rc, ExchangeScheme::NodeBased, false,
                    &mut session, step,
                );
            }
            session.stats
        };
        prop_assert_eq!(run(fseed), run(fseed), "same seed must replay identically");
    }

    /// Every ghost delivered is within the cutoff of its destination rank's
    /// sub-box (no spurious ghosts).
    #[test]
    fn ghosts_are_within_cutoff_of_their_rank_box(seed in any::<u64>(), natoms in 60usize..200) {
        let rc = 4.0;
        let (decomp, atoms) = random_setup(seed, natoms, [2, 2, 2]);
        let mut per_rank = partition(&decomp, &atoms);
        exchange_ghosts(&decomp, &mut per_rank, rc, ExchangeScheme::RankP2p, false);
        for (r, a) in per_rank.iter().enumerate() {
            let (lo, hi) = decomp.rank_box(r);
            for g in a.nlocal..a.len() {
                let p = a.pos[g];
                // Ghost positions are image-shifted toward the box: plain
                // Euclidean distance to the box must be ≤ rc.
                let mut d2 = 0.0;
                for k in 0..3 {
                    let d = if p[k] < lo[k] {
                        lo[k] - p[k]
                    } else if p[k] > hi[k] {
                        p[k] - hi[k]
                    } else {
                        0.0
                    };
                    d2 += d * d;
                }
                prop_assert!(d2 <= rc * rc + 1e-6, "rank {r} ghost at {p:?}, d2 {d2}");
            }
        }
    }
}
