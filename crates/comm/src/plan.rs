//! Halo plans: who must send which atoms to whom.
//!
//! A plan is computed from *real* atom positions — the same positions the
//! functional exchange ships — so message counts and sizes in the timing
//! models are grounded in the actual workload rather than an idealized
//! density.

use std::collections::BTreeMap;

use minimd::atoms::Atoms;
use minimd::domain::Decomposition;

/// Bytes shipped per ghost atom in the forward (position) direction:
/// 3 × f64 position + u64 id + u32 type (padded) — LAMMPS' border buffer.
pub const ATOM_FORWARD_BYTES: usize = 3 * 8 + 8 + 8;

/// Bytes shipped per ghost atom in the reverse (force) direction: 3 × f64.
pub const ATOM_REVERSE_BYTES: usize = 3 * 8;

/// A halo plan at rank and node granularity.
#[derive(Clone, Debug, Default)]
pub struct HaloPlan {
    /// Ghost atom count per directed rank pair `(src, dst)`.
    pub rank_pairs: BTreeMap<(usize, usize), usize>,
    /// Ghost atom count per directed node pair (deduplicated: an atom
    /// needed by several ranks of one node counts once).
    pub node_pairs: BTreeMap<(usize, usize), usize>,
    /// Number of ranks.
    pub num_ranks: usize,
    /// Number of nodes.
    pub num_nodes: usize,
}

impl HaloPlan {
    /// Build the plan: for every local atom, find the neighbour ranks and
    /// nodes whose ghost region contains it.
    pub fn build(decomp: &Decomposition, atoms: &Atoms, rc: f64) -> Self {
        let mut rank_pairs: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut node_pairs: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        // Stencils are identical for every rank/node (uniform grid), so
        // enumerate them once from rank/node 0 and translate.
        for i in 0..atoms.nlocal {
            let p = atoms.pos[i];
            let owner = decomp.rank_of_pos(p);
            let owner_node = decomp.rank_to_node(owner);
            for dst in decomp.neighbor_ranks(owner, rc) {
                if decomp.in_ghost_region_of_rank(dst, p, rc) {
                    *rank_pairs.entry((owner, dst)).or_insert(0) += 1;
                }
            }
            for dst_node in decomp.neighbor_nodes(owner_node, rc) {
                if decomp.in_ghost_region_of_node(dst_node, p, rc) {
                    *node_pairs.entry((owner_node, dst_node)).or_insert(0) += 1;
                }
            }
        }
        HaloPlan { rank_pairs, node_pairs, num_ranks: decomp.num_ranks(), num_nodes: decomp.num_nodes() }
    }

    /// Total directed rank-level messages.
    pub fn rank_message_count(&self) -> usize {
        self.rank_pairs.len()
    }

    /// Total directed node-level messages.
    pub fn node_message_count(&self) -> usize {
        self.node_pairs.len()
    }

    /// Total rank-level ghost atoms shipped (with duplication across ranks
    /// of the same node — the redundancy the node scheme removes).
    pub fn rank_ghost_atoms(&self) -> usize {
        self.rank_pairs.values().sum()
    }

    /// Total node-level ghost atoms shipped.
    pub fn node_ghost_atoms(&self) -> usize {
        self.node_pairs.values().sum()
    }

    /// Bytes a given rank sends in the forward phase (sum over dsts).
    pub fn rank_send_bytes(&self, rank: usize) -> usize {
        self.rank_pairs
            .iter()
            .filter(|((s, _), _)| *s == rank)
            .map(|(_, &n)| n * ATOM_FORWARD_BYTES)
            .sum()
    }

    /// Messages a given node sends in the forward phase, as
    /// `(dst_node, bytes)` pairs sorted by destination.
    pub fn node_sends(&self, node: usize) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .node_pairs
            .iter()
            .filter(|((s, _), _)| *s == node)
            .map(|(&(_, d), &n)| (d, n * ATOM_FORWARD_BYTES))
            .collect();
        v.sort_unstable();
        v
    }

    /// Messages a given node sends with an explicit per-atom payload.
    pub fn node_sends_with(&self, node: usize, bytes_per_atom: usize) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .node_pairs
            .iter()
            .filter(|((s, _), _)| *s == node)
            .map(|(&(_, d), &n)| (d, n * bytes_per_atom))
            .collect();
        v.sort_unstable();
        v
    }

    /// Messages a given node sends on the *reverse* (force) path: one per
    /// node it received ghosts from, carrying those ghosts' forces.
    pub fn node_reverse_sends(&self, node: usize, bytes_per_atom: usize) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .node_pairs
            .iter()
            .filter(|((_, d), _)| *d == node)
            .map(|(&(s, _), &n)| (s, n * bytes_per_atom))
            .collect();
        v.sort_unstable();
        v
    }

    /// Messages a given rank sends, as `(dst_rank, bytes)` sorted.
    pub fn rank_sends(&self, rank: usize) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self
            .rank_pairs
            .iter()
            .filter(|((s, _), _)| *s == rank)
            .map(|(&(_, d), &n)| (d, n * ATOM_FORWARD_BYTES))
            .collect();
        v.sort_unstable();
        v
    }

    /// The data-volume reduction of node aggregation: `1 − node/rank` bytes
    /// (counting only inter-node rank traffic would be even more
    /// favourable; this is the conservative global ratio).
    pub fn aggregation_saving(&self) -> f64 {
        let rank_bytes = self.rank_ghost_atoms();
        if rank_bytes == 0 {
            return 0.0;
        }
        1.0 - self.node_ghost_atoms() as f64 / rank_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::lattice::fcc_lattice;
    use minimd::simbox::SimBox;

    /// A decomposition whose rank sub-box edge is `frac·rc`.
    fn decomp_with(frac: f64, rc: f64, nodes: [usize; 3]) -> (Decomposition, Atoms) {
        // Rank edge = frac·rc; ranks = (2nx, 2ny, nz).
        let edge = frac * rc;
        let bx = SimBox::new(
            edge * 2.0 * nodes[0] as f64,
            edge * 2.0 * nodes[1] as f64,
            edge * nodes[2] as f64,
        );
        // Fill with an FCC lattice stretched to the box (approximate density
        // is fine — the plan only needs *some* uniform atoms).
        let cells = [
            (bx.lengths().x / 3.615).ceil() as usize,
            (bx.lengths().y / 3.615).ceil() as usize,
            (bx.lengths().z / 3.615).ceil() as usize,
        ];
        let (_, mut atoms) = fcc_lattice(cells[0].max(1), cells[1].max(1), cells[2].max(1), 3.615);
        // Rescale positions into the target box.
        let sx = bx.lengths().x / (cells[0].max(1) as f64 * 3.615);
        let sy = bx.lengths().y / (cells[1].max(1) as f64 * 3.615);
        let sz = bx.lengths().z / (cells[2].max(1) as f64 * 3.615);
        for p in &mut atoms.pos {
            p.x *= sx;
            p.y *= sy;
            p.z *= sz;
            *p = bx.wrap(*p);
        }
        (Decomposition::new(bx, nodes), atoms)
    }

    #[test]
    fn node_aggregation_reduces_both_messages_and_volume() {
        // Strong-scaling shape: sub-box edge = 0.5·rc on a grid large
        // enough that halos don't alias.
        let (decomp, atoms) = decomp_with(0.5, 8.0, [4, 4, 6]);
        let plan = HaloPlan::build(&decomp, &atoms, 8.0);
        assert!(plan.rank_message_count() > plan.node_message_count());
        assert!(plan.rank_ghost_atoms() > plan.node_ghost_atoms());
        // The saving should be substantial at the strong-scaling limit —
        // the paper reports 81% total comm reduction; pure volume dedup
        // contributes a large share.
        let saving = plan.aggregation_saving();
        assert!(saving > 0.4, "aggregation saving only {saving:.2}");
    }

    #[test]
    fn every_pair_in_the_plan_is_a_stencil_neighbor() {
        let (decomp, atoms) = decomp_with(1.0, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&decomp, &atoms, 8.0);
        for (&(s, d), &n) in &plan.rank_pairs {
            assert!(n > 0);
            assert!(decomp.neighbor_ranks(s, 8.0).contains(&d), "({s}, {d}) not a stencil pair");
        }
    }

    #[test]
    fn sends_sum_matches_pair_totals() {
        let (decomp, atoms) = decomp_with(1.0, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&decomp, &atoms, 8.0);
        let total_rank_bytes: usize = (0..decomp.num_ranks()).map(|r| plan.rank_send_bytes(r)).sum();
        assert_eq!(total_rank_bytes, plan.rank_ghost_atoms() * ATOM_FORWARD_BYTES);
        let total_node_bytes: usize =
            (0..decomp.num_nodes()).flat_map(|n| plan.node_sends(n)).map(|(_, b)| b).sum();
        assert_eq!(total_node_bytes, plan.node_ghost_atoms() * ATOM_FORWARD_BYTES);
    }

    #[test]
    fn symmetric_lattice_gives_symmetric_plan() {
        let (decomp, atoms) = decomp_with(1.0, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&decomp, &atoms, 8.0);
        // Uniform density on a torus: (s→d) and (d→s) should carry similar
        // loads (not exact for a lattice not commensurate with sub-boxes).
        for (&(s, d), &n) in plan.node_pairs.iter().take(20) {
            let back = plan.node_pairs.get(&(d, s)).copied().unwrap_or(0);
            assert!(back > 0, "missing reverse pair ({d}, {s})");
            let ratio = n as f64 / back as f64;
            assert!((0.2..5.0).contains(&ratio), "asymmetric: {n} vs {back}");
        }
    }
}
