//! # dpmd-comm — ghost-region communication over the simulated Fugaku
//!
//! Implements the three communication organizations compared in the paper's
//! Fig. 7, plus the supporting machinery:
//!
//! * [`plan`] — halo *plans* computed from real atom positions and the
//!   domain decomposition: which atoms each rank/node must ship where, in
//!   how many messages, of what size;
//! * [`three_stage`] — LAMMPS' staged exchange (x then y then z, `N_d`
//!   rounds per direction), over MPI or uTofu;
//! * [`p2p`] — direct rank-to-rank exchange with every stencil neighbour;
//! * [`node_based`] — the paper's contribution: per-node aggregation
//!   through shared memory, leader ranks (1, 2 or 4), RDMA to neighbouring
//!   nodes' leaders with one thread per TNI, receive-side scatter, and the
//!   reverse (force-reduction) path;
//! * [`mempool`] — the RDMA memory-pool experiment (Fig. 8): per-neighbour
//!   buffer registration vs one pooled region, against the NIC cache model,
//!   plus the functional [`MemPool`] accounting allocator (exhaustion is a
//!   retriable error, never a panic);
//! * [`driver`] — a functional distributed MD driver (exchange → compute →
//!   reverse → integrate → migrate) pinned against the single-box
//!   trajectory;
//! * [`functional`] — an in-process *functional* ghost exchange that
//!   actually moves atoms between per-rank stores, used to prove all
//!   schemes deliver identical ghost sets (the correctness side of the
//!   performance story);
//! * [`fault`] — seeded, deterministic fault injection ([`FaultPlan`]):
//!   drop/duplicate/reorder/delay individual exchange messages, stall a
//!   leader rank or TNI, cap the RDMA mempool — every decision keyed off
//!   `(seed, step, edge, attempt)` so a scenario replays bit-identically;
//! * [`transport`] — the recovery protocol over that faulty transport:
//!   per-edge sequence numbers, timeout/retry/backoff, idempotent apply;
//! * [`metrics`] — the [`CommMetrics`] handle bundle wiring all of the
//!   above into a `dpmd_obs::MetricsRegistry` (messages/bytes per edge and
//!   per scheme, transport retries and backoffs, mempool high-water, TNI
//!   utilization).

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod driver;
pub mod fault;
pub mod functional;
pub mod mempool;
pub mod metrics;
pub mod node_based;
pub mod p2p;
pub mod plan;
pub mod three_stage;
pub mod transport;

pub use fault::{FaultPlan, FaultSession, FaultStats, Stall, StallTarget};
pub use mempool::{MemPool, PoolBlock, PoolError};
pub use metrics::CommMetrics;
pub use node_based::{NodeSchemeConfig, NodeSchemeResult};
pub use plan::{HaloPlan, ATOM_FORWARD_BYTES, ATOM_REVERSE_BYTES};
pub use transport::{deliver_reliable, DeliveryError, Message, TransportError};
