//! Deterministic fault injection for the distributed exchange.
//!
//! The paper's communication scheme is only production-grade if it stays
//! correct when the network misbehaves. This module provides a *seeded,
//! replayable* fault model: every decision (drop this message? duplicate
//! it? how long is this rank stalled?) is a pure function of
//! `(seed, step, edge, attempt)`, so a fault scenario replays bit-for-bit
//! across runs — the property the chaos suite in `tests/fault_injection.rs`
//! pins.
//!
//! # Spec grammar
//!
//! A [`FaultPlan`] parses from a `;`-separated clause list (the `--faults`
//! CLI argument):
//!
//! ```text
//! spec    := clause (';' clause)*
//! clause  := 'seed=' u64              deterministic seed (default 1)
//!          | 'drop=' prob             per-(step,edge,attempt) drop chance
//!          | 'dup=' prob              duplicate-delivery chance
//!          | 'reorder=' prob          per-round delivery-order shuffle chance
//!          | 'delay=' prob ':' rounds in-flight delay chance and length
//!          | 'stall-leader=' rank '@' step '+' nsteps
//!          |                          leader rank stalled for nsteps steps
//!          | 'stall-tni=' tni '@' step '+' nsteps
//!          |                          one TNI engine stalled (timing model)
//!          | 'pool=' bytes            cap the RDMA mempool capacity
//!          | 'retries=' n             max delivery rounds - 1 (default 16)
//!          | 'backoff=' ns            base retry backoff, doubles per round
//! prob    := f64 in [0, 1)
//! ```
//!
//! Example: `seed=7;drop=0.15;dup=0.1;reorder=0.3;stall-leader=0@3+4`.

use std::collections::HashMap;

use crate::mempool::MemPool;

/// Per-fault-kind hash salts (distinct streams from one seed).
const SALT_DROP: u64 = 0x44524f50_00000001;
const SALT_DUP: u64 = 0x44555021_00000002;
const SALT_REORDER: u64 = 0x524f5244_00000003;
const SALT_DELAY: u64 = 0x44454c59_00000004;

/// What a stall clause targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallTarget {
    /// A leader rank's communication role: while active, the node-based
    /// scheme cannot aggregate through that leader and the driver degrades
    /// to rank-level p2p exchange.
    LeaderRank(usize),
    /// One of the six TNI engines (timing model: the engine is held busy).
    Tni(usize),
}

/// A stall window: `target` is unavailable for `steps` steps starting at
/// `from_step` (step indices as counted by the driver, first stride = 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stall {
    /// What is stalled.
    pub target: StallTarget,
    /// First affected step.
    pub from_step: u64,
    /// Number of affected steps.
    pub steps: u64,
}

impl Stall {
    /// `true` while the stall window covers `step`.
    pub fn active_at(&self, step: u64) -> bool {
        step >= self.from_step && step < self.from_step + self.steps
    }
}

/// A seeded, deterministic fault scenario for the exchange path.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of every probabilistic decision.
    pub seed: u64,
    /// Per-(step, edge, attempt) message drop probability.
    pub drop_p: f64,
    /// Duplicate-delivery probability.
    pub dup_p: f64,
    /// Per-round delivery-order shuffle probability.
    pub reorder_p: f64,
    /// In-flight delay probability.
    pub delay_p: f64,
    /// Rounds a delayed message stays in flight.
    pub delay_rounds: u32,
    /// Maximum retry rounds after the first transmission.
    pub max_retries: u32,
    /// Base simulated backoff per timed-out round, ns (doubles per round).
    pub backoff_base_ns: u64,
    /// RDMA mempool capacity cap in bytes (`None` = unbounded).
    pub pool_bytes: Option<usize>,
    /// Stall windows (leader ranks, TNIs).
    pub stalls: Vec<Stall>,
}

impl FaultPlan {
    /// The no-fault plan (every probability zero, nothing stalled).
    pub fn none() -> Self {
        FaultPlan {
            seed: 1,
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            delay_p: 0.0,
            delay_rounds: 1,
            max_retries: 16,
            backoff_base_ns: 500,
            pool_bytes: None,
            stalls: Vec::new(),
        }
    }

    /// A moderately hostile ready-made scenario: drops, duplicates,
    /// reorders and short delays, all keyed off `seed`.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.15,
            dup_p: 0.10,
            reorder_p: 0.30,
            delay_p: 0.10,
            delay_rounds: 2,
            ..FaultPlan::none()
        }
    }

    /// Parse the spec grammar documented at module level.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause '{clause}' is not key=value"))?;
            let (key, val) = (key.trim(), val.trim());
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 =
                    v.parse().map_err(|_| format!("'{v}' is not a probability"))?;
                if !(0.0..1.0).contains(&p) {
                    return Err(format!("probability {p} outside [0, 1)"));
                }
                Ok(p)
            };
            let int = |v: &str| -> Result<u64, String> {
                v.parse().map_err(|_| format!("'{v}' is not an integer"))
            };
            match key {
                "seed" => plan.seed = int(val)?,
                "drop" => plan.drop_p = prob(val)?,
                "dup" => plan.dup_p = prob(val)?,
                "reorder" => plan.reorder_p = prob(val)?,
                "delay" => {
                    let (p, r) = val
                        .split_once(':')
                        .ok_or_else(|| format!("delay spec '{val}' is not prob:rounds"))?;
                    plan.delay_p = prob(p.trim())?;
                    plan.delay_rounds = int(r.trim())?.max(1) as u32;
                }
                "retries" => plan.max_retries = int(val)? as u32,
                "backoff" => plan.backoff_base_ns = int(val)?,
                "pool" => plan.pool_bytes = Some(int(val)? as usize),
                "stall-leader" | "stall-tni" => {
                    let (target, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("stall spec '{val}' is not target@step+steps"))?;
                    let (from, steps) = window
                        .split_once('+')
                        .ok_or_else(|| format!("stall window '{window}' is not step+steps"))?;
                    let target = int(target.trim())? as usize;
                    let target = if key == "stall-leader" {
                        StallTarget::LeaderRank(target)
                    } else {
                        StallTarget::Tni(target)
                    };
                    plan.stalls.push(Stall {
                        target,
                        from_step: int(from.trim())?,
                        steps: int(steps.trim())?.max(1),
                    });
                }
                other => return Err(format!("unknown fault clause '{other}'")),
            }
        }
        Ok(plan)
    }

    /// The raw decision word for one `(kind, step, edge, attempt)` tuple.
    fn word(&self, salt: u64, step: u64, src: u32, dst: u32, attempt: u32) -> u64 {
        let mut h = splitmix(self.seed ^ salt);
        h = splitmix(h ^ step.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix(h ^ (((src as u64) << 32) | dst as u64));
        splitmix(h ^ attempt as u64)
    }

    fn chance(&self, p: f64, salt: u64, step: u64, src: u32, dst: u32, attempt: u32) -> bool {
        p > 0.0 && ((self.word(salt, step, src, dst, attempt) >> 11) as f64 / F53) < p
    }

    /// Drop the `(src → dst)` message at this step/attempt?
    pub fn decide_drop(&self, step: u64, src: u32, dst: u32, attempt: u32) -> bool {
        self.chance(self.drop_p, SALT_DROP, step, src, dst, attempt)
    }

    /// Deliver the message twice?
    pub fn decide_dup(&self, step: u64, src: u32, dst: u32, attempt: u32) -> bool {
        self.chance(self.dup_p, SALT_DUP, step, src, dst, attempt)
    }

    /// Hold the message in flight? Returns the extra rounds if so.
    pub fn decide_delay(&self, step: u64, src: u32, dst: u32, attempt: u32) -> Option<u32> {
        self.chance(self.delay_p, SALT_DELAY, step, src, dst, attempt)
            .then_some(self.delay_rounds)
    }

    /// Shuffle this round's delivery order? (`channel` keys the stream.)
    pub fn decide_reorder(&self, step: u64, channel: u64, round: u32) -> bool {
        self.chance(self.reorder_p, SALT_REORDER, step, channel as u32, !0, round)
    }

    /// Deterministic Fisher–Yates shuffle of `items` for a reorder fault.
    pub fn shuffle<T>(&self, step: u64, channel: u64, round: u32, items: &mut [T]) {
        let mut state =
            splitmix(self.word(SALT_REORDER, step, channel as u32, !0, round) | 1);
        for i in (1..items.len()).rev() {
            state = splitmix(state);
            items.swap(i, (state % (i as u64 + 1)) as usize);
        }
    }

    /// `true` if any leader-rank stall window covers `step`.
    pub fn leader_stalled_at(&self, step: u64) -> bool {
        self.stalls.iter().any(|s| {
            matches!(s.target, StallTarget::LeaderRank(_)) && s.active_at(step)
        })
    }

    /// TNIs stalled at `step` (timing-model faults), deduplicated.
    pub fn stalled_tnis_at(&self, step: u64) -> Vec<usize> {
        let mut tnis: Vec<usize> = self
            .stalls
            .iter()
            .filter(|s| s.active_at(step))
            .filter_map(|s| match s.target {
                StallTarget::Tni(t) => Some(t),
                _ => None,
            })
            .collect();
        tnis.sort_unstable();
        tnis.dedup();
        tnis
    }
}

const F53: f64 = (1u64 << 53) as f64;

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Counters of injected faults and the recovery work they caused. All
/// fields are deterministic functions of `(FaultPlan, workload)`, so two
/// runs of the same scenario produce equal stats — asserted by the chaos
/// suite.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transmissions, including resends.
    pub messages_sent: u64,
    /// Payload entries shipped (ghost atoms / force triplets).
    pub payload_entries: u64,
    /// Messages lost to drop faults.
    pub dropped: u64,
    /// Extra copies delivered by duplicate faults.
    pub duplicates_delivered: u64,
    /// Copies discarded by the receiver's idempotent apply.
    pub duplicates_ignored: u64,
    /// Rounds whose delivery order was shuffled.
    pub reorders: u64,
    /// Messages held in flight by delay faults.
    pub delayed: u64,
    /// Delayed messages that outlived their step's delivery loop.
    pub expired_in_flight: u64,
    /// Arrivals rejected by the sequence-number check.
    pub stale_rejected: u64,
    /// Resent messages (timeout-triggered retransmissions).
    pub retries: u64,
    /// Delivery rounds that ended with messages still missing.
    pub timeout_rounds: u64,
    /// Simulated exponential-backoff wait accumulated by retries, ns.
    pub backoff_ns: u64,
    /// Sends deferred because the RDMA mempool was exhausted.
    pub pool_exhausted: u64,
    /// Steps where a stalled leader degraded node-based to p2p exchange.
    pub fallback_steps: u64,
}

impl FaultStats {
    /// Total faults injected (drops + dups + reorders + delays + pool).
    pub fn faults_injected(&self) -> u64 {
        self.dropped
            + self.duplicates_delivered
            + self.reorders
            + self.delayed
            + self.pool_exhausted
    }
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "messages sent        {:>10}", self.messages_sent)?;
        writeln!(f, "payload entries      {:>10}", self.payload_entries)?;
        writeln!(f, "dropped              {:>10}", self.dropped)?;
        writeln!(f, "duplicates delivered {:>10}", self.duplicates_delivered)?;
        writeln!(f, "duplicates ignored   {:>10}", self.duplicates_ignored)?;
        writeln!(f, "rounds reordered     {:>10}", self.reorders)?;
        writeln!(f, "delayed in flight    {:>10}", self.delayed)?;
        writeln!(f, "expired in flight    {:>10}", self.expired_in_flight)?;
        writeln!(f, "stale rejected       {:>10}", self.stale_rejected)?;
        writeln!(f, "retries              {:>10}", self.retries)?;
        writeln!(f, "timeout rounds       {:>10}", self.timeout_rounds)?;
        writeln!(f, "backoff accumulated  {:>10} ns", self.backoff_ns)?;
        writeln!(f, "pool exhaustions     {:>10}", self.pool_exhausted)?;
        write!(f, "p2p fallback steps   {:>10}", self.fallback_steps)
    }
}

/// Mutable state of one faulted run: the plan, its counters, the RDMA
/// mempool staging send payloads, and the per-edge sequence counters of the
/// reliable-delivery protocol.
#[derive(Clone, Debug)]
pub struct FaultSession {
    /// The fault scenario.
    pub plan: FaultPlan,
    /// Counters accumulated so far.
    pub stats: FaultStats,
    /// Staging pool for send payloads (capacity from `plan.pool_bytes`).
    pub pool: MemPool,
    /// Optional observability mirror: when attached, the transport layer
    /// records retries/backoffs/pool pressure into the metrics registry
    /// alongside `stats` (clones share counters with the attacher).
    pub obs: Option<crate::metrics::CommMetrics>,
    next_seq: HashMap<(u64, u32, u32), u64>,
    last_accepted: HashMap<(u64, u32, u32), u64>,
}

impl FaultSession {
    /// Start a session for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let pool = match plan.pool_bytes {
            Some(cap) => MemPool::new(cap),
            None => MemPool::unbounded(),
        };
        FaultSession {
            plan,
            stats: FaultStats::default(),
            pool,
            obs: None,
            next_seq: HashMap::new(),
            last_accepted: HashMap::new(),
        }
    }

    /// Next sequence number for `(channel, src → dst)` (monotone from 1).
    pub(crate) fn next_seq(&mut self, channel: u64, src: u32, dst: u32) -> u64 {
        let c = self.next_seq.entry((channel, src, dst)).or_insert(0);
        *c += 1;
        *c
    }

    /// Receiver-side sequence check: accept `seq` if it is newer than the
    /// last accepted on this edge, recording it; stale otherwise.
    pub(crate) fn accept_seq(&mut self, channel: u64, src: u32, dst: u32, seq: u64) -> bool {
        let last = self.last_accepted.entry((channel, src, dst)).or_insert(0);
        if seq > *last {
            *last = seq;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_round_trips() {
        let p = FaultPlan::parse(
            "seed=7; drop=0.15;dup=0.1 ;reorder=0.3;delay=0.2:3;\
             stall-leader=0@3+4;stall-tni=5@2+6;pool=4096;retries=9;backoff=250",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.drop_p, 0.15);
        assert_eq!(p.dup_p, 0.1);
        assert_eq!(p.reorder_p, 0.3);
        assert_eq!((p.delay_p, p.delay_rounds), (0.2, 3));
        assert_eq!(p.pool_bytes, Some(4096));
        assert_eq!(p.max_retries, 9);
        assert_eq!(p.backoff_base_ns, 250);
        assert_eq!(
            p.stalls,
            vec![
                Stall { target: StallTarget::LeaderRank(0), from_step: 3, steps: 4 },
                Stall { target: StallTarget::Tni(5), from_step: 2, steps: 6 },
            ]
        );
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for bad in ["drop", "drop=1.5", "drop=x", "delay=0.5", "stall-leader=0@3", "frob=1"] {
            assert!(FaultPlan::parse(bad).is_err(), "spec '{bad}' should not parse");
        }
    }

    #[test]
    fn empty_spec_is_the_no_fault_plan() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
    }

    #[test]
    fn decisions_replay_identically_for_one_seed() {
        let a = FaultPlan::chaos(99);
        let b = FaultPlan::chaos(99);
        for step in 0..20 {
            for e in 0..50u32 {
                assert_eq!(a.decide_drop(step, e, e + 1, 0), b.decide_drop(step, e, e + 1, 0));
                assert_eq!(a.decide_dup(step, e, e + 1, 1), b.decide_dup(step, e, e + 1, 1));
                assert_eq!(
                    a.decide_delay(step, e, e + 1, 0),
                    b.decide_delay(step, e, e + 1, 0)
                );
            }
        }
    }

    #[test]
    fn different_seeds_diverge_and_probabilities_are_honoured() {
        let a = FaultPlan::chaos(1);
        let b = FaultPlan::chaos(2);
        let mut differ = 0;
        let mut hits = 0u32;
        let total = 4000;
        for step in 0..40 {
            for e in 0..100u32 {
                let (da, db) = (a.decide_drop(step, e, e, 0), b.decide_drop(step, e, e, 0));
                differ += (da != db) as u32;
                hits += da as u32;
            }
        }
        assert!(differ > 0, "two seeds never diverged");
        // drop_p = 0.15 over 4000 samples: expect ~600, allow a wide band.
        let rate = hits as f64 / total as f64;
        assert!((0.10..0.20).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn stall_windows_cover_exactly_their_steps() {
        let p = FaultPlan::parse("stall-leader=2@5+3;stall-tni=1@4+2").unwrap();
        for step in 0..12 {
            assert_eq!(p.leader_stalled_at(step), (5..8).contains(&step), "step {step}");
            let tnis = p.stalled_tnis_at(step);
            if (4..6).contains(&step) {
                assert_eq!(tnis, vec![1]);
            } else {
                assert!(tnis.is_empty());
            }
        }
    }

    #[test]
    fn shuffle_is_deterministic_and_a_permutation() {
        let p = FaultPlan::chaos(5);
        let mut a: Vec<u32> = (0..17).collect();
        let mut b: Vec<u32> = (0..17).collect();
        p.shuffle(3, 42, 1, &mut a);
        p.shuffle(3, 42, 1, &mut b);
        assert_eq!(a, b, "same key must shuffle identically");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..17).collect::<Vec<_>>());
        let mut c: Vec<u32> = (0..17).collect();
        p.shuffle(4, 42, 1, &mut c);
        assert_ne!(a, c, "different step should shuffle differently");
    }

    #[test]
    fn session_sequence_numbers_are_monotone_and_stale_is_rejected() {
        let mut s = FaultSession::new(FaultPlan::none());
        let s1 = s.next_seq(1, 0, 1);
        let s2 = s.next_seq(1, 0, 1);
        assert_eq!((s1, s2), (1, 2));
        assert!(s.accept_seq(1, 0, 1, s1));
        assert!(!s.accept_seq(1, 0, 1, s1), "replayed seq must be stale");
        assert!(s.accept_seq(1, 0, 1, s2));
        // Independent edges and channels do not interfere.
        assert_eq!(s.next_seq(2, 0, 1), 1);
        assert_eq!(s.next_seq(1, 1, 0), 1);
    }
}
