//! Direct point-to-point exchange: every rank messages every stencil
//! neighbour (the `p2p` pattern of refs [40], [47] and Fig. 7).
//!
//! Lower latency than the 3-stage pattern (one round trip, no forwarding),
//! but the message count explodes at the strong-scaling limit: 26 → 74 →
//! 124 neighbours per rank as the sub-box shrinks below the cutoff.

use fugaku::event::JobGraph;
use fugaku::machine::MachineConfig;
use fugaku::tofu::Torus3d;
use fugaku::utofu::{ApiCosts, CommApi};
use minimd::domain::Decomposition;

use crate::plan::HaloPlan;
use crate::three_stage::CommResult;

/// Simulate the p2p pattern for a concrete halo plan.
#[allow(clippy::needless_range_loop)] // rank index keys several parallel schedules
pub fn simulate(
    machine: &MachineConfig,
    decomp: &Decomposition,
    torus: &Torus3d,
    plan: &HaloPlan,
    api: CommApi,
) -> CommResult {
    let costs = ApiCosts::of(api);
    let mut g = JobGraph::new();

    // Resources: per-rank CPU, per-node TNIs.
    let mut node_tnis = Vec::with_capacity(decomp.num_nodes());
    for _ in 0..decomp.num_nodes() {
        node_tnis.push(g.resources(machine.tofu.tnis_per_node));
    }
    let mut rank_cpu = Vec::with_capacity(decomp.num_ranks());
    for _ in 0..decomp.num_ranks() {
        rank_cpu.push(g.resource());
    }

    let mut result = CommResult::default();
    // Sends: each rank posts its messages back-to-back on its CPU, TNIs
    // round-robin per node.
    let mut recv_deps: Vec<Vec<fugaku::event::JobId>> = vec![Vec::new(); decomp.num_ranks()];
    for r in 0..decomp.num_ranks() {
        let node = decomp.rank_to_node(r);
        for (msg_idx, (dst, bytes)) in plan.rank_sends(r).into_iter().enumerate() {
            let dst_node = decomp.rank_to_node(dst);
            let post = g.job(
                &[],
                Some(rank_cpu[r]),
                costs.send_overhead_ns + (costs.pack_ns_per_byte * bytes as f64) as u64,
                0,
            );
            if dst_node == node {
                let copy_ns = machine.chip.cross_numa_copy_ns(bytes, 2) as u64;
                let copy = g.job(&[post], Some(rank_cpu[r]), copy_ns, 0);
                recv_deps[dst].push(copy);
                result.intranode_messages += 1;
            } else {
                let hops = torus.hops(node, dst_node);
                let tni = node_tnis[node][msg_idx % machine.tofu.tnis_per_node];
                let inj = g.job(
                    &[post],
                    Some(tni),
                    machine.tni.engine_overhead_ns + (bytes as f64 / machine.tofu.link_bw) as u64,
                    machine.tofu.base_latency_ns as u64 + hops as u64 * machine.tofu.hop_latency_ns as u64,
                );
                recv_deps[dst].push(inj);
                result.internode_messages += 1;
                result.internode_bytes += bytes as u64;
            }
        }
    }
    // Receives: one processing job per incoming message on the dst CPU.
    for r in 0..decomp.num_ranks() {
        for &dep in &recv_deps[r] {
            g.job(&[dep], Some(rank_cpu[r]), costs.recv_overhead_ns, 0);
        }
    }
    result.total_ns = g.run().makespan;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::atoms::Atoms;
    use minimd::lattice::fcc_lattice;
    use minimd::simbox::SimBox;

    fn setup(frac: f64, rc: f64, nodes: [usize; 3]) -> (MachineConfig, Decomposition, Torus3d, Atoms) {
        let edge = frac * rc;
        let bx = SimBox::new(
            edge * 2.0 * nodes[0] as f64,
            edge * 2.0 * nodes[1] as f64,
            edge * nodes[2] as f64,
        );
        let cells = [
            (bx.lengths().x / 3.615).round().max(1.0) as usize,
            (bx.lengths().y / 3.615).round().max(1.0) as usize,
            (bx.lengths().z / 3.615).round().max(1.0) as usize,
        ];
        let (_, mut atoms) = fcc_lattice(cells[0], cells[1], cells[2], 3.615);
        let sx = bx.lengths().x / (cells[0] as f64 * 3.615);
        let sy = bx.lengths().y / (cells[1] as f64 * 3.615);
        let sz = bx.lengths().z / (cells[2] as f64 * 3.615);
        for p in &mut atoms.pos {
            p.x *= sx;
            p.y *= sy;
            p.z *= sz;
            *p = bx.wrap(*p);
        }
        (MachineConfig::default(), Decomposition::new(bx, nodes), Torus3d::new(nodes), atoms)
    }

    #[test]
    fn message_count_matches_plan() {
        let (m, d, t, atoms) = setup(1.0, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&d, &atoms, 8.0);
        let r = simulate(&m, &d, &t, &plan, CommApi::Utofu);
        assert_eq!(
            (r.internode_messages + r.intranode_messages) as usize,
            plan.rank_message_count()
        );
        assert!(r.total_ns > 0);
    }

    #[test]
    fn shrinking_subboxes_explodes_p2p_time() {
        let rc = 8.0;
        let (m, d1, t1, a1) = setup(1.0, rc, [3, 3, 4]);
        let p1 = HaloPlan::build(&d1, &a1, rc);
        let r1 = simulate(&m, &d1, &t1, &p1, CommApi::Utofu);
        let (_, d2, t2, a2) = setup(0.5, rc, [3, 3, 4]);
        let p2 = HaloPlan::build(&d2, &a2, rc);
        let r2 = simulate(&m, &d2, &t2, &p2, CommApi::Utofu);
        // Far more messages per rank (26 → up to 124) ⇒ slower despite the
        // smaller payloads.
        assert!(p2.rank_message_count() > 2 * p1.rank_message_count());
        assert!(r2.total_ns > r1.total_ns, "{} vs {}", r2.total_ns, r1.total_ns);
    }
}
