//! LAMMPS' 3-stage staged exchange.
//!
//! Ghosts propagate dimension by dimension: every rank exchanges with its
//! ±x neighbours `N_x` times (forwarding previously received atoms), then
//! ±y, then ±z. With a sub-box edge of `frac·r_c` the per-direction round
//! counts are `N_d = ceil(r_c / edge_d)`, giving the paper's 3, 5 and 6
//! successive exchanges for the three box configurations.

use fugaku::event::{JobGraph, JobId, ResourceId};
use fugaku::machine::MachineConfig;
use fugaku::tofu::Torus3d;
use fugaku::utofu::{ApiCosts, CommApi};
use minimd::domain::Decomposition;

use crate::plan::ATOM_FORWARD_BYTES;

/// Timing result of one simulated exchange.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommResult {
    /// End-to-end halo-exchange time, ns (graph makespan).
    pub total_ns: u64,
    /// Inter-node messages injected.
    pub internode_messages: u64,
    /// Intra-node transfers.
    pub intranode_messages: u64,
    /// Total payload bytes moved inter-node.
    pub internode_bytes: u64,
}

/// Per-round slab volumes of the 3-stage pattern: the message in round `k`
/// of direction `d` carries the atoms inside a slab of width
/// `min(edge_d, r_c − (k−1)·edge_d)`, over the cross-section accumulated so
/// far. Returns bytes per message for each round of each direction.
pub fn stage_message_bytes(decomp: &Decomposition, rc: f64, density: f64) -> [Vec<usize>; 3] {
    let e = decomp.rank_edges();
    let layers = Decomposition::comm_layers(e, rc);
    let mut out: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    // Accumulated extent starts at the sub-box and grows by 2·min(rc, ...)
    // in each completed direction.
    let mut extent = [e.x, e.y, e.z];
    for d in 0..3 {
        let edge = extent[d]; // own extent along d never grows in stage d
        let _ = edge;
        for k in 0..layers[d] {
            let covered = k as f64 * [e.x, e.y, e.z][d];
            let width = (rc - covered).min([e.x, e.y, e.z][d]).max(0.0);
            let cross: f64 = (0..3).filter(|&o| o != d).map(|o| extent[o]).product();
            let bytes = (density * width * cross).round() as usize * ATOM_FORWARD_BYTES;
            out[d].push(bytes.max(ATOM_FORWARD_BYTES));
        }
        extent[d] += 2.0 * rc.min(layers[d] as f64 * [e.x, e.y, e.z][d]);
    }
    out
}

struct NodeResources {
    tnis: Vec<ResourceId>,
    rank_cpu: [ResourceId; 4],
}

/// Simulate the 3-stage pattern over the whole topology.
///
/// `api` selects the message software costs (the `baseline` MPI bars vs the
/// `3stage-utofu` bars of Fig. 7).
#[allow(clippy::needless_range_loop)] // rank index keys several parallel schedules
pub fn simulate(
    machine: &MachineConfig,
    decomp: &Decomposition,
    torus: &Torus3d,
    rc: f64,
    density: f64,
    api: CommApi,
) -> CommResult {
    let costs = ApiCosts::of(api);
    let bytes_per_round = stage_message_bytes(decomp, rc, density);
    let layers = Decomposition::comm_layers(decomp.rank_edges(), rc);
    let nranks = decomp.num_ranks();

    let mut g = JobGraph::new();
    let mut nodes: Vec<NodeResources> = Vec::with_capacity(decomp.num_nodes());
    for _ in 0..decomp.num_nodes() {
        let tnis = g.resources(machine.tofu.tnis_per_node);
        let rank_cpu = [g.resource(), g.resource(), g.resource(), g.resource()];
        nodes.push(NodeResources { tnis, rank_cpu });
    }

    let mut result = CommResult::default();
    // last completed stage-job per rank (chains rounds and stages).
    let mut last: Vec<Option<JobId>> = vec![None; nranks];
    // For cross-rank dependencies we key the *send completion* of each rank
    // per round; within a round all ranks act symmetrically, so depending on
    // the partner's send of the same round is well-ordered because rounds
    // are chained per rank.
    for d in 0..3 {
        for k in 0..layers[d] {
            let bytes = bytes_per_round[d][k];
            // First pass: create send jobs (post + injection).
            let mut send_done: Vec<Vec<JobId>> = vec![Vec::new(); nranks];
            for r in 0..nranks {
                let node = decomp.rank_to_node(r);
                let slot = decomp.rank_slot(r);
                let cpu = nodes[node].rank_cpu[slot];
                let c = decomp.rank_coords(r);
                for sign in [-1i64, 1i64] {
                    let mut cc = [c[0] as i64, c[1] as i64, c[2] as i64];
                    cc[d] += sign;
                    let dst = decomp.rank_at(cc);
                    let dst_node = decomp.rank_to_node(dst);
                    let deps: Vec<JobId> = last[r].into_iter().collect();
                    let post = g.job(
                        &deps,
                        Some(cpu),
                        costs.send_overhead_ns + (costs.pack_ns_per_byte * bytes as f64) as u64,
                        0,
                    );
                    if dst_node == node {
                        // Intra-node: a cross-NUMA copy on the sender CPU.
                        let copy_ns = machine.chip.cross_numa_copy_ns(bytes, 2) as u64;
                        let copy = g.job(&[post], Some(cpu), copy_ns, 0);
                        send_done[r].push(copy);
                        result.intranode_messages += 1;
                    } else {
                        let hops = torus.hops(node, dst_node);
                        let tni = nodes[node].tnis[(2 * k + (sign + 1) as usize / 2) % nodes[node].tnis.len()];
                        let inj = g.job(
                            &[post],
                            Some(tni),
                            machine.tni.engine_overhead_ns + (bytes as f64 / machine.tofu.link_bw) as u64,
                            machine.tofu.base_latency_ns as u64
                                + hops as u64 * machine.tofu.hop_latency_ns as u64,
                        );
                        send_done[r].push(inj);
                        result.internode_messages += 1;
                        result.internode_bytes += bytes as u64;
                    }
                }
            }
            // Second pass: each rank's receive processing depends on both
            // partners' sends of this round.
            for r in 0..nranks {
                let node = decomp.rank_to_node(r);
                let slot = decomp.rank_slot(r);
                let cpu = nodes[node].rank_cpu[slot];
                let c = decomp.rank_coords(r);
                let mut deps: Vec<JobId> = Vec::with_capacity(3);
                for sign in [-1i64, 1i64] {
                    let mut cc = [c[0] as i64, c[1] as i64, c[2] as i64];
                    cc[d] += sign;
                    let partner = decomp.rank_at(cc);
                    // The partner's send towards us is its send with the
                    // opposite sign: index 0 for +1 (their −), 1 for −1.
                    let idx = if sign > 0 { 0 } else { 1 };
                    if let Some(&j) = send_done[partner].get(idx) {
                        deps.push(j);
                    }
                }
                if let Some(l) = last[r] {
                    deps.push(l);
                }
                let recv = g.job(&deps, Some(cpu), 2 * costs.recv_overhead_ns, 0);
                last[r] = Some(recv);
            }
        }
    }
    let sched = g.run();
    result.total_ns = sched.makespan;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::simbox::SimBox;

    fn setup(frac: f64, rc: f64) -> (MachineConfig, Decomposition, Torus3d) {
        let nodes = [4, 6, 4];
        let edge = frac * rc;
        let bx = SimBox::new(
            edge * 2.0 * nodes[0] as f64,
            edge * 2.0 * nodes[1] as f64,
            edge * nodes[2] as f64,
        );
        let machine = MachineConfig::default();
        let torus = Torus3d::new(nodes);
        (machine, Decomposition::new(bx, nodes), torus)
    }

    #[test]
    fn round_counts_match_paper() {
        // Paper: 3, 5, 6 successive exchanges for the three configurations.
        let rc = 8.0;
        // [1,1,1]·rc.
        let (_, d1, _) = setup(1.0, rc);
        assert_eq!(Decomposition::comm_layers(d1.rank_edges(), rc).iter().sum::<usize>(), 3);
        // [0.5,0.5,1]·rc: rank edges (4,4,8) over a 4×6×4 node grid.
        let d2 = Decomposition::new(SimBox::new(32.0, 48.0, 32.0), [4, 6, 4]);
        assert_eq!(Decomposition::comm_layers(d2.rank_edges(), rc).iter().sum::<usize>(), 5);
        // [0.5,0.5,0.5]·rc: all edges 4 Å.
        let (_, d3, _) = setup(0.5, rc);
        assert_eq!(Decomposition::comm_layers(d3.rank_edges(), rc).iter().sum::<usize>(), 6);
    }

    #[test]
    fn smaller_subboxes_cost_more_rounds_and_time() {
        let rc = 8.0;
        let density = 0.0848; // copper atoms/Å³
        let (m, d1, t1) = setup(1.0, rc);
        let (_, d2, t2) = setup(0.5, rc);
        let r1 = simulate(&m, &d1, &t1, rc, density, CommApi::Mpi);
        let r2 = simulate(&m, &d2, &t2, rc, density, CommApi::Mpi);
        assert!(r2.total_ns > r1.total_ns, "{} vs {}", r2.total_ns, r1.total_ns);
    }

    #[test]
    fn utofu_beats_mpi_by_the_papers_pattern_level_margin() {
        // §III-A2: RDMA through uTofu "can reduce 15% to 27% overhead
        // compared to the MPI API". At the pattern level wire and engine
        // time dilute the software saving into that band (we accept a
        // slightly wider one across both sub-box regimes).
        let rc = 8.0;
        for frac in [1.0, 0.5] {
            let (m, d, t) = setup(frac, rc);
            let mpi = simulate(&m, &d, &t, rc, 0.0848, CommApi::Mpi);
            let utofu = simulate(&m, &d, &t, rc, 0.0848, CommApi::Utofu);
            assert!(utofu.total_ns < mpi.total_ns);
            assert_eq!(utofu.internode_messages, mpi.internode_messages);
            let saving = 1.0 - utofu.total_ns as f64 / mpi.total_ns as f64;
            assert!((0.15..=0.60).contains(&saving), "frac {frac}: saving {saving:.3}");
        }
    }

    #[test]
    fn message_budget_is_two_per_round_per_rank() {
        let rc = 8.0;
        let (m, d, t) = setup(0.5, rc);
        let r = simulate(&m, &d, &t, rc, 0.0848, CommApi::Mpi);
        let layers = Decomposition::comm_layers(d.rank_edges(), rc);
        let rounds: u64 = layers.iter().sum::<usize>() as u64;
        let expected = rounds * 2 * d.num_ranks() as u64;
        assert_eq!(r.internode_messages + r.intranode_messages, expected);
    }

    #[test]
    fn stage_bytes_grow_with_accumulated_cross_section() {
        let (_, d, _) = setup(0.5, 8.0);
        let per_round = stage_message_bytes(&d, 8.0, 0.0848);
        // z-stage messages carry a bigger cross-section than x-stage ones.
        assert!(per_round[2][0] > per_round[0][0]);
    }
}
