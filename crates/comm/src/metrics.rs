//! Communication metrics: one pre-registered handle bundle threaded through
//! the exchange, transport and node-scheme layers.
//!
//! A [`CommMetrics`] is registered once against a
//! [`MetricsRegistry`](dpmd_obs::MetricsRegistry) and then cloned freely
//! (clones share the same counters). All recording goes through
//! pre-allocated handles, so the hot path never allocates; the one
//! exception is the first sighting of a new `(src, dst)` edge, which
//! registers that edge's byte counter lazily.
//!
//! Metric catalog (see the README "Observability" section):
//!
//! | name | unit | meaning |
//! |---|---|---|
//! | `comm.messages_sent` | count | canonical exchange messages (1 per message, retries excluded) |
//! | `comm.bytes_sent` | bytes | serialized payload bytes of those messages |
//! | `comm.payload_entries` | count | payload entries (ghost atoms / force triplets) |
//! | `comm.ghosts_applied` | count | ghost atoms present after each forward apply |
//! | `comm.scheme.p2p.messages` | count | messages sent under the rank-p2p scheme |
//! | `comm.scheme.node.messages` | count | messages sent under the node-based scheme |
//! | `comm.fallback_window_steps` | count | steps where a stalled leader degraded node→p2p |
//! | `comm.mempool.peak_bytes` | bytes | RDMA mempool occupancy high-water |
//! | `comm.edge.SSS-DDD.bytes` | bytes | per directed edge payload bytes |
//! | `transport.transmissions` | count | physical sends, including resends |
//! | `transport.retries` | count | timeout-triggered retransmissions |
//! | `transport.backoff_ns` | ns | simulated exponential backoff accumulated |
//! | `transport.pool_exhausted` | count | sends deferred on mempool exhaustion |
//! | `transport.missing_slots` | count | delivery slots found empty at collection (invariant breach) |
//! | `transport.retry_rounds` | count | histogram of per-message retry counts |
//! | `fugaku.tniN.messages` | count | messages routed to RDMA engine N |
//! | `fugaku.rdma.bytes_simulated` | bytes | bytes injected in the timing model |

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dpmd_obs::{Counter, Gauge, Histogram, MetricsRegistry, Unit};
use fugaku::tni::TNIS_PER_NODE;
use minimd::atoms::Atoms;

use crate::functional::ExchangeScheme;
use crate::transport::Message;

/// Pre-registered communication metric handles. Cheap to clone; clones
/// share the underlying counters.
#[derive(Clone, Debug)]
pub struct CommMetrics {
    registry: MetricsRegistry,
    /// Canonical messages put on the wire (one per message, not per retry).
    pub messages_sent: Counter,
    /// Serialized payload bytes of those messages.
    pub bytes_sent: Counter,
    /// Payload entries shipped (ghost atoms / force triplets).
    pub payload_entries: Counter,
    /// Ghost atoms present across all ranks after each forward apply — the
    /// *logical* atom count both schemes must agree on.
    pub ghosts_applied: Counter,
    /// Messages sent under the rank-p2p scheme.
    pub scheme_p2p_messages: Counter,
    /// Messages sent under the node-based scheme.
    pub scheme_node_messages: Counter,
    /// Steps where a stalled leader degraded node-based to p2p.
    pub fallback_steps: Counter,
    /// RDMA mempool occupancy high-water mark.
    pub mempool_peak: Gauge,
    /// Physical transmissions, including resends.
    pub transmissions: Counter,
    /// Timeout-triggered retransmissions.
    pub retries: Counter,
    /// Simulated exponential-backoff wait accumulated by retries.
    pub backoff_ns: Counter,
    /// Sends deferred because the RDMA mempool was exhausted.
    pub pool_exhausted: Counter,
    /// Delivery slots found empty at collection — an invariant breach
    /// surfaced as [`TransportError::MissingDelivery`](crate::TransportError)
    /// instead of a panic.
    pub missing_slots: Counter,
    /// Per-message retry counts (0 = delivered first try).
    pub retry_rounds: Histogram,
    /// Messages routed to each of the node's RDMA engines.
    pub tni_messages: Vec<Counter>,
    /// Bytes injected into the network in the timing model.
    pub rdma_bytes: Counter,
    edges: Arc<Mutex<HashMap<(u32, u32), Counter>>>,
}

impl CommMetrics {
    /// Register every comm/transport/fugaku metric against `reg` and return
    /// the handle bundle. Idempotent per registry: registering twice yields
    /// handles to the same cells.
    pub fn register(reg: &MetricsRegistry) -> Self {
        CommMetrics {
            registry: reg.clone(),
            messages_sent: reg.counter("comm.messages_sent", Unit::Count),
            bytes_sent: reg.counter("comm.bytes_sent", Unit::Bytes),
            payload_entries: reg.counter("comm.payload_entries", Unit::Count),
            ghosts_applied: reg.counter("comm.ghosts_applied", Unit::Count),
            scheme_p2p_messages: reg.counter("comm.scheme.p2p.messages", Unit::Count),
            scheme_node_messages: reg.counter("comm.scheme.node.messages", Unit::Count),
            fallback_steps: reg.counter("comm.fallback_window_steps", Unit::Count),
            mempool_peak: reg.gauge("comm.mempool.peak_bytes", Unit::Bytes),
            transmissions: reg.counter("transport.transmissions", Unit::Count),
            retries: reg.counter("transport.retries", Unit::Count),
            backoff_ns: reg.counter("transport.backoff_ns", Unit::Ns),
            pool_exhausted: reg.counter("transport.pool_exhausted", Unit::Count),
            missing_slots: reg.counter("transport.missing_slots", Unit::Count),
            retry_rounds: reg.histogram("transport.retry_rounds", Unit::Count, &[0, 1, 2, 4, 8, 16]),
            tni_messages: (0..TNIS_PER_NODE)
                .map(|i| reg.counter(&format!("fugaku.tni{i}.messages"), Unit::Count))
                .collect(),
            rdma_bytes: reg.counter("fugaku.rdma.bytes_simulated", Unit::Bytes),
            edges: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Charge a batch of canonical exchange messages: message/byte/entry
    /// totals, the per-scheme split, and per-edge bytes. `entry_bytes` is
    /// the serialized size of one payload entry.
    pub fn count_messages<T>(
        &self,
        scheme: Option<ExchangeScheme>,
        entry_bytes: usize,
        messages: &[Message<T>],
    ) {
        for m in messages {
            let bytes = (m.payload.len() * entry_bytes) as u64;
            self.messages_sent.inc();
            self.bytes_sent.add(bytes);
            self.payload_entries.add(m.payload.len() as u64);
            match scheme {
                Some(ExchangeScheme::RankP2p) => self.scheme_p2p_messages.inc(),
                Some(ExchangeScheme::NodeBased) => self.scheme_node_messages.inc(),
                None => {}
            }
            self.edge_bytes(m.src, m.dst).add(bytes);
        }
    }

    /// The per-edge byte counter for `src → dst`, registered on first use.
    /// Names are zero-padded (`comm.edge.003-014.bytes`) so the snapshot's
    /// lexicographic order equals numeric order.
    pub fn edge_bytes(&self, src: u32, dst: u32) -> Counter {
        let mut edges = self.edges.lock().unwrap();
        edges
            .entry((src, dst))
            .or_insert_with(|| {
                self.registry.counter(&format!("comm.edge.{src:03}-{dst:03}.bytes"), Unit::Bytes)
            })
            .clone()
    }

    /// Charge the ghost atoms present across all ranks after a forward
    /// apply (`comm.ghosts_applied`).
    pub fn record_ghosts(&self, per_rank: &[Atoms]) {
        let ghosts: usize = per_rank.iter().map(|a| a.len() - a.nlocal).sum();
        self.ghosts_applied.add(ghosts as u64);
    }

    /// Charge a per-engine message-count summary (from
    /// [`fugaku::tni::assignment_counts`]) onto the `fugaku.tniN.messages`
    /// counters.
    pub fn record_tni_assignment(&self, counts: &[usize]) {
        for (tni, &n) in counts.iter().enumerate() {
            if let Some(c) = self.tni_messages.get(tni) {
                c.add(n as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_messages_charges_bytes_and_scheme_split() {
        let reg = MetricsRegistry::new();
        let m = CommMetrics::register(&reg);
        let msgs = vec![
            Message { src: 0, dst: 1, payload: vec![1u64, 2, 3] },
            Message { src: 1, dst: 0, payload: vec![4u64] },
        ];
        m.count_messages(Some(ExchangeScheme::RankP2p), 40, &msgs);
        m.count_messages(None, 24, &msgs[..1]);
        if !reg.is_enabled() {
            return; // capture off: handles are no-ops by design
        }
        let s = reg.snapshot();
        assert_eq!(s.counter("comm.messages_sent"), Some(3));
        assert_eq!(s.counter("comm.bytes_sent"), Some((3 + 1) as u64 * 40 + 3 * 24));
        assert_eq!(s.counter("comm.payload_entries"), Some(7));
        assert_eq!(s.counter("comm.scheme.p2p.messages"), Some(2));
        assert_eq!(s.counter("comm.scheme.node.messages"), Some(0));
        assert_eq!(s.counter("comm.edge.000-001.bytes"), Some(3 * 40 + 3 * 24));
        assert_eq!(s.counter("comm.edge.001-000.bytes"), Some(40));
    }

    #[test]
    fn tni_assignment_charges_per_engine() {
        let reg = MetricsRegistry::new();
        let m = CommMetrics::register(&reg);
        m.record_tni_assignment(&[2, 0, 5, 0, 0, 1]);
        m.record_tni_assignment(&[1, 0, 0, 0, 0, 0]);
        if !reg.is_enabled() {
            return;
        }
        let s = reg.snapshot();
        assert_eq!(s.counter("fugaku.tni0.messages"), Some(3));
        assert_eq!(s.counter("fugaku.tni2.messages"), Some(5));
        assert_eq!(s.counter("fugaku.tni5.messages"), Some(1));
    }
}
