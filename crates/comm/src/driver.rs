//! A functional *distributed* MD driver: all ranks in one address space,
//! stepping the same physics the paper's code steps —
//!
//! 1. forward halo exchange (node-based scheme, lb layout optional);
//! 2. per-rank force computation over locals + ghosts;
//! 3. reverse reduction of ghost forces ("Newton's law on");
//! 4. velocity-Verlet update of locals;
//! 5. every `rebuild_every` steps: ghost teardown, flying-atom migration,
//!    fresh exchange (the paper's offset-recalculation points).
//!
//! Its purpose is correctness, not speed: the integration tests pin the
//! distributed trajectory against the single-box reference step for step,
//! which is the invariant all of §III-A's optimizations must preserve.

use minimd::atoms::Atoms;
use minimd::domain::Decomposition;
use minimd::integrate::VelocityVerlet;
use minimd::migrate::exchange_atoms;
use minimd::neighbor::{ListKind, NeighborList};
use minimd::potential::Potential;
use minimd::simbox::SimBox;

use crate::fault::{FaultPlan, FaultSession, FaultStats};
use crate::functional::{
    exchange_ghosts, exchange_ghosts_observed, exchange_ghosts_recoverable, partition,
    reverse_forces, reverse_forces_observed, reverse_forces_recoverable, ExchangeScheme,
};
use crate::metrics::CommMetrics;

/// A distributed simulation over per-rank atom stores.
pub struct DistributedSim<'p> {
    /// The decomposition (owns the global box).
    pub decomp: Decomposition,
    /// Per-rank atom stores (locals + ghosts).
    pub ranks: Vec<Atoms>,
    /// The force field, shared by every rank.
    pub potential: &'p dyn Potential,
    /// Integrator.
    pub integrator: VelocityVerlet,
    /// Exchange scheme (both must produce identical trajectories).
    pub scheme: ExchangeScheme,
    /// Rebuild/migration cadence in steps (paper: 50).
    pub rebuild_every: u64,
    /// Ghost halo radius: cutoff + skin, so locals that drift past their
    /// sub-box boundary between migrations keep every pair within r_c.
    pub halo: f64,
    nls: Vec<NeighborList>,
    step: u64,
    faults: Option<FaultSession>,
    obs: Option<CommMetrics>,
}

impl<'p> DistributedSim<'p> {
    /// Partition a global configuration and set up per-rank state.
    pub fn new(
        decomp: Decomposition,
        global: &Atoms,
        potential: &'p dyn Potential,
        integrator: VelocityVerlet,
        scheme: ExchangeScheme,
        rebuild_every: u64,
    ) -> Self {
        let ranks = partition(&decomp, global);
        let skin = 1.0;
        let halo = potential.cutoff() + skin;
        let nls = (0..decomp.num_ranks())
            .map(|_| NeighborList::new(potential.cutoff(), skin, ListKind::Full))
            .collect();
        let mut sim = DistributedSim {
            decomp,
            ranks,
            potential,
            integrator,
            scheme,
            rebuild_every,
            halo,
            nls,
            step: 0,
            faults: None,
            obs: None,
        };
        sim.rebuild(0);
        sim.compute_forces(0);
        sim
    }

    /// Arm fault injection: from now on every forward exchange and reverse
    /// reduction runs `plan`'s faults through the recovery protocol
    /// (sequence numbers, timeout/retry/backoff, idempotent apply), and a
    /// stalled leader degrades the node-based scheme to rank p2p for the
    /// affected steps. With recovery, the trajectory is bit-identical to
    /// the fault-free run — the property `tests/fault_injection.rs` pins.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        let mut session = FaultSession::new(plan);
        session.obs = self.obs.clone();
        self.faults = Some(session);
    }

    /// Attach observability: from now on every exchange and reverse
    /// reduction charges messages/bytes/retries into `registry` (see
    /// [`CommMetrics`] for the catalog). The construction-time initial
    /// exchange is not counted — counters start at zero here, which is what
    /// lets tests equate them with per-step message sums.
    pub fn attach_obs(&mut self, registry: &dpmd_obs::MetricsRegistry) {
        let obs = CommMetrics::register(registry);
        if let Some(s) = self.faults.as_mut() {
            s.obs = Some(obs.clone());
        }
        self.obs = Some(obs);
    }

    /// Counters of injected faults and recovery work (None until
    /// [`inject_faults`](Self::inject_faults)).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|s| &s.stats)
    }

    /// The global box.
    pub fn boxx(&self) -> SimBox {
        self.decomp.bx
    }

    /// Completed steps.
    pub fn step_index(&self) -> u64 {
        self.step
    }

    /// The scheme actually used at `step`: node-based degrades to rank p2p
    /// while a leader rank is stalled (graceful degradation — p2p needs no
    /// leader aggregation, and both schemes produce bitwise-identical ghost
    /// arrays, so the trajectory is unperturbed).
    fn effective_scheme(&mut self, step: u64) -> ExchangeScheme {
        if self.scheme == ExchangeScheme::NodeBased {
            if let Some(s) = self.faults.as_mut() {
                if s.plan.leader_stalled_at(step) {
                    s.stats.fallback_steps += 1;
                    if let Some(o) = &s.obs {
                        o.fallback_steps.inc();
                    }
                    return ExchangeScheme::RankP2p;
                }
            }
        }
        self.scheme
    }

    /// Forward halo exchange for `step`, through the fault layer if armed.
    fn exchange(&mut self, step: u64) {
        let scheme = self.effective_scheme(step);
        match self.faults.as_mut() {
            Some(session) => exchange_ghosts_recoverable(
                &self.decomp,
                &mut self.ranks,
                self.halo,
                scheme,
                false,
                session,
                step,
            ),
            None => match &self.obs {
                Some(o) => exchange_ghosts_observed(
                    &self.decomp,
                    &mut self.ranks,
                    self.halo,
                    scheme,
                    false,
                    o,
                ),
                None => exchange_ghosts(&self.decomp, &mut self.ranks, self.halo, scheme, false),
            },
        }
    }

    fn rebuild(&mut self, step: u64) {
        for a in &mut self.ranks {
            a.clear_ghosts();
        }
        exchange_atoms(&self.decomp, &mut self.ranks);
        self.exchange(step);
        let bx = self.decomp.bx;
        for (a, nl) in self.ranks.iter().zip(&mut self.nls) {
            nl.build(a, &bx);
        }
    }

    /// Refresh ghosts for the new positions (the every-step forward
    /// communication). Ghost membership can change even between cadence
    /// rebuilds (an atom crossing the r_c shell), which silently shifts
    /// ghost indices — so this correctness driver rebuilds the per-rank
    /// neighbour lists every step. (The production code instead keeps the
    /// ghost *set* frozen between rebuilds and relies on the skin; the
    /// timing of that path is what the performance model charges.)
    fn refresh_ghosts(&mut self, step: u64) {
        for a in &mut self.ranks {
            a.clear_ghosts();
        }
        self.exchange(step);
        let bx = self.decomp.bx;
        for (a, nl) in self.ranks.iter().zip(&mut self.nls) {
            nl.build(a, &bx);
        }
    }

    fn compute_forces(&mut self, step: u64) -> f64 {
        let bx = self.decomp.bx;
        let mut energy = 0.0;
        for (a, nl) in self.ranks.iter_mut().zip(&self.nls) {
            a.zero_forces();
            energy += self.potential.compute(a, nl, &bx).energy;
        }
        match self.faults.as_mut() {
            Some(session) => {
                reverse_forces_recoverable(&self.decomp, &mut self.ranks, session, step)
            }
            None => match &self.obs {
                Some(o) => reverse_forces_observed(&self.decomp, &mut self.ranks, o),
                None => reverse_forces(&self.decomp, &mut self.ranks),
            },
        }
        energy
    }

    /// Advance one step; returns (potential energy, total kinetic energy).
    pub fn stride(&mut self) -> (f64, f64) {
        for a in &mut self.ranks {
            // Unwrapped drift: the migrate/exchange step re-wraps.
            self.integrator.first_half_unwrapped(a);
        }
        // The step being computed keys every fault decision, so a given
        // scenario replays identically run to run.
        let step = self.step + 1;
        if self.rebuild_every > 0 && step.is_multiple_of(self.rebuild_every) {
            self.rebuild(step);
        } else {
            self.refresh_ghosts(step);
        }
        let pe = self.compute_forces(step);
        let mut ke = 0.0;
        for a in &mut self.ranks {
            self.integrator.second_half(a);
            ke += minimd::integrate::kinetic_energy(a);
        }
        self.step += 1;
        (pe, ke)
    }

    /// Gather all locals back into one global configuration (sorted by id).
    pub fn gather(&self) -> Atoms {
        let mut rows: Vec<(u64, u32, minimd::vec3::Vec3, minimd::vec3::Vec3)> = Vec::new();
        for a in &self.ranks {
            for i in 0..a.nlocal {
                rows.push((a.id[i], a.typ[i], a.pos[i], a.vel[i]));
            }
        }
        rows.sort_by_key(|r| r.0);
        let mut out = Atoms::new(self.ranks[0].species.clone());
        for (id, typ, pos, vel) in rows {
            out.push_local(id, typ, pos, vel);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::integrate::init_velocities;
    use minimd::lattice::fcc_lattice;
    use minimd::potential::lj::LennardJones;
    use minimd::sim::Simulation;
    use minimd::units::FEMTOSECOND;

    /// The load-bearing test: the distributed trajectory equals the
    /// single-box trajectory step for step (same positions to float noise).
    #[test]
    fn distributed_trajectory_matches_single_box() {
        let (bx, mut global) = fcc_lattice(8, 8, 8, 4.4);
        init_velocities(&mut global, 60.0, 5);
        let lj = LennardJones::new(0.0104, 3.4, 5.0);
        let vv = VelocityVerlet::new(2.0 * FEMTOSECOND);

        // Reference: single box.
        let mut reference = Simulation::new(
            bx,
            global.clone(),
            Box::new(lj),
            vv.clone(),
            1.0,
            10,
        );
        // Distributed: 2×2×2 nodes (32 ranks).
        let decomp = Decomposition::new(bx, [2, 2, 2]);
        let mut dist =
            DistributedSim::new(decomp, &global, &lj, vv, ExchangeScheme::NodeBased, 10);

        for step in 0..25 {
            reference.step();
            dist.stride();
            if step % 5 == 4 {
                let gathered = dist.gather();
                // Compare positions by id.
                let mut ref_by_id = std::collections::HashMap::new();
                for i in 0..reference.atoms.nlocal {
                    ref_by_id.insert(reference.atoms.id[i], reference.atoms.pos[i]);
                }
                for i in 0..gathered.nlocal {
                    let rp = ref_by_id[&gathered.id[i]];
                    let d = bx.min_image(gathered.pos[i], rp).norm();
                    assert!(d < 1e-8, "step {step} atom {}: drift {d}", gathered.id[i]);
                }
            }
        }
    }

    #[test]
    fn both_schemes_produce_the_same_distributed_trajectory() {
        let (bx, mut global) = fcc_lattice(8, 8, 8, 4.4);
        init_velocities(&mut global, 40.0, 9);
        let lj = LennardJones::new(0.0104, 3.4, 5.0);
        let vv = VelocityVerlet::new(2.0 * FEMTOSECOND);
        let d1 = Decomposition::new(bx, [2, 2, 2]);
        let d2 = Decomposition::new(bx, [2, 2, 2]);
        let mut s1 = DistributedSim::new(d1, &global, &lj, vv.clone(), ExchangeScheme::RankP2p, 10);
        let mut s2 = DistributedSim::new(d2, &global, &lj, vv, ExchangeScheme::NodeBased, 10);
        for _ in 0..15 {
            s1.stride();
            s2.stride();
        }
        let (g1, g2) = (s1.gather(), s2.gather());
        assert_eq!(g1.id, g2.id);
        for i in 0..g1.nlocal {
            assert!((g1.pos[i] - g2.pos[i]).norm() < 1e-10, "atom {}", g1.id[i]);
        }
    }

    #[test]
    fn migration_keeps_ownership_consistent_across_many_steps() {
        use minimd::migrate::ownership_violations;
        let (bx, mut global) = fcc_lattice(6, 6, 6, 4.4);
        init_velocities(&mut global, 150.0, 3);
        let lj = LennardJones::new(0.0104, 3.4, 5.0);
        let vv = VelocityVerlet::new(2.0 * FEMTOSECOND);
        let decomp = Decomposition::new(bx, [2, 2, 2]);
        let mut sim = DistributedSim::new(decomp, &global, &lj, vv, ExchangeScheme::NodeBased, 5);
        let n0: usize = sim.ranks.iter().map(|a| a.nlocal).sum();
        for _ in 0..20 {
            sim.stride();
        }
        let n1: usize = sim.ranks.iter().map(|a| a.nlocal).sum();
        assert_eq!(n0, n1, "atom conservation");
        // Right after a rebuild step, ownership is exact.
        for a in &mut sim.ranks {
            a.clear_ghosts();
        }
        minimd::migrate::exchange_atoms(&sim.decomp, &mut sim.ranks);
        assert!(ownership_violations(&sim.decomp, &sim.ranks).is_empty());
    }
}
