//! The RDMA memory-pool experiment (paper §III-D1, Fig. 8).
//!
//! Two registration strategies over the NIC cache model:
//!
//! * **per-neighbour** — every neighbour gets a dedicated send + receive
//!   buffer registration; the NIC's translation cache holds
//!   `2 × neighbours` entries plus per-destination connection state and
//!   starts thrashing once that working set exceeds its capacity;
//! * **memory pool** — one large registered block serves every neighbour
//!   through offsets, so the translation working set is a single entry and
//!   time stays linear in the message count.

use fugaku::machine::MachineConfig;
use fugaku::niccache::NicCache;
use fugaku::utofu::{ApiCosts, CommApi};

/// Allocation failure of the pooled region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// The request does not fit in what is currently free. Retriable: free
    /// an outstanding block and ask again.
    Exhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes currently free.
        available: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Exhausted { requested, available } => write!(
                f,
                "mempool exhausted: requested {requested} B, {available} B available"
            ),
        }
    }
}

/// A claim on pool bytes. Return it via [`MemPool::free`]; the move-only
/// handle makes double-free unrepresentable.
#[derive(Debug)]
#[must_use = "a leaked block permanently shrinks the pool"]
pub struct PoolBlock {
    bytes: usize,
}

impl PoolBlock {
    /// Size of this claim in bytes.
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// `true` for a zero-byte claim.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

/// The functional counterpart of [`Registration::MemoryPool`]: one large
/// registered region handed out by offset. This is an *accounting*
/// allocator — the simulation needs capacity pressure and recovery
/// semantics, not addresses. Exhaustion is an error, never a panic, and is
/// always retriable once a block is freed.
#[derive(Clone, Debug)]
pub struct MemPool {
    capacity: usize,
    used: usize,
    peak: usize,
    failed: u64,
    clamped: u64,
}

impl MemPool {
    /// A pool of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        MemPool { capacity, used: 0, peak: 0, failed: 0, clamped: 0 }
    }

    /// A pool that never exhausts (the no-fault configuration).
    pub fn unbounded() -> Self {
        MemPool::new(usize::MAX)
    }

    /// Claim `bytes` from the pool.
    pub fn alloc(&mut self, bytes: usize) -> Result<PoolBlock, PoolError> {
        let available = self.capacity - self.used;
        if bytes > available {
            self.failed += 1;
            return Err(PoolError::Exhausted { requested: bytes, available });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(PoolBlock { bytes })
    }

    /// Return a claim to the pool.
    ///
    /// A block can only over-free if it is returned to a pool other than
    /// its origin (reachable through [`Clone`] snapshots — `PoolBlock`
    /// itself is move-only). The release path must not wrap: a bare
    /// `used -= bytes` underflows in release builds, which then makes
    /// `available()` wrap past `capacity` and silently un-bounds the
    /// pool. Clamp at zero instead and count it in
    /// [`MemPool::clamped_frees`] so the misuse stays observable.
    pub fn free(&mut self, block: PoolBlock) {
        if block.bytes > self.used {
            self.clamped += 1;
            self.used = 0;
        } else {
            self.used -= block.bytes;
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently claimed.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes currently free.
    pub fn available(&self) -> usize {
        self.capacity - self.used
    }

    /// High-water mark of `used`.
    pub fn peak_used(&self) -> usize {
        self.peak
    }

    /// Allocations refused so far.
    pub fn failed_allocs(&self) -> u64 {
        self.failed
    }

    /// Frees clamped because the block exceeded the pool's outstanding
    /// bytes (a block returned to a pool other than its origin). Always
    /// zero under correct use.
    pub fn clamped_frees(&self) -> u64 {
        self.clamped
    }
}

/// Buffer registration strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Registration {
    /// One send + one receive buffer per neighbour.
    PerNeighbor,
    /// A single pooled region addressed by offsets.
    MemoryPool,
}

/// Simulate `iterations` rounds of sending one `payload`-byte message to
/// each of `neighbors` peers, returning total time in ns.
///
/// This is exactly Fig. 8's workload: 10 k iterations, 8-byte payloads,
/// neighbour counts swept up to 124, messages issued round-robin over the
/// six TNIs.
pub fn simulate(
    machine: &MachineConfig,
    neighbors: usize,
    payload: usize,
    iterations: usize,
    reg: Registration,
) -> u64 {
    let costs = ApiCosts::of(CommApi::Utofu);
    let mut cache = NicCache::new(machine.nic_cache_entries, machine.nic_cache_miss_ns);
    // Per-message fixed work (post + engine + wire for a tiny payload). The
    // sweep serializes per TNI; with round-robin over 6 TNIs the steady-
    // state throughput is one message per (engine occupancy / 6), but the
    // *per-iteration* critical path is dominated by software posting —
    // model it as software + engine/6 + cache penalties.
    let sw = costs.send_overhead_ns + costs.recv_overhead_ns;
    let engine = machine.tni.engine_overhead_ns + (payload as f64 / machine.tofu.link_bw) as u64;
    let per_msg_base = sw + engine / machine.tofu.tnis_per_node as u64;

    let mut total = 0u64;
    for _ in 0..iterations {
        for n in 0..neighbors {
            // Entry ids: the registered memory regions this message
            // touches. (Connection state is small enough to stay resident;
            // the address-translation entries are what overflow — their
            // working set is 2 per neighbour without the pool, putting the
            // knee at capacity/2 = 44 neighbours, where Fig. 8 departs.)
            let extra = match reg {
                Registration::PerNeighbor => {
                    cache.access(2 * n as u64) + cache.access(2 * n as u64 + 1)
                }
                Registration::MemoryPool => cache.access(u64::MAX),
            };
            total += per_msg_base + extra;
        }
    }
    total
}

/// The full Fig. 8 sweep: for each neighbour count, total time for both
/// strategies. Returns `(neighbors, pool_ns, per_neighbor_ns)` rows.
pub fn figure8_sweep(machine: &MachineConfig, iterations: usize) -> Vec<(usize, u64, u64)> {
    let counts = [2usize, 8, 16, 26, 32, 44, 56, 74, 92, 108, 124];
    counts
        .iter()
        .map(|&n| {
            let pool = simulate(machine, n, 8, iterations, Registration::MemoryPool);
            let per = simulate(machine, n, 8, iterations, Registration::PerNeighbor);
            (n, pool, per)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_time_is_linear_in_neighbors() {
        let m = MachineConfig::default();
        let t26 = simulate(&m, 26, 8, 100, Registration::MemoryPool);
        let t52 = simulate(&m, 52, 8, 100, Registration::MemoryPool);
        let t104 = simulate(&m, 104, 8, 100, Registration::MemoryPool);
        let r1 = t52 as f64 / t26 as f64;
        let r2 = t104 as f64 / t52 as f64;
        assert!((r1 - 2.0).abs() < 0.05, "ratio {r1}");
        assert!((r2 - 2.0).abs() < 0.05, "ratio {r2}");
    }

    #[test]
    fn per_neighbor_registration_degrades_past_the_knee() {
        // The paper's Fig. 8: the non-pool curve departs around 44
        // neighbours (2 MRs + 1 connection each vs the cache capacity).
        let m = MachineConfig::default();
        let per_msg = |n: usize, reg| simulate(&m, n, 8, 200, reg) as f64 / (200 * n) as f64;
        let below = per_msg(26, Registration::PerNeighbor);
        let above = per_msg(74, Registration::PerNeighbor);
        let pool_above = per_msg(74, Registration::MemoryPool);
        assert!(above > 1.3 * below, "no knee: {below} -> {above}");
        assert!(above > 1.3 * pool_above, "pool must stay fast");
        // Below the knee the two strategies are equivalent.
        let pool_below = per_msg(26, Registration::MemoryPool);
        assert!((below / pool_below - 1.0).abs() < 0.05);
    }

    /// Regression: allocation beyond pool capacity is an error, not a
    /// panic, and succeeds again after a free (the retriable contract the
    /// transport's recovery loop depends on).
    #[test]
    fn exhaustion_is_an_error_and_retriable_after_free() {
        let mut pool = MemPool::new(100);
        let a = pool.alloc(60).unwrap();
        let b = pool.alloc(40).unwrap();
        assert_eq!(pool.used(), 100);
        assert_eq!(pool.available(), 0);

        // Over capacity: Err, never a panic, pool state untouched.
        let err = pool.alloc(1).unwrap_err();
        assert_eq!(err, PoolError::Exhausted { requested: 1, available: 0 });
        assert_eq!(pool.used(), 100);
        assert_eq!(pool.failed_allocs(), 1);

        // Retriable: the same request succeeds once space frees up.
        pool.free(b);
        assert_eq!(pool.available(), 40);
        let c = pool.alloc(40).unwrap();
        assert_eq!(pool.peak_used(), 100);
        pool.free(a);
        pool.free(c);
        assert_eq!(pool.used(), 0);
    }

    /// Regression: drive the pool to complete exhaustion with many odd-
    /// sized blocks, release them all, and the *exact* capacity must come
    /// back — no drift, no wraparound in the accounting.
    #[test]
    fn release_after_exhaustion_restores_exact_capacity() {
        let mut pool = MemPool::new(257); // deliberately not a multiple of the chunk size
        let mut blocks = Vec::new();
        loop {
            match pool.alloc(31) {
                Ok(b) => blocks.push(b),
                Err(PoolError::Exhausted { requested, available }) => {
                    assert_eq!(requested, 31);
                    assert_eq!(available, 257 - blocks.len() * 31);
                    assert!(available < 31);
                    break;
                }
            }
        }
        assert_eq!(pool.used(), blocks.len() * 31);
        assert_eq!(pool.peak_used(), blocks.len() * 31);
        for b in blocks {
            pool.free(b);
        }
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.available(), pool.capacity());
        assert_eq!(pool.clamped_frees(), 0);
        let all = pool.alloc(257).expect("full capacity must be claimable again");
        assert_eq!(pool.available(), 0);
        pool.free(all);
        assert_eq!(pool.available(), 257);
    }

    /// Regression: freeing a block into a pool that never issued it (only
    /// reachable through `Clone` snapshots) must clamp the accounting at
    /// zero instead of wrapping `used` — a wrap would send `available()`
    /// past `capacity` and silently un-bound the pool.
    #[test]
    fn foreign_free_clamps_instead_of_wrapping() {
        let mut origin = MemPool::new(64);
        let block = origin.alloc(48).unwrap();
        let mut fresh = MemPool::new(64); // used = 0: freeing 48 would underflow
        fresh.free(block);
        assert_eq!(fresh.used(), 0);
        assert_eq!(fresh.available(), 64, "available must never exceed capacity");
        assert_eq!(fresh.clamped_frees(), 1);
        // The clamped pool still allocates normally afterwards.
        let b = fresh.alloc(64).unwrap();
        fresh.free(b);
        assert_eq!(fresh.used(), 0);
    }

    #[test]
    fn oversized_request_reports_what_was_available() {
        let mut pool = MemPool::new(64);
        let held = pool.alloc(24).unwrap();
        match pool.alloc(1000) {
            Err(PoolError::Exhausted { requested: 1000, available: 40 }) => {}
            other => panic!("expected exhaustion with availability, got {other:?}"),
        }
        pool.free(held);
    }

    #[test]
    fn unbounded_pool_never_exhausts() {
        let mut pool = MemPool::unbounded();
        let blocks: Vec<_> = (0..64).map(|_| pool.alloc(1 << 30).unwrap()).collect();
        assert_eq!(pool.failed_allocs(), 0);
        for b in blocks {
            pool.free(b);
        }
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn zero_byte_claims_are_free() {
        let mut pool = MemPool::new(0);
        let b = pool.alloc(0).unwrap();
        assert!(b.is_empty());
        assert_eq!(pool.alloc(1).unwrap_err(), PoolError::Exhausted { requested: 1, available: 0 });
        pool.free(b);
    }

    #[test]
    fn sweep_has_monotone_pool_column() {
        let m = MachineConfig::default();
        let rows = figure8_sweep(&m, 50);
        for w in rows.windows(2) {
            assert!(w[1].1 > w[0].1, "pool time must grow with neighbours");
        }
        // At 124 neighbours, per-neighbour registration is much slower.
        let last = rows.last().unwrap();
        assert!(last.2 > last.1 * 2, "{} vs {}", last.2, last.1);
    }
}
