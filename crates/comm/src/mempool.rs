//! The RDMA memory-pool experiment (paper §III-D1, Fig. 8).
//!
//! Two registration strategies over the NIC cache model:
//!
//! * **per-neighbour** — every neighbour gets a dedicated send + receive
//!   buffer registration; the NIC's translation cache holds
//!   `2 × neighbours` entries plus per-destination connection state and
//!   starts thrashing once that working set exceeds its capacity;
//! * **memory pool** — one large registered block serves every neighbour
//!   through offsets, so the translation working set is a single entry and
//!   time stays linear in the message count.

use fugaku::machine::MachineConfig;
use fugaku::niccache::NicCache;
use fugaku::utofu::{ApiCosts, CommApi};

/// Buffer registration strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Registration {
    /// One send + one receive buffer per neighbour.
    PerNeighbor,
    /// A single pooled region addressed by offsets.
    MemoryPool,
}

/// Simulate `iterations` rounds of sending one `payload`-byte message to
/// each of `neighbors` peers, returning total time in ns.
///
/// This is exactly Fig. 8's workload: 10 k iterations, 8-byte payloads,
/// neighbour counts swept up to 124, messages issued round-robin over the
/// six TNIs.
pub fn simulate(
    machine: &MachineConfig,
    neighbors: usize,
    payload: usize,
    iterations: usize,
    reg: Registration,
) -> u64 {
    let costs = ApiCosts::of(CommApi::Utofu);
    let mut cache = NicCache::new(machine.nic_cache_entries, machine.nic_cache_miss_ns);
    // Per-message fixed work (post + engine + wire for a tiny payload). The
    // sweep serializes per TNI; with round-robin over 6 TNIs the steady-
    // state throughput is one message per (engine occupancy / 6), but the
    // *per-iteration* critical path is dominated by software posting —
    // model it as software + engine/6 + cache penalties.
    let sw = costs.send_overhead_ns + costs.recv_overhead_ns;
    let engine = machine.tni.engine_overhead_ns + (payload as f64 / machine.tofu.link_bw) as u64;
    let per_msg_base = sw + engine / machine.tofu.tnis_per_node as u64;

    let mut total = 0u64;
    for _ in 0..iterations {
        for n in 0..neighbors {
            // Entry ids: the registered memory regions this message
            // touches. (Connection state is small enough to stay resident;
            // the address-translation entries are what overflow — their
            // working set is 2 per neighbour without the pool, putting the
            // knee at capacity/2 = 44 neighbours, where Fig. 8 departs.)
            let extra = match reg {
                Registration::PerNeighbor => {
                    cache.access(2 * n as u64) + cache.access(2 * n as u64 + 1)
                }
                Registration::MemoryPool => cache.access(u64::MAX),
            };
            total += per_msg_base + extra;
        }
    }
    total
}

/// The full Fig. 8 sweep: for each neighbour count, total time for both
/// strategies. Returns `(neighbors, pool_ns, per_neighbor_ns)` rows.
pub fn figure8_sweep(machine: &MachineConfig, iterations: usize) -> Vec<(usize, u64, u64)> {
    let counts = [2usize, 8, 16, 26, 32, 44, 56, 74, 92, 108, 124];
    counts
        .iter()
        .map(|&n| {
            let pool = simulate(machine, n, 8, iterations, Registration::MemoryPool);
            let per = simulate(machine, n, 8, iterations, Registration::PerNeighbor);
            (n, pool, per)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_time_is_linear_in_neighbors() {
        let m = MachineConfig::default();
        let t26 = simulate(&m, 26, 8, 100, Registration::MemoryPool);
        let t52 = simulate(&m, 52, 8, 100, Registration::MemoryPool);
        let t104 = simulate(&m, 104, 8, 100, Registration::MemoryPool);
        let r1 = t52 as f64 / t26 as f64;
        let r2 = t104 as f64 / t52 as f64;
        assert!((r1 - 2.0).abs() < 0.05, "ratio {r1}");
        assert!((r2 - 2.0).abs() < 0.05, "ratio {r2}");
    }

    #[test]
    fn per_neighbor_registration_degrades_past_the_knee() {
        // The paper's Fig. 8: the non-pool curve departs around 44
        // neighbours (2 MRs + 1 connection each vs the cache capacity).
        let m = MachineConfig::default();
        let per_msg = |n: usize, reg| simulate(&m, n, 8, 200, reg) as f64 / (200 * n) as f64;
        let below = per_msg(26, Registration::PerNeighbor);
        let above = per_msg(74, Registration::PerNeighbor);
        let pool_above = per_msg(74, Registration::MemoryPool);
        assert!(above > 1.3 * below, "no knee: {below} -> {above}");
        assert!(above > 1.3 * pool_above, "pool must stay fast");
        // Below the knee the two strategies are equivalent.
        let pool_below = per_msg(26, Registration::MemoryPool);
        assert!((below / pool_below - 1.0).abs() < 0.05);
    }

    #[test]
    fn sweep_has_monotone_pool_column() {
        let m = MachineConfig::default();
        let rows = figure8_sweep(&m, 50);
        for w in rows.windows(2) {
            assert!(w[1].1 > w[0].1, "pool time must grow with neighbours");
        }
        // At 124 neighbours, per-neighbour registration is much slower.
        let last = rows.last().unwrap();
        assert!(last.2 > last.1 * 2, "{} vs {}", last.2, last.1);
    }
}
