//! The node-based parallelization scheme (paper §III-A).
//!
//! Phases simulated per node, matching Fig. 4:
//!
//! 1. **count exchange + sync** — workers publish their atom counts and the
//!    leader computes send-buffer offsets (one intra-node synchronization);
//! 2. **gather** — every worker copies its local atoms into the
//!    pre-registered RDMA send buffer in shared memory (cross-NUMA copies
//!    over the ring bus — no extra packing, the uTofu buffer *is* the
//!    gather target);
//! 3. **send** — leader threads put one message to each neighbouring
//!    node's leader; with `ThreadPerTni` driving, six messages stream in
//!    parallel per leader;
//! 4. **receive + scatter** — receive-side threads watch their TNI and copy
//!    arrived atoms to the workers (to *all four* workers under intra-node
//!    load balance, to the owning worker only in the `ref` layout);
//! 5. **sync** — workers proceed once all ghosts are placed.
//!
//! The reverse (force) path reuses the same schedule with the smaller
//! per-atom payload and a reduction at the receiver.

use fugaku::event::{JobGraph, JobId};
use fugaku::machine::MachineConfig;
use fugaku::tni::{round_robin_assignment_avoiding, TniDriving};
use fugaku::tofu::Torus3d;
use fugaku::utofu::{ApiCosts, CommApi};
use minimd::domain::{Decomposition, RANKS_PER_NODE};

use crate::metrics::CommMetrics;
use crate::plan::{HaloPlan, ATOM_FORWARD_BYTES, ATOM_REVERSE_BYTES};
use crate::three_stage::CommResult;

/// Configuration of the node-based scheme (the Fig. 7 variants).
#[derive(Clone, Copy, Debug)]
pub struct NodeSchemeConfig {
    /// Number of leader ranks (1, 2 or 4).
    pub leaders: usize,
    /// TNI driving (multithreaded = one thread per TNI).
    pub driving: TniDriving,
    /// Broadcast ghosts to all workers (the load-balance layout, `lb-*`)
    /// instead of delivering each ghost to its owning worker (`ref-*`).
    pub lb_broadcast: bool,
}

impl NodeSchemeConfig {
    /// The paper's selected configuration: four leaders, one thread per
    /// TNI, load-balance broadcast.
    pub fn paper_best() -> Self {
        NodeSchemeConfig { leaders: 4, driving: TniDriving::ThreadPerTni, lb_broadcast: true }
    }
}

/// Result of a node-based simulation (extends [`CommResult`] with phase
/// breakdowns).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeSchemeResult {
    /// Overall timing/counters.
    pub comm: CommResult,
    /// Cross-NUMA bytes moved in gather+scatter.
    pub noc_bytes: u64,
}

/// Which half of a step's communication is being simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Positions out to ghost holders.
    Forward,
    /// Ghost forces back to owners ("Newton's law on"), with a reduction at
    /// the receiver.
    Reverse,
}

/// Simulate one phase (forward or reverse) of the node scheme.
pub fn simulate_phase(
    machine: &MachineConfig,
    decomp: &Decomposition,
    torus: &Torus3d,
    plan: &HaloPlan,
    atoms_per_rank: &[usize],
    cfg: NodeSchemeConfig,
    phase: Phase,
) -> NodeSchemeResult {
    simulate_inner(machine, decomp, torus, plan, atoms_per_rank, cfg, phase)
}

/// Forward + reverse of one time-step's halo communication.
pub fn simulate_round_trip(
    machine: &MachineConfig,
    decomp: &Decomposition,
    torus: &Torus3d,
    plan: &HaloPlan,
    atoms_per_rank: &[usize],
    cfg: NodeSchemeConfig,
) -> NodeSchemeResult {
    let f = simulate_inner(machine, decomp, torus, plan, atoms_per_rank, cfg, Phase::Forward);
    let r = simulate_inner(machine, decomp, torus, plan, atoms_per_rank, cfg, Phase::Reverse);
    NodeSchemeResult {
        comm: CommResult {
            total_ns: f.comm.total_ns + r.comm.total_ns,
            internode_messages: f.comm.internode_messages + r.comm.internode_messages,
            intranode_messages: f.comm.intranode_messages + r.comm.intranode_messages,
            internode_bytes: f.comm.internode_bytes + r.comm.internode_bytes,
        },
        noc_bytes: f.noc_bytes + r.noc_bytes,
    }
}

/// Simulate the forward (position) halo exchange under the node scheme.
pub fn simulate(
    machine: &MachineConfig,
    decomp: &Decomposition,
    torus: &Torus3d,
    plan: &HaloPlan,
    atoms_per_rank: &[usize],
    cfg: NodeSchemeConfig,
) -> NodeSchemeResult {
    simulate_inner(machine, decomp, torus, plan, atoms_per_rank, cfg, Phase::Forward)
}

/// [`simulate`] with some TNI engines wedged for `stall_ns` on every node:
/// the stalled engines' resources are held busy from t = 0 and the send
/// round-robin routes around them, so the node keeps communicating on the
/// remaining engines at reduced injection bandwidth — the timing-model half
/// of the fault layer's `stall-tni` clause.
#[allow(clippy::too_many_arguments)] // mirrors simulate() plus the stall clause
pub fn simulate_with_stalled_tnis(
    machine: &MachineConfig,
    decomp: &Decomposition,
    torus: &Torus3d,
    plan: &HaloPlan,
    atoms_per_rank: &[usize],
    cfg: NodeSchemeConfig,
    stalled: &[usize],
    stall_ns: u64,
) -> NodeSchemeResult {
    simulate_faulted(
        machine,
        decomp,
        torus,
        plan,
        atoms_per_rank,
        cfg,
        Phase::Forward,
        stalled,
        stall_ns,
        None,
    )
}

/// Simulate one phase with metric capture: per-TNI message counts (from
/// the round-robin assignment) and simulated RDMA bytes are charged to
/// `obs` (`fugaku.tniN.messages`, `fugaku.rdma.bytes_simulated`).
#[allow(clippy::too_many_arguments)] // mirrors simulate() plus the metric sink
pub fn simulate_observed(
    machine: &MachineConfig,
    decomp: &Decomposition,
    torus: &Torus3d,
    plan: &HaloPlan,
    atoms_per_rank: &[usize],
    cfg: NodeSchemeConfig,
    phase: Phase,
    obs: &CommMetrics,
) -> NodeSchemeResult {
    simulate_faulted(machine, decomp, torus, plan, atoms_per_rank, cfg, phase, &[], 0, Some(obs))
}

fn simulate_inner(
    machine: &MachineConfig,
    decomp: &Decomposition,
    torus: &Torus3d,
    plan: &HaloPlan,
    atoms_per_rank: &[usize],
    cfg: NodeSchemeConfig,
    phase: Phase,
) -> NodeSchemeResult {
    simulate_faulted(machine, decomp, torus, plan, atoms_per_rank, cfg, phase, &[], 0, None)
}

#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // node index keys several parallel schedules
fn simulate_faulted(
    machine: &MachineConfig,
    decomp: &Decomposition,
    torus: &Torus3d,
    plan: &HaloPlan,
    atoms_per_rank: &[usize],
    cfg: NodeSchemeConfig,
    phase: Phase,
    stalled_tnis: &[usize],
    stall_ns: u64,
    obs: Option<&CommMetrics>,
) -> NodeSchemeResult {
    assert!(matches!(cfg.leaders, 1 | 2 | 4), "leaders must be 1, 2 or 4");
    let costs = ApiCosts::of(CommApi::Utofu);
    let nnodes = decomp.num_nodes();
    let mut g = JobGraph::new();

    // Per-node resources.
    let threads_per_leader = match cfg.driving {
        TniDriving::ThreadPerTni => machine.tofu.tnis_per_node,
        TniDriving::SingleThread => 1,
    };
    let mut node_tnis = Vec::with_capacity(nnodes);
    let mut node_threads = Vec::with_capacity(nnodes);
    let mut node_bus = Vec::with_capacity(nnodes);
    for _ in 0..nnodes {
        node_tnis.push(g.resources(machine.tofu.tnis_per_node));
        node_threads.push(g.resources(cfg.leaders * threads_per_leader));
        // The ring bus serializes cross-NUMA traffic: gather and scatter
        // copies stream at full NoC bandwidth but one at a time.
        node_bus.push(g.resource());
    }

    // Wedged engines are held busy from t = 0; the send round-robin below
    // routes around them, so the holds only bite if a message is (wrongly)
    // queued on a stalled engine.
    let mut hold_jobs = Vec::new();
    if stall_ns > 0 {
        for tnis in &node_tnis {
            for &t in stalled_tnis {
                if t < machine.tofu.tnis_per_node {
                    hold_jobs.push(g.hold_resource(tnis[t], stall_ns));
                }
            }
        }
    }

    let mut result = NodeSchemeResult::default();

    // Phase 1+2 per node: sync, then worker gather copies over the bus.
    let mut gather_done: Vec<Vec<JobId>> = Vec::with_capacity(nnodes);
    for node in 0..nnodes {
        let sync = g.job(&[], None, machine.chip.sync_latency_ns as u64, 0);
        let mut copies = Vec::with_capacity(RANKS_PER_NODE);
        // Forward: workers publish their local atoms. Reverse: workers
        // publish the accumulated ghost forces (symmetric plan, smaller
        // per-atom payload).
        let per_atom_bytes =
            if phase == Phase::Forward { ATOM_FORWARD_BYTES } else { ATOM_REVERSE_BYTES };
        for &rank in decomp.node_ranks(node).iter() {
            let bytes = atoms_per_rank[rank] * per_atom_bytes;
            let busy = machine.chip.cross_numa_copy_ns(bytes, 1) as u64;
            copies.push(g.job(&[sync], Some(node_bus[node]), busy, 0));
            result.noc_bytes += bytes as u64;
        }
        gather_done.push(copies);
    }

    // Phase 3: leader sends, round-robin across leaders and their threads.
    let mut recv_deps: Vec<Vec<(JobId, usize)>> = vec![Vec::new(); nnodes]; // (inject job, bytes)
    for node in 0..nnodes {
        let sends = match phase {
            Phase::Forward => plan.node_sends(node),
            Phase::Reverse => plan.node_reverse_sends(node, ATOM_REVERSE_BYTES),
        };
        let tni_of =
            round_robin_assignment_avoiding(sends.len(), machine.tofu.tnis_per_node, stalled_tnis);
        if let Some(o) = obs {
            o.record_tni_assignment(&fugaku::tni::assignment_counts(
                &tni_of,
                machine.tofu.tnis_per_node,
            ));
        }
        for (mi, (dst, bytes)) in sends.into_iter().enumerate() {
            let thread = node_threads[node][mi % node_threads[node].len()];
            let tni = node_tnis[node][tni_of[mi]];
            let post = g.job(&gather_done[node], Some(thread), costs.send_overhead_ns, 0);
            let hops = torus.hops(node, dst);
            let inj = g.job(
                &[post],
                Some(tni),
                machine.tni.engine_overhead_ns + (bytes as f64 / machine.tofu.link_bw) as u64,
                machine.tofu.base_latency_ns as u64 + hops as u64 * machine.tofu.hop_latency_ns as u64,
            );
            recv_deps[dst].push((inj, bytes));
            result.comm.internode_messages += 1;
            result.comm.internode_bytes += bytes as u64;
            if let Some(o) = obs {
                o.rdma_bytes.add(bytes as u64);
            }
        }
    }

    // Phase 4+5: receive-side threads notice arrivals and perform the
    // scatter copies themselves (the paper: leader threads handle "data
    // copy, force reduction, and communication" — more leaders, more
    // copy concurrency). The ring bus divides its bandwidth across up to
    // four concurrent streams.
    let streams = 4usize.min(cfg.leaders * threads_per_leader);
    for node in 0..nnodes {
        let mut scatter_jobs = Vec::with_capacity(recv_deps[node].len());
        for (mi, &(inj, bytes)) in recv_deps[node].iter().enumerate() {
            let thread = node_threads[node][mi % node_threads[node].len()];
            // Forward with lb-broadcast fans the copy to all 4 workers;
            // the reverse phase *reduces* into the owner's array instead
            // (read-add-write ≈ 2× the payload traffic).
            let fan = match phase {
                Phase::Forward if cfg.lb_broadcast => RANKS_PER_NODE,
                Phase::Forward => 1,
                Phase::Reverse => 2,
            };
            let copy_bytes = bytes * fan;
            let busy =
                costs.recv_overhead_ns + machine.chip.cross_numa_copy_ns(copy_bytes, streams) as u64;
            scatter_jobs.push(g.job(&[inj], Some(thread), busy, 0));
            result.noc_bytes += copy_bytes as u64;
        }
        if !scatter_jobs.is_empty() {
            g.job(&scatter_jobs, None, machine.chip.sync_latency_ns as u64, 0);
        }
    }

    // The makespan of the *communication*: the stall-marker holds keep
    // their engines busy but are not work — a wedged engine that nothing
    // waits on must not count as schedule time.
    let sched = g.run();
    let is_hold: std::collections::HashSet<usize> = hold_jobs.iter().map(|j| j.0).collect();
    result.comm.total_ns = sched
        .finish
        .iter()
        .enumerate()
        .filter(|(i, _)| !is_hold.contains(i))
        .map(|(_, &f)| f)
        .max()
        .unwrap_or(0);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::atoms::Atoms;
    use minimd::lattice::fcc_lattice;
    use minimd::simbox::SimBox;

    fn setup(frac: f64, rc: f64, nodes: [usize; 3]) -> (MachineConfig, Decomposition, Torus3d, Atoms) {
        let edge = frac * rc;
        let bx = SimBox::new(
            edge * 2.0 * nodes[0] as f64,
            edge * 2.0 * nodes[1] as f64,
            edge * nodes[2] as f64,
        );
        let cells = [
            (bx.lengths().x / 3.615).round().max(1.0) as usize,
            (bx.lengths().y / 3.615).round().max(1.0) as usize,
            (bx.lengths().z / 3.615).round().max(1.0) as usize,
        ];
        let (_, mut atoms) = fcc_lattice(cells[0], cells[1], cells[2], 3.615);
        let sx = bx.lengths().x / (cells[0] as f64 * 3.615);
        let sy = bx.lengths().y / (cells[1] as f64 * 3.615);
        let sz = bx.lengths().z / (cells[2] as f64 * 3.615);
        for p in &mut atoms.pos {
            p.x *= sx;
            p.y *= sy;
            p.z *= sz;
            *p = bx.wrap(*p);
        }
        (MachineConfig::default(), Decomposition::new(bx, nodes), Torus3d::new(nodes), atoms)
    }

    fn atoms_per_rank(d: &Decomposition, atoms: &Atoms) -> Vec<usize> {
        d.counts_per_rank(atoms).into_iter().map(|c| c as usize).collect()
    }

    #[test]
    fn four_leaders_beat_two_beat_one() {
        let (m, d, t, atoms) = setup(0.5, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&d, &atoms, 8.0);
        let apr = atoms_per_rank(&d, &atoms);
        let mut times = Vec::new();
        for leaders in [1usize, 2, 4] {
            let cfg = NodeSchemeConfig { leaders, driving: TniDriving::ThreadPerTni, lb_broadcast: true };
            times.push(simulate(&m, &d, &t, &plan, &apr, cfg).comm.total_ns);
        }
        assert!(times[2] <= times[1] && times[1] <= times[0], "{times:?}");
        assert!(times[2] < times[0], "4 leaders must strictly beat 1");
    }

    #[test]
    fn multithreaded_tni_driving_beats_single_thread() {
        let (m, d, t, atoms) = setup(0.5, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&d, &atoms, 8.0);
        let apr = atoms_per_rank(&d, &atoms);
        let multi = simulate(
            &m,
            &d,
            &t,
            &plan,
            &apr,
            NodeSchemeConfig { leaders: 4, driving: TniDriving::ThreadPerTni, lb_broadcast: true },
        );
        let single = simulate(
            &m,
            &d,
            &t,
            &plan,
            &apr,
            NodeSchemeConfig { leaders: 4, driving: TniDriving::SingleThread, lb_broadcast: true },
        );
        assert!(single.comm.total_ns > multi.comm.total_ns);
        // Paper: 10–26% slowdown without multithreading; accept a band.
        let ratio = single.comm.total_ns as f64 / multi.comm.total_ns as f64;
        assert!(ratio > 1.03 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn lb_broadcast_adds_noc_bytes_but_little_time() {
        let (m, d, t, atoms) = setup(0.5, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&d, &atoms, 8.0);
        let apr = atoms_per_rank(&d, &atoms);
        let lb = simulate(&m, &d, &t, &plan, &apr, NodeSchemeConfig::paper_best());
        let refv = simulate(
            &m,
            &d,
            &t,
            &plan,
            &apr,
            NodeSchemeConfig { leaders: 4, driving: TniDriving::ThreadPerTni, lb_broadcast: false },
        );
        assert!(lb.noc_bytes > refv.noc_bytes);
        // The paper observes the extra copy "doesn't affect the
        // communication efficiency as expected" — small relative delta.
        let delta = (lb.comm.total_ns as f64 - refv.comm.total_ns as f64).abs()
            / refv.comm.total_ns as f64;
        assert!(delta < 0.25, "broadcast overhead {delta:.3}");
    }

    #[test]
    fn node_scheme_sends_exactly_the_plan() {
        let (m, d, t, atoms) = setup(1.0, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&d, &atoms, 8.0);
        let apr = atoms_per_rank(&d, &atoms);
        let r = simulate(&m, &d, &t, &plan, &apr, NodeSchemeConfig::paper_best());
        assert_eq!(r.comm.internode_messages as usize, plan.node_message_count());
    }

    #[test]
    fn stalled_tnis_degrade_but_do_not_block() {
        let (m, d, t, atoms) = setup(0.5, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&d, &atoms, 8.0);
        let apr = atoms_per_rank(&d, &atoms);
        let cfg = NodeSchemeConfig::paper_best();
        let healthy = simulate(&m, &d, &t, &plan, &apr, cfg);
        // Three of six engines wedged for a long time: routing around them
        // keeps every message off the held resources, so time grows only
        // through the halved injection bandwidth — far less than the stall.
        let stall_ns = 1_000_000_000;
        let faulted =
            simulate_with_stalled_tnis(&m, &d, &t, &plan, &apr, cfg, &[1, 3, 5], stall_ns);
        assert!(
            faulted.comm.total_ns >= healthy.comm.total_ns,
            "{} vs {}",
            faulted.comm.total_ns,
            healthy.comm.total_ns
        );
        assert!(
            faulted.comm.total_ns < healthy.comm.total_ns * 4,
            "routing around stalled TNIs must not serialize on them: {} vs {}",
            faulted.comm.total_ns,
            healthy.comm.total_ns
        );
        assert_eq!(faulted.comm.internode_messages, healthy.comm.internode_messages);
    }

    #[test]
    fn stalled_tni_simulation_is_deterministic() {
        let (m, d, t, atoms) = setup(0.5, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&d, &atoms, 8.0);
        let apr = atoms_per_rank(&d, &atoms);
        let cfg = NodeSchemeConfig::paper_best();
        let a = simulate_with_stalled_tnis(&m, &d, &t, &plan, &apr, cfg, &[0], 50_000);
        let b = simulate_with_stalled_tnis(&m, &d, &t, &plan, &apr, cfg, &[0], 50_000);
        assert_eq!(a.comm.total_ns, b.comm.total_ns);
        assert_eq!(a.noc_bytes, b.noc_bytes);
    }

    #[test]
    fn nothing_stalled_matches_the_healthy_schedule_exactly() {
        let (m, d, t, atoms) = setup(0.5, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&d, &atoms, 8.0);
        let apr = atoms_per_rank(&d, &atoms);
        let cfg = NodeSchemeConfig::paper_best();
        let healthy = simulate(&m, &d, &t, &plan, &apr, cfg);
        let faulted = simulate_with_stalled_tnis(&m, &d, &t, &plan, &apr, cfg, &[], 0);
        assert_eq!(faulted.comm.total_ns, healthy.comm.total_ns);
    }

    #[test]
    #[should_panic(expected = "leaders must be")]
    fn bad_leader_count_rejected() {
        let (m, d, t, atoms) = setup(1.0, 8.0, [3, 3, 4]);
        let plan = HaloPlan::build(&d, &atoms, 8.0);
        let apr = atoms_per_rank(&d, &atoms);
        simulate(
            &m,
            &d,
            &t,
            &plan,
            &apr,
            NodeSchemeConfig { leaders: 3, driving: TniDriving::ThreadPerTni, lb_broadcast: true },
        );
    }
}
