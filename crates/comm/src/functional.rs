//! Functional ghost exchange: actually move atoms between per-rank stores.
//!
//! The timing models in this crate predict *when* data arrives; this module
//! proves *what* arrives is right. All ranks live in one address space;
//! each holds a `minimd::Atoms` with its locals, and an exchange populates
//! ghosts with correctly image-shifted coordinates. The integration tests
//! assert that (a) every scheme delivers the same ghost sets and (b) forces
//! computed per-rank from ghosts equal the global single-box computation —
//! the invariant that makes the paper's comm optimizations *legal*.

use std::collections::HashMap;

use minimd::atoms::Atoms;
use minimd::domain::Decomposition;
use minimd::vec3::Vec3;

use crate::fault::FaultSession;
use crate::metrics::CommMetrics;
use crate::plan::{ATOM_FORWARD_BYTES, ATOM_REVERSE_BYTES};
use crate::transport::{deliver_reliable, Message, CHANNEL_FORWARD, CHANNEL_REVERSE};

/// One forward payload entry: `(id, type, original position)`. Positions
/// travel *unshifted*; every receiver derives the periodic image shift for
/// its own sub-box. That makes the per-rank ghost arrays of both exchange
/// schemes bitwise identical — each ghost id appears exactly once per rank
/// and its stored position is a pure function of `(original pos, rank box)`
/// — which is what lets a faulted node-based run degrade to p2p mid-run
/// without perturbing the trajectory.
pub type GhostEntry = (u64, u32, Vec3);

/// One reverse payload entry: `(owner id, accumulated ghost force)`.
pub type ForceEntry = (u64, Vec3);

/// How ghosts travel (both must produce identical ghost sets).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeScheme {
    /// Every rank receives directly from each stencil neighbour rank.
    RankP2p,
    /// Node-level aggregation: leaders gather, exchange per node, scatter.
    NodeBased,
}

/// Split a global configuration into per-rank stores (locals only).
pub fn partition(decomp: &Decomposition, global: &Atoms) -> Vec<Atoms> {
    let mut per_rank: Vec<Atoms> = (0..decomp.num_ranks()).map(|_| Atoms::new(global.species.clone())).collect();
    for i in 0..global.nlocal {
        let r = decomp.rank_of_pos(global.pos[i]);
        per_rank[r].push_local(global.id[i], global.typ[i], global.pos[i], global.vel[i]);
    }
    per_rank
}

/// Image shift that places owned position `p` nearest to the box `[lo, hi)`
/// along every axis (periodic).
fn ghost_shift(decomp: &Decomposition, p: Vec3, lo: Vec3, hi: Vec3) -> Vec3 {
    let l = decomp.bx.lengths();
    let mut shift = Vec3::ZERO;
    for d in 0..3 {
        let mut best = f64::MAX;
        let mut best_s = 0.0;
        for s in [-l[d], 0.0, l[d]] {
            let x = p[d] + s;
            let dist = if x < lo[d] {
                lo[d] - x
            } else if x > hi[d] {
                x - hi[d]
            } else {
                0.0
            };
            if dist < best {
                best = dist;
                best_s = s;
            }
        }
        shift[d] = best_s;
    }
    shift
}

/// Populate ghost atoms on every rank for cutoff `rc`.
///
/// Ghost positions carry the periodic image shift, so per-rank force code
/// can use plain Euclidean distances. `lb_broadcast` additionally delivers
/// *every* node-box atom (locals of sibling ranks and all node ghosts) to
/// every rank of the node — the layout of Fig. 5(b) that enables intra-node
/// load balance.
pub fn exchange_ghosts(
    decomp: &Decomposition,
    per_rank: &mut [Atoms],
    rc: f64,
    scheme: ExchangeScheme,
    lb_broadcast: bool,
) {
    assert_eq!(per_rank.len(), decomp.num_ranks());
    for a in per_rank.iter_mut() {
        a.clear_ghosts();
    }
    let messages = build_forward_messages(decomp, per_rank, rc, scheme, lb_broadcast);
    apply_forward_messages(decomp, per_rank, rc, scheme, lb_broadcast, &messages);
}

/// [`exchange_ghosts`] with metric capture: charges the canonical message
/// set (messages, bytes, per-edge and per-scheme splits) and the resulting
/// ghost count to `obs` before/after the apply.
pub fn exchange_ghosts_observed(
    decomp: &Decomposition,
    per_rank: &mut [Atoms],
    rc: f64,
    scheme: ExchangeScheme,
    lb_broadcast: bool,
    obs: &CommMetrics,
) {
    assert_eq!(per_rank.len(), decomp.num_ranks());
    for a in per_rank.iter_mut() {
        a.clear_ghosts();
    }
    let messages = build_forward_messages(decomp, per_rank, rc, scheme, lb_broadcast);
    obs.count_messages(Some(scheme), ATOM_FORWARD_BYTES, &messages);
    apply_forward_messages(decomp, per_rank, rc, scheme, lb_broadcast, &messages);
    obs.record_ghosts(per_rank);
}

/// [`exchange_ghosts`] over a faulty transport: the same canonical messages
/// go through [`deliver_reliable`]'s retry/dedup protocol before being
/// applied, accumulating fault and recovery counters into `session`.
///
/// Panics if delivery exhausts its retries (only reachable under
/// pathological fault plans, e.g. `drop` probabilities near 1).
pub fn exchange_ghosts_recoverable(
    decomp: &Decomposition,
    per_rank: &mut [Atoms],
    rc: f64,
    scheme: ExchangeScheme,
    lb_broadcast: bool,
    session: &mut FaultSession,
    step: u64,
) {
    assert_eq!(per_rank.len(), decomp.num_ranks());
    for a in per_rank.iter_mut() {
        a.clear_ghosts();
    }
    let messages = build_forward_messages(decomp, per_rank, rc, scheme, lb_broadcast);
    if let Some(o) = &session.obs {
        o.count_messages(Some(scheme), ATOM_FORWARD_BYTES, &messages);
    }
    let delivered =
        deliver_reliable(session, CHANNEL_FORWARD, step, ATOM_FORWARD_BYTES, &messages)
            .unwrap_or_else(|e| panic!("forward exchange at step {step}: {e}"));
    apply_forward_messages(decomp, per_rank, rc, scheme, lb_broadcast, &delivered);
    if let Some(o) = &session.obs {
        o.record_ghosts(per_rank);
    }
}

/// Assemble the canonical forward messages of `scheme`: what every
/// sender would put on the wire, in deterministic order.
///
/// * `RankP2p` — one message per directed `(stencil neighbour → rank)`
///   edge, payload filtered to the receiver's ghost region;
/// * `NodeBased` — one message per directed `(node → neighbour node)`
///   edge between the leader ranks, payload being the source node's pooled
///   atoms inside the destination *node's* ghost region — each atom shipped
///   once per node pair, the deduplication behind the paper's 81 % saving.
pub fn build_forward_messages(
    decomp: &Decomposition,
    per_rank: &[Atoms],
    rc: f64,
    scheme: ExchangeScheme,
    lb_broadcast: bool,
) -> Vec<Message<GhostEntry>> {
    let mut messages = Vec::new();
    match scheme {
        ExchangeScheme::RankP2p => {
            for dst in 0..decomp.num_ranks() {
                let mut sources = decomp.neighbor_ranks(dst, rc);
                if lb_broadcast {
                    // Sibling ranks' locals are also needed wholesale.
                    for r in decomp.node_ranks(decomp.rank_to_node(dst)) {
                        if r != dst && !sources.contains(&r) {
                            sources.push(r);
                        }
                    }
                }
                for src in sources {
                    let node_sib = decomp.rank_to_node(src) == decomp.rank_to_node(dst);
                    let a = &per_rank[src];
                    let mut payload = Vec::new();
                    for i in 0..a.nlocal {
                        let p = a.pos[i];
                        let take = (lb_broadcast && node_sib)
                            || decomp.in_ghost_region_of_rank(dst, p, rc);
                        if take {
                            payload.push((a.id[i], a.typ[i], p));
                        }
                    }
                    messages.push(Message { src: src as u32, dst: dst as u32, payload });
                }
            }
        }
        ExchangeScheme::NodeBased => {
            // Gather: node n's pooled atoms (all four ranks' locals).
            let nnodes = decomp.num_nodes();
            let mut node_atoms: Vec<Vec<GhostEntry>> = vec![Vec::new(); nnodes];
            for (n, pooled) in node_atoms.iter_mut().enumerate() {
                for r in decomp.node_ranks(n) {
                    let a = &per_rank[r];
                    for i in 0..a.nlocal {
                        pooled.push((a.id[i], a.typ[i], a.pos[i]));
                    }
                }
            }
            for dst in 0..nnodes {
                let leader_dst = decomp.node_ranks(dst)[0] as u32;
                for src in decomp.neighbor_nodes(dst, rc) {
                    let payload: Vec<GhostEntry> = node_atoms[src]
                        .iter()
                        .filter(|&&(_, _, p)| decomp.in_ghost_region_of_node(dst, p, rc))
                        .copied()
                        .collect();
                    messages.push(Message {
                        src: decomp.node_ranks(src)[0] as u32,
                        dst: leader_dst,
                        payload,
                    });
                }
            }
        }
    }
    messages
}

/// Apply delivered forward messages: shift every entry into the receiving
/// rank's frame, merge with intra-node (shared-memory) sibling locals for
/// the node-based scheme, sort by id, and push as ghosts.
///
/// Apply order is canonical — it depends only on the message *set*, never
/// on arrival order, which is the property that makes reorder faults
/// harmless.
pub fn apply_forward_messages(
    decomp: &Decomposition,
    per_rank: &mut [Atoms],
    rc: f64,
    scheme: ExchangeScheme,
    lb_broadcast: bool,
    messages: &[Message<GhostEntry>],
) {
    match scheme {
        ExchangeScheme::RankP2p => {
            let mut incoming: Vec<Vec<GhostEntry>> = vec![Vec::new(); decomp.num_ranks()]; // dpmd-allow D5: per-exchange staging, one vec per rank
            for m in messages {
                let dst = m.dst as usize;
                let (lo, hi) = decomp.rank_box(dst);
                for &(id, typ, p) in &m.payload {
                    incoming[dst].push((id, typ, p + ghost_shift(decomp, p, lo, hi)));
                }
            }
            for (dst, mut inc) in incoming.into_iter().enumerate() {
                inc.sort_by_key(|e| e.0);
                for (id, typ, pos) in inc {
                    per_rank[dst].push_ghost(id, typ, pos);
                }
            }
        }
        ExchangeScheme::NodeBased => {
            // Leaders' inboxes: remote node ghosts, keyed by receiving node.
            let nnodes = decomp.num_nodes();
            let mut node_ghosts: Vec<Vec<GhostEntry>> = vec![Vec::new(); nnodes]; // dpmd-allow D5: per-exchange staging, one vec per node
            for m in messages {
                node_ghosts[decomp.rank_to_node(m.dst as usize)].extend_from_slice(&m.payload);
            }
            // Scatter: within each node, deliver to each rank (shared
            // memory — never faulted).
            for (n, ghosts) in node_ghosts.iter().enumerate() {
                for dst in decomp.node_ranks(n) {
                    let (lo, hi) = decomp.rank_box(dst);
                    let mut incoming: Vec<GhostEntry> = Vec::new(); // dpmd-allow D5: per-exchange staging, grows to the halo size
                    // Sibling locals (from the node gather).
                    for r in decomp.node_ranks(n) {
                        if r == dst {
                            continue;
                        }
                        let a = &per_rank[r];
                        for i in 0..a.nlocal {
                            let p = a.pos[i];
                            if lb_broadcast || decomp.in_ghost_region_of_rank(dst, p, rc) {
                                incoming.push((a.id[i], a.typ[i], p + ghost_shift(decomp, p, lo, hi)));
                            }
                        }
                    }
                    // Remote ghosts (from the node exchange).
                    for &(id, typ, p) in ghosts {
                        if lb_broadcast || decomp.in_ghost_region_of_rank(dst, p, rc) {
                            incoming.push((id, typ, p + ghost_shift(decomp, p, lo, hi)));
                        }
                    }
                    incoming.sort_by_key(|e| e.0);
                    for (id, typ, pos) in incoming {
                        per_rank[dst].push_ghost(id, typ, pos);
                    }
                }
            }
        }
    }
}


/// Functional 3-stage (staged forwarding) exchange — LAMMPS' own algorithm:
/// ghosts propagate one dimension at a time, with multi-round forwarding
/// when the halo spans several sub-box layers. Produces exactly the same
/// per-rank ghost sets as [`ExchangeScheme::RankP2p`] (tested), which is
/// why LAMMPS can use either interchangeably.
pub fn exchange_ghosts_three_stage(decomp: &Decomposition, per_rank: &mut [Atoms], rc: f64) {
    assert_eq!(per_rank.len(), decomp.num_ranks());
    for a in per_rank.iter_mut() {
        a.clear_ghosts();
    }
    let layers = Decomposition::comm_layers(decomp.rank_edges(), rc);
    let l = decomp.bx.lengths();

    // Working sets: (id, typ, pos) per rank, positions already image-
    // shifted into the receiving rank's frame. Seed with locals.
    let mut held: Vec<Vec<(u64, u32, Vec3)>> = per_rank
        .iter()
        .map(|a| (0..a.nlocal).map(|i| (a.id[i], a.typ[i], a.pos[i])).collect())
        .collect();

    for d in 0..3 {
        for _round in 0..layers[d] {
            // Each rank sends to its ±d neighbours the held atoms within rc
            // of that neighbour's sub-box along the dimensions processed so
            // far (the slab criterion); receivers deduplicate by (id, pos).
            let mut incoming: Vec<Vec<(u64, u32, Vec3)>> = vec![Vec::new(); decomp.num_ranks()];
            for (rank, set) in held.iter().enumerate() {
                let c = decomp.rank_coords(rank);
                for sign in [-1i64, 1i64] {
                    let mut cc = [c[0] as i64, c[1] as i64, c[2] as i64];
                    cc[d] += sign;
                    let dst = decomp.rank_at(cc);
                    let (lo, hi) = decomp.rank_box(dst);
                    for &(id, typ, p) in set {
                        // Per-axis shift toward dst's box on axis d only
                        // (earlier axes were already aligned when the atom
                        // travelled; the same ±L logic re-derives them).
                        let mut shift = Vec3::ZERO;
                        let mut dist = 0.0f64;
                        for ax in 0..3 {
                            let mut best = f64::MAX;
                            let mut best_s = 0.0;
                            for s in [-l[ax], 0.0, l[ax]] {
                                let x = p[ax] + s;
                                let dd = if x < lo[ax] {
                                    lo[ax] - x
                                } else if x > hi[ax] {
                                    x - hi[ax]
                                } else {
                                    0.0
                                };
                                if dd < best {
                                    best = dd;
                                    best_s = s;
                                }
                            }
                            shift[ax] = best_s;
                            if ax <= d {
                                dist += best * best;
                            }
                        }
                        // Slab criterion over the processed dimensions.
                        if dist <= rc * rc {
                            incoming[dst].push((id, typ, p + shift));
                        }
                    }
                }
            }
            // Merge with dedup by (id, quantized position).
            for (rank, inc) in incoming.into_iter().enumerate() {
                let mut seen: std::collections::HashSet<(u64, [i64; 3])> = held[rank]
                    .iter()
                    .map(|&(id, _, p)| (id, quant(p)))
                    .collect();
                for (id, typ, p) in inc {
                    if seen.insert((id, quant(p))) {
                        held[rank].push((id, typ, p));
                    }
                }
            }
        }
    }

    // Materialize: everything held beyond the locals that sits within rc of
    // the rank box (3-D criterion) becomes a ghost, sorted for determinism.
    for (rank, a) in per_rank.iter_mut().enumerate() {
        let mut ghosts: Vec<(u64, u32, Vec3)> = held[rank]
            .iter()
            .skip(a.nlocal)
            .filter(|&&(_, _, p)| decomp.in_ghost_region_of_rank(rank, p, rc))
            .copied()
            .collect();
        ghosts.sort_by_key(|&(id, _, p)| (id, quant(p)));
        for (id, typ, p) in ghosts {
            a.push_ghost(id, typ, p);
        }
    }
}

#[inline]
fn quant(p: Vec3) -> [i64; 3] {
    [(p.x * 1e7).round() as i64, (p.y * 1e7).round() as i64, (p.z * 1e7).round() as i64]
}

/// Canonical ghost multiset of a rank: sorted `(id, quantized position)`
/// for scheme-equivalence checks.
pub fn ghost_signature(atoms: &Atoms) -> Vec<(u64, [i64; 3])> {
    let mut v: Vec<(u64, [i64; 3])> = (atoms.nlocal..atoms.len())
        .map(|i| {
            let p = atoms.pos[i];
            (
                atoms.id[i],
                [(p.x * 1e7).round() as i64, (p.y * 1e7).round() as i64, (p.z * 1e7).round() as i64],
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// Reverse path: accumulate ghost forces back onto their owners ("Newton's
/// law on"). Ghosts are matched by global id.
pub fn reverse_forces(decomp: &Decomposition, per_rank: &mut [Atoms]) {
    let _ = decomp;
    let messages = build_reverse_messages(per_rank);
    apply_reverse_messages(per_rank, &messages);
}

/// [`reverse_forces`] with metric capture: charges the canonical reverse
/// message set to `obs` (no scheme split — the reverse path is shared).
pub fn reverse_forces_observed(decomp: &Decomposition, per_rank: &mut [Atoms], obs: &CommMetrics) {
    let _ = decomp;
    let messages = build_reverse_messages(per_rank);
    obs.count_messages(None, ATOM_REVERSE_BYTES, &messages);
    apply_reverse_messages(per_rank, &messages);
}

/// [`reverse_forces`] over a faulty transport, with the same recovery
/// protocol (and panic-on-exhausted-retries contract) as
/// [`exchange_ghosts_recoverable`].
pub fn reverse_forces_recoverable(
    decomp: &Decomposition,
    per_rank: &mut [Atoms],
    session: &mut FaultSession,
    step: u64,
) {
    let _ = decomp;
    let messages = build_reverse_messages(per_rank);
    if let Some(o) = &session.obs {
        o.count_messages(None, ATOM_REVERSE_BYTES, &messages);
    }
    let delivered =
        deliver_reliable(session, CHANNEL_REVERSE, step, ATOM_REVERSE_BYTES, &messages)
            .unwrap_or_else(|e| panic!("reverse reduction at step {step}: {e}"));
    apply_reverse_messages(per_rank, &delivered);
}

/// Assemble the canonical reverse messages: each rank's non-zero ghost
/// forces, grouped per owner rank, in `(source rank asc, ghost index asc)`
/// order. That ordering makes the summation order per owner atom identical
/// to the sequential reference, so applying delivered messages is bitwise
/// equal to [`reverse_forces`] — for either exchange scheme.
pub fn build_reverse_messages(per_rank: &[Atoms]) -> Vec<Message<ForceEntry>> {
    let mut owner_rank: HashMap<u64, u32> = HashMap::new();
    for (r, a) in per_rank.iter().enumerate() {
        for i in 0..a.nlocal {
            owner_rank.insert(a.id[i], r as u32);
        }
    }
    let nranks = per_rank.len();
    let mut messages = Vec::new();
    for (src, a) in per_rank.iter().enumerate() {
        let mut per_dst: Vec<Vec<ForceEntry>> = vec![Vec::new(); nranks];
        for gi in a.nlocal..a.len() {
            if a.force[gi] != Vec3::ZERO {
                per_dst[owner_rank[&a.id[gi]] as usize].push((a.id[gi], a.force[gi]));
            }
        }
        for (dst, payload) in per_dst.into_iter().enumerate() {
            if !payload.is_empty() {
                messages.push(Message { src: src as u32, dst: dst as u32, payload });
            }
        }
    }
    messages
}

/// Apply delivered reverse messages onto the owners' force arrays, in
/// canonical message order (independent of arrival order).
pub fn apply_reverse_messages(per_rank: &mut [Atoms], messages: &[Message<ForceEntry>]) {
    let index: Vec<HashMap<u64, usize>> = per_rank
        .iter()
        .map(|a| (0..a.nlocal).map(|i| (a.id[i], i)).collect()) // dpmd-allow D5: per-exchange id index, rebuilt after migration
        .collect();
    for m in messages {
        let dst = m.dst as usize;
        for &(id, f) in &m.payload {
            let i = index[dst][&id];
            per_rank[dst].force[i] += f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::lattice::fcc_lattice;
    use minimd::neighbor::{ListKind, NeighborList};
    use minimd::potential::lj::LennardJones;
    use minimd::potential::Potential;
    use minimd::simbox::SimBox;

    fn setup() -> (Decomposition, Atoms, SimBox) {
        // 3×3×4 nodes, box big enough for rc=5 with rank edges ≥ rc/2.
        let (bx, atoms) = fcc_lattice(10, 10, 10, 3.615);
        let decomp = Decomposition::new(bx, [3, 3, 4]);
        (decomp, atoms, bx)
    }

    #[test]
    fn partition_conserves_atoms() {
        let (decomp, atoms, _) = setup();
        let per_rank = partition(&decomp, &atoms);
        let total: usize = per_rank.iter().map(|a| a.nlocal).sum();
        assert_eq!(total, atoms.nlocal);
        for (r, a) in per_rank.iter().enumerate() {
            a.validate().unwrap();
            let (lo, hi) = decomp.rank_box(r);
            for i in 0..a.nlocal {
                for d in 0..3 {
                    assert!(a.pos[i][d] >= lo[d] - 1e-12 && a.pos[i][d] < hi[d] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn p2p_and_node_based_deliver_identical_ghosts() {
        let (decomp, atoms, _) = setup();
        let rc = 5.0;
        let mut a1 = partition(&decomp, &atoms);
        let mut a2 = partition(&decomp, &atoms);
        exchange_ghosts(&decomp, &mut a1, rc, ExchangeScheme::RankP2p, false);
        exchange_ghosts(&decomp, &mut a2, rc, ExchangeScheme::NodeBased, false);
        for r in 0..decomp.num_ranks() {
            assert_eq!(ghost_signature(&a1[r]), ghost_signature(&a2[r]), "rank {r}");
        }
    }

    #[test]
    fn lb_broadcast_supersets_owner_ghosts() {
        let (decomp, atoms, _) = setup();
        let rc = 5.0;
        let mut plain = partition(&decomp, &atoms);
        let mut lb = partition(&decomp, &atoms);
        exchange_ghosts(&decomp, &mut plain, rc, ExchangeScheme::NodeBased, false);
        exchange_ghosts(&decomp, &mut lb, rc, ExchangeScheme::NodeBased, true);
        for r in 0..decomp.num_ranks() {
            let sig_plain = ghost_signature(&plain[r]);
            let sig_lb = ghost_signature(&lb[r]);
            assert!(sig_lb.len() >= sig_plain.len(), "rank {r}");
            // Every plain ghost appears in the lb set.
            let set: std::collections::HashSet<_> = sig_lb.into_iter().collect();
            for s in sig_plain {
                assert!(set.contains(&s), "rank {r} missing ghost {s:?}");
            }
        }
    }

    #[test]
    fn three_stage_forwarding_matches_p2p_ghosts() {
        let (decomp, atoms, _) = setup();
        let rc = 5.0;
        let mut p2p = partition(&decomp, &atoms);
        let mut staged = partition(&decomp, &atoms);
        exchange_ghosts(&decomp, &mut p2p, rc, ExchangeScheme::RankP2p, false);
        exchange_ghosts_three_stage(&decomp, &mut staged, rc);
        for r in 0..decomp.num_ranks() {
            assert_eq!(
                ghost_signature(&p2p[r]),
                ghost_signature(&staged[r]),
                "rank {r}: staged forwarding must reproduce the p2p halo"
            );
        }
    }

    /// The load-bearing test: distributed forces (per-rank with ghosts,
    /// plus the reverse reduction) equal the global single-box forces.
    #[test]
    fn distributed_forces_match_global_reference() {
        let (decomp, mut global, bx) = setup();
        // Perturb for non-trivial forces.
        for (k, p) in global.pos.iter_mut().enumerate() {
            p.x += 0.05 * ((k % 7) as f64 - 3.0) / 3.0;
            *p = bx.wrap(*p);
        }
        let lj = LennardJones::new(0.0104, 3.4, 5.0);
        // Global reference.
        let mut nl = NeighborList::new(5.0, 0.0, ListKind::Full);
        nl.build(&global, &bx);
        global.zero_forces();
        let gout = lj.compute(&mut global, &nl, &bx);
        let mut ref_force: HashMap<u64, Vec3> = HashMap::new();
        for i in 0..global.nlocal {
            ref_force.insert(global.id[i], global.force[i]);
        }
        // Distributed.
        let mut per_rank = partition(&decomp, &global);
        exchange_ghosts(&decomp, &mut per_rank, 5.0, ExchangeScheme::NodeBased, false);
        let mut dist_energy = 0.0;
        for a in per_rank.iter_mut() {
            let mut rnl = NeighborList::new(5.0, 0.0, ListKind::Full);
            rnl.build(a, &bx);
            a.zero_forces();
            let out = lj.compute(a, &rnl, &bx);
            dist_energy += out.energy;
        }
        reverse_forces(&decomp, &mut per_rank);
        // Energies agree (full list halves shared pair energy, so the sum
        // over ranks equals the global total).
        assert!(
            (dist_energy - gout.energy).abs() < 1e-6 * gout.energy.abs().max(1.0),
            "energy {dist_energy} vs {}",
            gout.energy
        );
        // Forces agree atom by atom.
        for a in per_rank.iter() {
            for i in 0..a.nlocal {
                let rf = ref_force[&a.id[i]];
                assert!((a.force[i] - rf).norm() < 1e-9, "atom id {}: {:?} vs {rf:?}", a.id[i], a.force[i]);
            }
        }
    }
}
