//! Reliable delivery over a deliberately faulty transport.
//!
//! [`deliver_reliable`] runs the recovery protocol the driver depends on:
//! per-edge monotone sequence numbers, round-based timeout/retry with
//! exponential backoff, and receiver-side idempotent apply (a duplicate or
//! replayed copy is a no-op). Faults come from the session's
//! [`FaultPlan`](crate::fault::FaultPlan); every decision is keyed off
//! `(seed, step, edge, attempt)`, so a faulted run replays bit-identically.
//!
//! The receiver buffers arrivals by `(src, dst)` slot and the caller applies
//! them in canonical slot order once every slot is filled — which is why
//! reorder and duplicate faults cannot perturb the physics: the *applied*
//! byte stream is independent of arrival order by construction.

use crate::fault::FaultSession;

/// Channel id of the forward (ghost) exchange.
pub const CHANNEL_FORWARD: u64 = 0x0046_5744; // "FWD"
/// Channel id of the reverse (force-reduction) exchange.
pub const CHANNEL_REVERSE: u64 = 0x0052_4556; // "REV"

/// One point-to-point message of the exchange: a payload of entries moving
/// along the directed edge `src → dst` (rank indices).
#[derive(Clone, Debug, PartialEq)]
pub struct Message<T> {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Payload entries, in canonical (sender-side) order.
    pub payload: Vec<T>,
}

/// Reliable delivery gave up: some edges stayed undelivered after every
/// retry round (only possible under pathological fault plans).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryError {
    /// Messages never delivered.
    pub undelivered: usize,
    /// Rounds attempted (1 + max_retries).
    pub rounds: u32,
}

impl std::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reliable delivery failed: {} message(s) undelivered after {} round(s)",
            self.undelivered, self.rounds
        )
    }
}

impl std::error::Error for DeliveryError {}

/// Typed failure of [`deliver_reliable`]. Production callers used to hit a
/// bare `unwrap()` on the delivery slots; both ways the protocol can come up
/// short are now explicit values the caller decides about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Retries exhausted with messages still undelivered (only possible
    /// under pathological fault plans).
    Undelivered(DeliveryError),
    /// Internal invariant breach: the protocol claimed completion but a
    /// delivery slot was empty when collected. Counted on
    /// `transport.missing_slots` when obs is attached.
    MissingDelivery {
        /// Canonical slot index that had no message.
        slot: usize,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Undelivered(e) => e.fmt(f),
            TransportError::MissingDelivery { slot } => {
                write!(f, "transport invariant breach: delivery slot {slot} empty at collection")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Undelivered(e) => Some(e),
            TransportError::MissingDelivery { .. } => None,
        }
    }
}

impl From<DeliveryError> for TransportError {
    fn from(e: DeliveryError) -> Self {
        TransportError::Undelivered(e)
    }
}

/// A delayed transmission still on the wire.
struct InFlight {
    arrives_round: u32,
    slot: usize,
    seq: u64,
    block: Option<crate::mempool::PoolBlock>,
}

/// Run the recovery protocol for `messages` on `channel` at `step`,
/// returning the delivered messages in canonical slot order (the input
/// order). `entry_bytes` sizes the RDMA-pool claim of each payload entry.
///
/// Counters for every injected fault and every recovery action accumulate
/// into `session.stats`.
pub fn deliver_reliable<T: Clone>(
    session: &mut FaultSession,
    channel: u64,
    step: u64,
    entry_bytes: usize,
    messages: &[Message<T>],
) -> Result<Vec<Message<T>>, TransportError> {
    let plan = session.plan.clone();
    let n = messages.len();
    session.stats.payload_entries += messages.iter().map(|m| m.payload.len() as u64).sum::<u64>();

    // Sequence numbers are assigned once per message; retries re-ship the
    // same sequence number, which is what lets the receiver discard the
    // late copy of an already-delivered message.
    let seqs: Vec<u64> =
        messages.iter().map(|m| session.next_seq(channel, m.src, m.dst)).collect();

    let mut delivered: Vec<Option<Message<T>>> = (0..n).map(|_| None).collect();
    let mut attempts: Vec<u32> = vec![0; n];
    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut remaining = n;
    let rounds = plan.max_retries + 1;

    for round in 0..rounds {
        if remaining == 0 && in_flight.is_empty() {
            break;
        }
        // (1) Delayed copies due this round come off the wire first (their
        // pool blocks free before this round's sends claim space).
        let mut arrivals: Vec<(usize, u64)> = Vec::new();
        let mut still_flying = Vec::new();
        for mut fl in in_flight.drain(..) {
            if fl.arrives_round <= round {
                if let Some(b) = fl.block.take() {
                    session.pool.free(b);
                }
                arrivals.push((fl.slot, fl.seq));
            } else {
                still_flying.push(fl);
            }
        }
        in_flight = still_flying;

        // (2) Transmit every undelivered message once this round.
        for slot in 0..n {
            if delivered[slot].is_some() {
                continue;
            }
            let m = &messages[slot];
            let attempt = attempts[slot];
            let bytes = m.payload.len() * entry_bytes;
            let block = match session.pool.alloc(bytes) {
                Ok(b) => b,
                Err(_) => {
                    // Exhausted: defer the send; retried next round after
                    // in-flight blocks free up.
                    session.stats.pool_exhausted += 1;
                    if let Some(o) = &session.obs {
                        o.pool_exhausted.inc();
                    }
                    continue;
                }
            };
            attempts[slot] = attempt + 1;
            session.stats.messages_sent += 1;
            if let Some(o) = &session.obs {
                o.transmissions.inc();
            }
            if attempt > 0 {
                session.stats.retries += 1;
                if let Some(o) = &session.obs {
                    o.retries.inc();
                }
            }
            if plan.decide_drop(step, m.src, m.dst, attempt) {
                session.stats.dropped += 1;
                session.pool.free(block);
                continue;
            }
            if let Some(extra) = plan.decide_delay(step, m.src, m.dst, attempt) {
                session.stats.delayed += 1;
                in_flight.push(InFlight {
                    arrives_round: round + extra,
                    slot,
                    seq: seqs[slot],
                    block: Some(block),
                });
                continue;
            }
            arrivals.push((slot, seqs[slot]));
            if plan.decide_dup(step, m.src, m.dst, attempt) {
                session.stats.duplicates_delivered += 1;
                arrivals.push((slot, seqs[slot]));
            }
            session.pool.free(block);
        }

        // (3) A reorder fault shuffles this round's delivery order. It is
        // provably harmless — apply order is canonical — but it exercises
        // the receive-side buffering the guarantee rests on.
        if arrivals.len() > 1 && plan.decide_reorder(step, channel, round) {
            session.stats.reorders += 1;
            plan.shuffle(step, channel, round, &mut arrivals);
        }

        // (4) Receive: the sequence check makes apply idempotent.
        for (slot, seq) in arrivals {
            let m = &messages[slot];
            if session.accept_seq(channel, m.src, m.dst, seq) {
                delivered[slot] = Some(m.clone());
                remaining -= 1;
            } else if delivered[slot].is_some() {
                session.stats.duplicates_ignored += 1;
            } else {
                session.stats.stale_rejected += 1;
            }
        }

        // (5) Timeout: anything still missing backs off and resends.
        if remaining > 0 && round + 1 < rounds {
            session.stats.timeout_rounds += 1;
            let backoff = plan.backoff_base_ns << round.min(20);
            session.stats.backoff_ns += backoff;
            if let Some(o) = &session.obs {
                o.backoff_ns.add(backoff);
            }
        }
    }

    // Copies still on the wire when the step's delivery loop closes are
    // dead: their sequence numbers are stale by the next step, so they are
    // dropped here rather than carried across steps.
    for fl in in_flight.drain(..) {
        session.stats.expired_in_flight += 1;
        if let Some(b) = fl.block {
            session.pool.free(b);
        }
    }

    if let Some(o) = &session.obs {
        // Per-message retry count distribution (0 = delivered first try)
        // and the staging pool's occupancy high-water.
        for &a in &attempts {
            o.retry_rounds.record(a.saturating_sub(1) as u64);
        }
        o.mempool_peak.set_max(session.pool.peak_used() as u64);
    }

    if remaining > 0 {
        return Err(TransportError::Undelivered(DeliveryError {
            undelivered: remaining,
            rounds,
        }));
    }
    collect_delivered(session.obs.as_ref(), delivered)
}

/// Collect the slot buffer into canonical order, surfacing an empty slot as
/// a typed [`TransportError::MissingDelivery`] (counted on
/// `transport.missing_slots`) rather than panicking mid-exchange. With
/// `remaining == 0` every slot is `Some` by construction, so this is the
/// protocol's last-line invariant check, not a recovery path.
fn collect_delivered<T>(
    obs: Option<&crate::metrics::CommMetrics>,
    delivered: Vec<Option<Message<T>>>,
) -> Result<Vec<Message<T>>, TransportError> {
    let mut out = Vec::with_capacity(delivered.len());
    for (slot, m) in delivered.into_iter().enumerate() {
        match m {
            Some(m) => out.push(m),
            None => {
                if let Some(o) = obs {
                    o.missing_slots.inc();
                }
                return Err(TransportError::MissingDelivery { slot });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultSession};

    fn edges(n: u32) -> Vec<Message<u64>> {
        (0..n)
            .map(|i| Message { src: i, dst: (i + 1) % n, payload: vec![i as u64, 7, 9] })
            .collect()
    }

    #[test]
    fn clean_plan_delivers_everything_first_round() {
        let mut s = FaultSession::new(FaultPlan::none());
        let msgs = edges(16);
        let out = deliver_reliable(&mut s, CHANNEL_FORWARD, 1, 8, &msgs).unwrap();
        assert_eq!(out, msgs);
        assert_eq!(s.stats.messages_sent, 16);
        assert_eq!(s.stats.retries, 0);
        assert_eq!(s.stats.faults_injected(), 0);
        assert_eq!(s.pool.used(), 0, "all pool blocks must be freed");
    }

    #[test]
    fn chaos_plan_still_delivers_the_canonical_set() {
        let mut s = FaultSession::new(FaultPlan::chaos(42));
        let msgs = edges(64);
        for step in 1..=8 {
            let out = deliver_reliable(&mut s, CHANNEL_FORWARD, step, 8, &msgs).unwrap();
            assert_eq!(out, msgs, "step {step}: delivery must be canonical");
        }
        assert!(s.stats.dropped > 0, "chaos plan should have dropped something");
        assert!(s.stats.retries > 0, "drops must have forced retries");
        assert_eq!(s.pool.used(), 0);
    }

    #[test]
    fn same_seed_replays_identical_stats() {
        let run = |seed| {
            let mut s = FaultSession::new(FaultPlan::chaos(seed));
            for step in 1..=6 {
                deliver_reliable(&mut s, CHANNEL_FORWARD, step, 8, &edges(48)).unwrap();
            }
            s.stats
        };
        assert_eq!(run(11), run(11), "same seed must replay bit-identically");
        assert_ne!(run(11), run(12), "different seeds should diverge");
    }

    #[test]
    fn certain_drop_exhausts_retries_with_an_error_not_a_panic() {
        let mut plan = FaultPlan::none();
        plan.drop_p = 0.999_999;
        plan.max_retries = 3;
        let mut s = FaultSession::new(plan);
        let err = deliver_reliable(&mut s, CHANNEL_FORWARD, 1, 8, &edges(4)).unwrap_err();
        let TransportError::Undelivered(d) = err else {
            panic!("expected Undelivered, got {err:?}");
        };
        assert_eq!(d.rounds, 4);
        assert!(d.undelivered > 0);
        assert_eq!(s.pool.used(), 0, "failed delivery must not leak pool blocks");
    }

    #[test]
    fn missing_slot_is_a_typed_error_and_counted() {
        use dpmd_obs::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let m = crate::metrics::CommMetrics::register(&reg);
        // Fabricate the invariant breach collect_delivered guards against:
        // slot 1 empty despite a "complete" protocol run.
        let delivered: Vec<Option<Message<u64>>> = vec![
            Some(Message { src: 0, dst: 1, payload: vec![1] }),
            None,
            Some(Message { src: 2, dst: 3, payload: vec![2] }),
        ];
        let err = collect_delivered(Some(&m), delivered).unwrap_err();
        assert_eq!(err, TransportError::MissingDelivery { slot: 1 });
        assert!(err.to_string().contains("slot 1"));
        if reg.is_enabled() {
            assert_eq!(reg.snapshot().counter("transport.missing_slots"), Some(1));
        }
    }

    #[test]
    fn full_slots_collect_in_canonical_order() {
        let msgs = edges(3);
        let delivered: Vec<Option<Message<u64>>> = msgs.iter().cloned().map(Some).collect();
        assert_eq!(collect_delivered(None, delivered).unwrap(), msgs);
    }

    #[test]
    fn tiny_pool_defers_sends_but_recovers() {
        // Pool fits exactly one 3-entry message; delays hold blocks across
        // rounds, so sends must interleave with frees and still complete.
        let mut plan = FaultPlan::chaos(3);
        plan.drop_p = 0.0;
        plan.dup_p = 0.0;
        plan.delay_p = 0.4;
        plan.delay_rounds = 1;
        plan.pool_bytes = Some(3 * 8);
        let mut s = FaultSession::new(plan);
        let msgs = edges(12);
        let out = deliver_reliable(&mut s, CHANNEL_FORWARD, 1, 8, &msgs).unwrap();
        assert_eq!(out, msgs);
        assert!(s.stats.pool_exhausted > 0, "the tiny pool should have pushed back");
        assert_eq!(s.pool.used(), 0);
    }
}
