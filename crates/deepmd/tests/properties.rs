//! Property-based tests of the Deep Potential's physical symmetries — the
//! invariances the paper's Fig. 1 architecture preserves by construction
//! (translation, rotation, permutation) plus smoothness at the cutoff.

use proptest::prelude::*;

use deepmd::config::DeepPotConfig;
use deepmd::descriptor::smooth;
use deepmd::model::DeepPotModel;
use minimd::atoms::{copper_species, Atoms};
use minimd::neighbor::{ListKind, NeighborList};
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;

fn model() -> DeepPotModel {
    DeepPotModel::new(DeepPotConfig::tiny(1, 5.0))
}

fn cluster_energy(model: &DeepPotModel, pts: &[[f64; 3]]) -> f64 {
    let bx = SimBox::cubic(80.0);
    let mut atoms = Atoms::new(copper_species());
    for (k, p) in pts.iter().enumerate() {
        atoms.push_local(
            k as u64 + 1,
            0,
            Vec3::new(p[0] + 40.0, p[1] + 40.0, p[2] + 40.0),
            Vec3::ZERO,
        );
    }
    let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
    nl.build(&atoms, &bx);
    model.energy(&atoms, &nl, &bx)
}

fn small_cluster() -> impl Strategy<Value = Vec<[f64; 3]>> {
    proptest::collection::vec(
        ((-3.0f64..3.0), (-3.0f64..3.0), (-3.0f64..3.0)).prop_map(|(x, y, z)| [x, y, z]),
        2..6,
    )
    .prop_filter("no overlapping atoms", |pts| {
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d2: f64 =
                    (0..3).map(|k| (pts[i][k] - pts[j][k]) * (pts[i][k] - pts[j][k])).sum();
                if d2 < 0.49 {
                    return false;
                }
            }
        }
        true
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// E(x + t) = E(x) for any rigid translation.
    #[test]
    fn energy_translation_invariant(
        pts in small_cluster(),
        tx in -8.0f64..8.0, ty in -8.0f64..8.0, tz in -8.0f64..8.0,
    ) {
        let m = model();
        let e1 = cluster_energy(&m, &pts);
        let shifted: Vec<[f64; 3]> =
            pts.iter().map(|p| [p[0] + tx, p[1] + ty, p[2] + tz]).collect();
        let e2 = cluster_energy(&m, &shifted);
        prop_assert!((e1 - e2).abs() < 1e-9, "{e1} vs {e2}");
    }

    /// E(R·x) = E(x) for any rotation about z then x.
    #[test]
    fn energy_rotation_invariant(
        pts in small_cluster(),
        alpha in 0.0f64..std::f64::consts::TAU,
        beta in 0.0f64..std::f64::consts::TAU,
    ) {
        let m = model();
        let e1 = cluster_energy(&m, &pts);
        let (ca, sa) = (alpha.cos(), alpha.sin());
        let (cb, sb) = (beta.cos(), beta.sin());
        let rotated: Vec<[f64; 3]> = pts
            .iter()
            .map(|p| {
                let (x, y, z) = (p[0], p[1], p[2]);
                let (x1, y1, z1) = (ca * x - sa * y, sa * x + ca * y, z);
                [x1, cb * y1 - sb * z1, sb * y1 + cb * z1]
            })
            .collect();
        let e2 = cluster_energy(&m, &rotated);
        prop_assert!((e1 - e2).abs() < 1e-8, "{e1} vs {e2}");
    }

    /// E(π(x)) = E(x) for any permutation of same-species atoms.
    #[test]
    fn energy_permutation_invariant(pts in small_cluster(), rot in 0usize..5) {
        let m = model();
        let e1 = cluster_energy(&m, &pts);
        let mut permuted = pts.clone();
        permuted.rotate_left(rot % pts.len());
        let e2 = cluster_energy(&m, &permuted);
        prop_assert!((e1 - e2).abs() < 1e-10);
    }

    /// Atoms beyond the cutoff contribute exactly nothing.
    #[test]
    fn cutoff_locality(pts in small_cluster(), far in 12.0f64..30.0) {
        let m = model();
        let e1 = cluster_energy(&m, &pts);
        let mut with_far = pts.clone();
        with_far.push([far, far, 0.0]); // > rcut from every cluster atom
        let e2 = cluster_energy(&m, &with_far);
        // The far atom adds its own (isolated-atom) energy but must not
        // change the cluster's interaction: E2 − E1 equals the single-atom
        // energy, independent of the cluster.
        let e_single = cluster_energy(&m, &[[0.0, 0.0, 0.0]]);
        prop_assert!((e2 - e1 - e_single).abs() < 1e-9, "leakage {}", e2 - e1 - e_single);
    }

    /// The switching function is within [0, 1/r], continuous, and zero past
    /// the cutoff.
    #[test]
    fn smooth_bounds(r in 0.05f64..12.0) {
        let (s, _) = smooth(r, 0.5, 6.0);
        if r >= 6.0 {
            prop_assert_eq!(s, 0.0);
        } else {
            prop_assert!(s >= 0.0 && s <= 1.0 / r + 1e-12, "s({r}) = {s}");
        }
    }

    /// Forces sum to zero (translation invariance ⇒ momentum conservation)
    /// for any configuration.
    #[test]
    fn forces_sum_to_zero(pts in small_cluster()) {
        let m = model();
        let bx = SimBox::cubic(80.0);
        let mut atoms = Atoms::new(copper_species());
        for (k, p) in pts.iter().enumerate() {
            atoms.push_local(k as u64 + 1, 0, Vec3::new(p[0] + 40.0, p[1] + 40.0, p[2] + 40.0), Vec3::ZERO);
        }
        let mut nl = NeighborList::new(m.config.rcut, 0.5, ListKind::Full);
        nl.build(&atoms, &bx);
        let mut forces = vec![Vec3::ZERO; atoms.len()];
        m.energy_forces(&atoms, &nl, &bx, &mut forces);
        let net = forces.iter().fold(Vec3::ZERO, |a, &f| a + f);
        prop_assert!(net.norm() < 1e-9, "net {net:?}");
    }
}
