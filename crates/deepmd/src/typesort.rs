//! Type-sorted environment matrices (paper §III-B1, second optimization).
//!
//! The original DeePMD-kit stores the environment matrix of a multi-species
//! system interleaved; evaluating the per-neighbour-type embedding nets then
//! requires slicing out each species and concatenating results back —
//! "multiple matrix slicing and concatenation operations, leading to
//! excessive memory copying". The optimized code pre-classifies the
//! environment by neighbour species so each embedding batch is a contiguous
//! range and no copies happen.
//!
//! Both layouts are implemented with copy accounting, so the computation
//! optimization experiments can quantify what the reorganization saves, and
//! a test pins that the physics is unchanged (the descriptor is permutation
//! invariant by construction).

use crate::descriptor::Environment;

/// Memory-copy accounting for one environment-processing pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopyStats {
    /// Number of slice/concat copy operations performed.
    pub copy_ops: u64,
    /// Total bytes moved by those copies.
    pub bytes_copied: u64,
}

/// Sort an environment's entries by neighbour species (stable), returning
/// the per-type contiguous ranges. After this, per-type embedding batches
/// need zero copies.
pub fn sort_by_type(env: &mut Environment, ntypes: usize) -> Vec<std::ops::Range<usize>> {
    env.entries.sort_by_key(|e| e.typ);
    let mut ranges = Vec::with_capacity(ntypes);
    let mut start = 0;
    for t in 0..ntypes as u32 {
        let end = start + env.entries[start..].iter().take_while(|e| e.typ == t).count();
        ranges.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, env.entries.len(), "entries with out-of-range types");
    ranges
}

/// Emulate the baseline slice-and-concat handling of an *interleaved*
/// environment: for each species, gather its entries into a temporary
/// (slice), run the embedding, and scatter results back (concat).
/// Returns the entries grouped per type **as copies**, plus the stats.
///
/// `entry_bytes` is the per-entry payload size (the baseline copies the
/// generalized coordinates plus intermediate features).
pub fn slice_concat_layout(
    env: &Environment,
    ntypes: usize,
    entry_bytes: usize,
) -> (Vec<Vec<usize>>, CopyStats) {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); ntypes];
    let mut stats = CopyStats::default();
    for (k, e) in env.entries.iter().enumerate() {
        groups[e.typ as usize].push(k);
    }
    for g in &groups {
        if g.is_empty() {
            continue;
        }
        // One gather (slice) and one scatter (concat) per species present.
        stats.copy_ops += 2;
        stats.bytes_copied += 2 * (g.len() * entry_bytes) as u64;
    }
    (groups, stats)
}

/// Copy cost of the type-sorted layout for the same work: zero steady-state
/// copies (the sort happens once per neighbour-list rebuild, not per step).
pub fn sorted_layout_stats() -> CopyStats {
    CopyStats::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepPotConfig;
    use crate::descriptor::build_environments;
    use crate::model::DeepPotModel;
    use minimd::lattice::water_box;
    use minimd::neighbor::{ListKind, NeighborList};

    #[test]
    fn ranges_partition_the_environment() {
        let (bx, atoms) = water_box(3, 3, 3, 21);
        let mut nl = NeighborList::new(5.0, 0.5, ListKind::Full);
        nl.build(&atoms, &bx);
        let mut envs = build_environments(&atoms, &nl, &bx, 0.5, 5.0);
        for env in &mut envs {
            let total = env.entries.len();
            let ranges = sort_by_type(env, 2);
            assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), total);
            // Within each range every entry has the right type.
            for (t, r) in ranges.iter().enumerate() {
                assert!(env.entries[r.clone()].iter().all(|e| e.typ == t as u32));
            }
        }
    }

    #[test]
    fn sorting_does_not_change_the_energy() {
        // The descriptor is a sum over neighbours, so reordering them must
        // leave E bit-for-bit unchanged up to float addition order; compare
        // with a tolerance at the rounding scale.
        let model = DeepPotModel::new(DeepPotConfig::tiny(2, 5.0));
        let (bx, atoms) = water_box(3, 3, 3, 22);
        let mut nl = NeighborList::new(5.0, 0.5, ListKind::Full);
        nl.build(&atoms, &bx);
        let e_ref = model.energy(&atoms, &nl, &bx);

        // Re-evaluate with sorted environments by sorting the neighbour list
        // entries per atom (types are a function of index, so sorting the
        // list by neighbour type reorders the environment).
        let mut nl_sorted = nl.clone();
        for i in 0..atoms.nlocal {
            let range = nl_sorted.offsets[i]..nl_sorted.offsets[i + 1];
            nl_sorted.list[range].sort_by_key(|&j| atoms.typ[j as usize]);
        }
        let e_sorted = model.energy(&atoms, &nl_sorted, &bx);
        assert!((e_ref - e_sorted).abs() < 1e-9, "{e_ref} vs {e_sorted}");
    }

    #[test]
    fn baseline_copies_scale_with_neighbours_and_sorted_is_free() {
        let (bx, atoms) = water_box(3, 3, 3, 23);
        let mut nl = NeighborList::new(5.0, 0.5, ListKind::Full);
        nl.build(&atoms, &bx);
        let envs = build_environments(&atoms, &nl, &bx, 0.5, 5.0);
        let mut total = CopyStats::default();
        for env in &envs {
            let (_, stats) = slice_concat_layout(env, 2, 4 * 8);
            total.copy_ops += stats.copy_ops;
            total.bytes_copied += stats.bytes_copied;
        }
        assert!(total.copy_ops > 0);
        // Every neighbour entry is moved twice (gather + scatter).
        let total_entries: usize = envs.iter().map(|e| e.entries.len()).sum();
        assert_eq!(total.bytes_copied, 2 * (total_entries * 32) as u64);
        assert_eq!(sorted_layout_stats(), CopyStats::default());
    }
}
