//! DP Compress: tabulated embedding nets (paper §II-A, ref [42]).
//!
//! Guo et al. replace the embedding-net MLP with a piecewise fifth-order
//! polynomial table over the scalar input `s(r)`, removing the dominant
//! GEMMs from descriptor construction. We reproduce that: each feature of
//! each embedding net is fitted per interval by a quintic Hermite matched to
//! value, first and second derivative at both knots (the second derivative
//! is sampled by central differences of the exact forward-mode first
//! derivative).

use serde::{Deserialize, Serialize};

use crate::embedding::EmbeddingNet;

/// A compressed (tabulated) embedding net.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompressedEmbedding {
    /// Lower edge of the table.
    pub s_min: f64,
    /// Upper edge of the table.
    pub s_max: f64,
    /// Number of intervals.
    pub n_intervals: usize,
    /// Feature width M₁.
    pub m1: usize,
    /// Coefficients: `[interval][feature][6]`, ascending powers of the local
    /// coordinate `u ∈ [0, 1]`.
    coeffs: Vec<Vec<[f64; 6]>>,
}

/// Solve a 6×6 linear system by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // elimination indexes two rows of `a` at once
fn solve6(mut a: [[f64; 6]; 6], mut b: [f64; 6]) -> [f64; 6] {
    for col in 0..6 {
        let piv = (col..6).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap()).unwrap();
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        assert!(d.abs() > 1e-14, "singular Hermite system");
        for r in (col + 1)..6 {
            let f = a[r][col] / d;
            for c in col..6 {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = [0.0; 6];
    for col in (0..6).rev() {
        let mut acc = b[col];
        for c in (col + 1)..6 {
            acc -= a[col][c] * x[c];
        }
        x[col] = acc / a[col][col];
    }
    x
}

impl CompressedEmbedding {
    /// Tabulate `net` over `[s_min, s_max]` with `n_intervals` pieces.
    pub fn build(net: &EmbeddingNet, s_min: f64, s_max: f64, n_intervals: usize) -> Self {
        assert!(s_max > s_min && n_intervals > 0);
        let m1 = net.m1();
        let dx = (s_max - s_min) / n_intervals as f64;
        let hs = 1e-5 * dx.max(1e-6);

        // Sample value, first derivative (exact forward mode) and second
        // derivative (central difference of the first) at every knot.
        let knots = n_intervals + 1;
        let mut val = vec![vec![0.0; m1]; knots];
        let mut d1 = vec![vec![0.0; m1]; knots];
        let mut d2 = vec![vec![0.0; m1]; knots];
        for k in 0..knots {
            let s = s_min + k as f64 * dx;
            let (v, g) = net.forward_with_grad(s);
            let (_, gp) = net.forward_with_grad(s + hs);
            let (_, gm) = net.forward_with_grad(s - hs);
            for f in 0..m1 {
                val[k][f] = v[f];
                d1[k][f] = g[f];
                d2[k][f] = (gp[f] - gm[f]) / (2.0 * hs);
            }
        }

        // Quintic Hermite per interval in the local coordinate u = (s−s0)/dx:
        // p(u) = Σ c_k u^k matching p, p', p'' at u = 0 and u = 1, with
        // derivatives scaled by dx (p' in u-space = dx · dp/ds).
        let mut coeffs = Vec::with_capacity(n_intervals);
        for i in 0..n_intervals {
            let mut per_feature = Vec::with_capacity(m1);
            for f in 0..m1 {
                // Rows: p(0), p'(0), p''(0), p(1), p'(1), p''(1).
                let a = [
                    [1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                    [0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
                    [0.0, 0.0, 2.0, 0.0, 0.0, 0.0],
                    [1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
                    [0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
                    [0.0, 0.0, 2.0, 6.0, 12.0, 20.0],
                ];
                let b = [
                    val[i][f],
                    d1[i][f] * dx,
                    d2[i][f] * dx * dx,
                    val[i + 1][f],
                    d1[i + 1][f] * dx,
                    d2[i + 1][f] * dx * dx,
                ];
                per_feature.push(solve6(a, b));
            }
            coeffs.push(per_feature);
        }
        CompressedEmbedding { s_min, s_max, n_intervals, m1, coeffs }
    }

    /// Evaluate features and their s-derivative at `s` (clamped to the
    /// table range — out-of-range inputs indicate a bad table domain).
    /// Convenience wrapper; the hot loop uses
    /// [`forward_with_grad_into`](Self::forward_with_grad_into).
    pub fn forward_with_grad(&self, s: f64) -> (Vec<f64>, Vec<f64>) {
        let mut g = Vec::default();
        let mut dg = Vec::default();
        self.forward_with_grad_into(s, &mut g, &mut dg);
        (g, dg)
    }

    /// Evaluate features and their s-derivative into caller-owned buffers.
    /// With `g` and `dg` reused across calls, the lookup is allocation-free
    /// after the first-call growth.
    pub fn forward_with_grad_into(&self, s: f64, g: &mut Vec<f64>, dg: &mut Vec<f64>) {
        let dx = (self.s_max - self.s_min) / self.n_intervals as f64;
        let s_cl = s.clamp(self.s_min, self.s_max);
        let mut idx = ((s_cl - self.s_min) / dx) as usize;
        if idx >= self.n_intervals {
            idx = self.n_intervals - 1;
        }
        let u = (s_cl - (self.s_min + idx as f64 * dx)) / dx;
        g.clear();
        g.resize(self.m1, 0.0);
        dg.clear();
        dg.resize(self.m1, 0.0);
        for f in 0..self.m1 {
            let c = &self.coeffs[idx][f];
            // Horner for p(u) and p'(u).
            let mut p = c[5];
            let mut dp = 5.0 * c[5];
            for k in (1..5).rev() {
                p = p * u + c[k];
                dp = dp * u + k as f64 * c[k];
            }
            p = p * u + c[0];
            g[f] = p;
            dg[f] = dp / dx; // back to d/ds
        }
    }

    /// Table memory footprint in bytes (for the perf model: compressed
    /// embedding trades GEMMs for table lookups).
    pub fn table_bytes(&self) -> usize {
        self.n_intervals * self.m1 * 6 * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_network_to_high_accuracy() {
        let net = EmbeddingNet::new(&[4, 8], 11);
        let table = CompressedEmbedding::build(&net, 0.0, 2.0, 64);
        let mut worst_v: f64 = 0.0;
        let mut worst_d: f64 = 0.0;
        let mut s = 0.01;
        while s < 1.99 {
            let (v_ref, d_ref) = net.forward_with_grad(s);
            let (v, d) = table.forward_with_grad(s);
            for f in 0..net.m1() {
                worst_v = worst_v.max((v[f] - v_ref[f]).abs());
                worst_d = worst_d.max((d[f] - d_ref[f]).abs());
            }
            s += 0.0173;
        }
        assert!(worst_v < 1e-8, "value error {worst_v}");
        assert!(worst_d < 1e-5, "derivative error {worst_d}");
    }

    #[test]
    fn exact_at_knots() {
        let net = EmbeddingNet::new(&[4, 8], 12);
        let table = CompressedEmbedding::build(&net, 0.0, 1.0, 16);
        for k in 0..=16 {
            let s = k as f64 / 16.0;
            let (v_ref, _) = net.forward_with_grad(s);
            let (v, _) = table.forward_with_grad(s);
            for f in 0..net.m1() {
                assert!((v[f] - v_ref[f]).abs() < 1e-10, "knot {k} feature {f}");
            }
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let net = EmbeddingNet::new(&[4], 13);
        let table = CompressedEmbedding::build(&net, 0.0, 1.0, 8);
        let (lo, _) = table.forward_with_grad(-5.0);
        let (at0, _) = table.forward_with_grad(0.0);
        assert_eq!(lo, at0);
    }

    #[test]
    fn derivative_is_continuous_across_interval_boundaries() {
        let net = EmbeddingNet::new(&[4, 8], 14);
        let table = CompressedEmbedding::build(&net, 0.0, 2.0, 32);
        let knot = 2.0 * 7.0 / 32.0;
        let (_, d_below) = table.forward_with_grad(knot - 1e-9);
        let (_, d_above) = table.forward_with_grad(knot + 1e-9);
        for f in 0..net.m1() {
            assert!((d_below[f] - d_above[f]).abs() < 1e-6, "feature {f}");
        }
    }

    #[test]
    fn table_bytes_accounting() {
        let net = EmbeddingNet::new(&[4, 8], 15);
        let table = CompressedEmbedding::build(&net, 0.0, 1.0, 10);
        assert_eq!(table.table_bytes(), 10 * 8 * 6 * 8);
    }
}
