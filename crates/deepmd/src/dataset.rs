//! Training-data generation.
//!
//! The real DeePMD-kit models are trained on DFT (AIMD) energies and forces.
//! Per the substitution rule (no quantum-chemistry code, no datasets), the
//! labels here come from `minimd`'s analytic many-body reference potentials:
//! Sutton–Chen EAM for copper, the flexible water surrogate for H₂O. The
//! training problem retains the same structure — learn a many-body PES from
//! labelled configurations — which is what the accuracy experiments
//! (Table II, Fig. 6) exercise.

use minimd::atoms::Atoms;
use minimd::integrate::init_velocities;
use minimd::lattice::{fcc_lattice, water_box};
use minimd::neighbor::{ListKind, NeighborList};
use minimd::potential::eam::SuttonChen;
use minimd::potential::water::WaterSurrogate;
use minimd::potential::Potential;
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One labelled configuration.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The periodic box.
    pub bx: SimBox,
    /// Atoms (positions + types; velocities unused).
    pub atoms: Atoms,
    /// Reference total energy, eV.
    pub energy: f64,
    /// Reference forces, eV/Å.
    pub forces: Vec<Vec3>,
}

/// Label a configuration with a reference potential.
pub fn label(mut atoms: Atoms, bx: SimBox, pot: &dyn Potential) -> Frame {
    let mut nl = NeighborList::new(pot.cutoff(), 1.0, ListKind::Full);
    nl.build(&atoms, &bx);
    atoms.zero_forces();
    let out = pot.compute(&mut atoms, &nl, &bx);
    let forces = atoms.force.clone();
    Frame { bx, atoms, energy: out.energy, forces }
}

/// Random-perturbation frames of FCC copper: lattice positions jittered by
/// up to `amp` Å plus a small random isotropic strain. Labels from
/// Sutton–Chen EAM at the cutoff the paper uses for Cu (8 Å).
pub fn copper_frames(n_frames: usize, cells: usize, amp: f64, seed: u64) -> Vec<Frame> {
    let pot = SuttonChen::copper(8.0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_frames)
        .map(|_| {
            let strain = 1.0 + rng.random_range(-0.02..0.02);
            let (bx, mut atoms) = fcc_lattice(cells, cells, cells, minimd::units::CU_LATTICE * strain);
            for p in &mut atoms.pos {
                *p = bx.wrap(
                    *p + Vec3::new(
                        rng.random_range(-amp..amp),
                        rng.random_range(-amp..amp),
                        rng.random_range(-amp..amp),
                    ),
                );
            }
            label(atoms, bx, &pot)
        })
        .collect()
}

/// Water frames: lattice-built boxes with different seeds, optionally
/// pre-equilibrated by a short thermostatted MD run (more liquid-like
/// configurations, better-conditioned labels).
pub fn water_frames(n_frames: usize, cells: usize, equil_steps: u64, seed: u64) -> Vec<Frame> {
    let pot = WaterSurrogate::standard(6.0);
    (0..n_frames)
        .map(|k| {
            let (bx, mut atoms) = water_box(cells, cells, cells, seed.wrapping_add(k as u64 * 7919));
            if equil_steps > 0 {
                use minimd::integrate::{Thermostat, VelocityVerlet};
                use minimd::sim::Simulation;
                init_velocities(&mut atoms, 300.0, seed ^ k as u64);
                let mut vv = VelocityVerlet::new(0.5 * minimd::units::FEMTOSECOND);
                vv.thermostat = Thermostat::Rescale { t_target: 300.0 };
                let mut sim =
                    Simulation::new(bx, atoms, Box::new(WaterSurrogate::standard(6.0)), vv, 1.0, 50);
                sim.run(equil_steps);
                return label(sim.atoms, sim.bx, &pot);
            }
            label(atoms, bx, &pot)
        })
        .collect()
}

/// Split frames into (train, validation) at `train_fraction`.
pub fn split(frames: Vec<Frame>, train_fraction: f64) -> (Vec<Frame>, Vec<Frame>) {
    assert!((0.0..=1.0).contains(&train_fraction));
    let n_train = ((frames.len() as f64) * train_fraction).round() as usize;
    let mut frames = frames;
    let val = frames.split_off(n_train.min(frames.len()));
    (frames, val)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copper_frames_are_labelled_and_distinct() {
        let frames = copper_frames(3, 3, 0.1, 1);
        assert_eq!(frames.len(), 3);
        for f in &frames {
            assert_eq!(f.atoms.nlocal, 4 * 27);
            assert_eq!(f.forces.len(), f.atoms.len());
            assert!(f.energy < 0.0, "cohesive reference energy");
            // Perturbed lattice ⇒ non-zero forces.
            assert!(f.forces.iter().any(|fr| fr.norm() > 1e-3));
        }
        assert_ne!(frames[0].energy, frames[1].energy);
    }

    #[test]
    fn water_frames_have_three_site_molecules() {
        let frames = water_frames(2, 2, 0, 5);
        for f in &frames {
            assert_eq!(f.atoms.nlocal % 3, 0);
            assert!(f.energy.is_finite());
        }
    }

    #[test]
    fn split_respects_fraction() {
        let frames = copper_frames(4, 2, 0.05, 2);
        let (tr, va) = split(frames, 0.75);
        assert_eq!(tr.len(), 3);
        assert_eq!(va.len(), 1);
    }
}
