//! Batched multi-replica inference (the serving path).
//!
//! [`DpEngine::energy_forces_batched`] evaluates R independent systems
//! ("jobs" — one per replica of the batch scheduler in `dpmd-serve`) through
//! one engine, fusing work that the solo path pays per call:
//!
//! * the **embedding pass** stacks every (job, atom, neighbour) entry of the
//!   same neighbour species into one matrix and runs each layer's value and
//!   tangent matvecs as [`nnet::gemm`] batched calls, with one fused
//!   transcendental per activation ([`nnet::activation::Activation::value_grad_f32`]) instead
//!   of the solo path's two;
//! * the **fitting pass** stacks every (job, atom) descriptor row of the same
//!   central species into one matrix and runs each layer (forward and
//!   backward) as a single [`nnet::gemm`] batched call — the paper's
//!   type-sorted batching, applied across replicas.
//!
//! The hard correctness bar is **bitwise determinism**: batching changes
//! *when* GEMMs run, never *what* they compute. Three properties make that
//! hold, each enforced by a test:
//!
//! 1. every NN kernel produces output rows that depend only on the matching
//!    input row, folded ascending-k from a zero accumulator with one
//!    rounding per add (`nnet::gemm` module notes) — so stacking rows
//!    across replicas is invisible, and the solo path's *bias-seeded*
//!    accumulation is reproduced exactly by augmenting each stacked row
//!    with a leading 1 against `[bias ; W]` (`0 + 1·b` is `b`, bit for
//!    bit, for every finite non-zero bias);
//! 2. activations use [`nnet::activation::Activation::value_grad_f32`], whose contract is
//!    bitwise equality with the solo path's separate `apply_f32` +
//!    `derivative` calls;
//! 3. all order-dependent f64 accumulations (per-atom energy sums, force
//!    scatter, virial) run per job in exactly the solo pass structure:
//!    [`dpmd_threads::atom_chunks`] chunks merged in chunk order.
//!
//! `tests/batch_determinism.rs` checks the end-to-end consequence: replica
//! trajectories bit-identical solo vs. batched at any batch size and thread
//! count.

use dpmd_obs::clock::wall_now;

use dpmd_threads::atom_chunks;
use minimd::atoms::Atoms;
use minimd::neighbor::NeighborList;
use minimd::potential::{ForcePhases, PotentialOutput};
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;
use nnet::f16::F16;
use nnet::gemm;
use nnet::layers::Resnet;
use nnet::precision::Precision;
use nnet::stats::PrecClass;

use crate::descriptor::build_environments_on;
use crate::engine::{AtomEmbed32, DpEngine, Fit32};

/// One replica's force evaluation request: borrowed system state plus the
/// (caller-zeroed) force buffer to accumulate into.
pub struct BatchJob<'a> {
    /// Atom storage (positions/types read; forces are NOT written here —
    /// they go to [`forces`](Self::forces) so the caller can hold many
    /// simulations immutably while the batch runs).
    pub atoms: &'a Atoms,
    /// The replica's current neighbour list.
    pub nl: &'a NeighborList,
    /// The replica's box.
    pub bx: &'a SimBox,
    /// Output force buffer, `atoms.len()` long, zeroed by the caller.
    pub forces: &'a mut [Vec3],
}

/// What a batched evaluation did, for metrics and the bench.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchEvalStats {
    /// Jobs evaluated.
    pub jobs: usize,
    /// Batched GEMM calls issued by the fused embedding + fitting passes.
    pub fused_gemms: u64,
    /// Total rows stacked into those calls (rows ÷ calls = mean occupancy).
    pub fused_rows: u64,
    /// Jobs routed to the solo path (the `Double` reference path has no
    /// f32 batching and falls back per job).
    pub solo_fallbacks: u64,
    /// Aggregate phase breakdown across the whole batch (per-replica wall
    /// time is not separable once the passes are fused).
    pub phases: ForcePhases,
}

/// Reusable buffers for [`DpEngine::energy_forces_batched_with`]. One
/// workspace amortizes the multi-hundred-kilobyte stacked intermediates of
/// the fused passes across scheduler rounds: without it, every round pays
/// allocator round-trips — and, for the larger buffers, fresh `mmap` pages —
/// for memory whose shape barely changes step to step.
///
/// Reuse is bitwise-invisible by construction: a pooled buffer is handed out
/// zero-filled ([`take32`](Self)'s `clear` + `resize`), exactly like the
/// `vec![0.0; n]` it replaces.
#[derive(Default)]
pub struct BatchWorkspace {
    pool32: Vec<Vec<f32>>,
    pool64: Vec<Vec<f64>>,
    pool16: Vec<Vec<F16>>,
    embeds: Vec<Vec<AtomEmbed32>>,
    locs: Vec<(u32, u32, u32)>,
    row_of: Vec<(usize, usize)>,
}

impl BatchWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn take32(&mut self, n: usize) -> Vec<f32> {
        let mut v = self.pool32.pop().unwrap_or_default();
        v.clear();
        v.resize(n, 0.0);
        v
    }

    fn put32(&mut self, v: Vec<f32>) {
        if v.capacity() > 0 {
            self.pool32.push(v);
        }
    }

    fn take64(&mut self, n: usize) -> Vec<f64> {
        let mut v = self.pool64.pop().unwrap_or_default();
        v.clear();
        v.resize(n, 0.0);
        v
    }

    fn put64(&mut self, v: Vec<f64>) {
        if v.capacity() > 0 {
            self.pool64.push(v);
        }
    }

    fn take16(&mut self, n: usize) -> Vec<F16> {
        let mut v = self.pool16.pop().unwrap_or_default();
        v.clear();
        v.resize(n, F16::from_f32(0.0));
        v
    }

    fn put16(&mut self, v: Vec<F16>) {
        if v.capacity() > 0 {
            self.pool16.push(v);
        }
    }
}

/// Forward + backward of one fitting net over `rows` stacked descriptor
/// rows. Row `r` of the outputs is bitwise what `Fit32::energy_and_grad`
/// returns for row `r` alone: the batched GEMMs are row-independent and the
/// bias/activation/resnet ops replay the solo order per row.
fn fit_batched(
    fit: &Fit32,
    rows: usize,
    d_stacked: Vec<f32>,
    f16_first: bool,
    eng: &DpEngine,
    stats: &mut BatchEvalStats,
    ws: &mut BatchWorkspace,
) -> (Vec<f32>, Vec<f32>) {
    let tally = eng.obs.as_ref().map(|o| &o.gemm);
    let nl = fit.layers.len();
    let mut xs: Vec<Vec<f32>> = Vec::with_capacity(nl + 1); // dpmd-allow D7: per-batch tape of stacked layer activations, amortized over all rows
    xs.push(d_stacked);
    // Per-layer activation-derivative factors, kept from the forward pass
    // (`value_grad_f32` shares the transcendental) so the backward pass
    // does none — bitwise equal to the solo path's recomputation.
    let mut dfacs: Vec<Vec<f64>> = Vec::with_capacity(nl); // dpmd-allow D7: per-batch tape of activation-derivative factors, amortized over all rows
    for (li, (w, _, b, act, resnet, ind, outd)) in fit.layers.iter().enumerate() {
        let x = xs.last().unwrap();
        let mut pre = ws.take32(rows * outd);
        if li == 0 && f16_first {
            let mut x16 = ws.take16(x.len());
            for (d, &s) in x16.iter_mut().zip(x.iter()) {
                *d = F16::from_f32(s);
            }
            gemm::batched_nn_f16(rows, 1, *outd, *ind, &x16, &fit.w16_first, &mut pre);
            ws.put16(x16);
            if let Some(t) = tally {
                t.record(rows, *outd, *ind, PrecClass::F16);
            }
        } else {
            gemm::batched_nn_f32(rows, 1, *outd, *ind, x, w, &mut pre);
            if let Some(t) = tally {
                t.record(rows, *outd, *ind, PrecClass::F32);
            }
        }
        stats.fused_gemms += 1;
        stats.fused_rows += rows as u64;
        let mut out = ws.take32(rows * outd);
        let mut dfac = ws.take64(rows * outd);
        for r in 0..rows {
            let prer = &mut pre[r * outd..(r + 1) * outd];
            for (p, &bb) in prer.iter_mut().zip(b) {
                *p += bb;
            }
            let outr = &mut out[r * outd..(r + 1) * outd];
            let dfr = &mut dfac[r * outd..(r + 1) * outd];
            for ((o, d), &p) in outr.iter_mut().zip(dfr.iter_mut()).zip(prer.iter()) {
                let (v, df) = act.value_grad_f32(p);
                *o = v;
                *d = df;
            }
            match resnet {
                Resnet::None => {}
                Resnet::Identity => {
                    let xr = &x[r * ind..(r + 1) * ind];
                    for i in 0..*ind {
                        outr[i] += xr[i];
                    }
                }
                Resnet::Doubling => {
                    let xr = &x[r * ind..(r + 1) * ind];
                    for i in 0..*ind {
                        outr[i] += xr[i];
                        outr[i + ind] += xr[i];
                    }
                }
            }
        }
        ws.put32(pre);
        dfacs.push(dfac);
        xs.push(out);
    }
    // The last layer is 1-wide: its activations are the per-row energies.
    let energies = xs.pop().unwrap();

    // Backward with unit cotangent per row.
    let mut g = ws.take32(rows);
    g.fill(1.0);
    for (li, (_, wt, _, _act, resnet, ind, outd)) in fit.layers.iter().enumerate().rev() {
        let dfac = &dfacs[li];
        let mut dpre = ws.take32(rows * outd);
        for r in 0..rows {
            for o in 0..*outd {
                dpre[r * outd + o] = g[r * outd + o] * (dfac[r * outd + o] as f32);
            }
        }
        let mut dx = ws.take32(rows * ind);
        if li == 0 && f16_first {
            let mut dpre16 = ws.take16(dpre.len());
            for (d, &s) in dpre16.iter_mut().zip(dpre.iter()) {
                *d = F16::from_f32(s);
            }
            gemm::batched_nn_f16(rows, 1, *ind, *outd, &dpre16, &fit.wt16_first, &mut dx);
            ws.put16(dpre16);
            if let Some(t) = tally {
                t.record(rows, *ind, *outd, PrecClass::F16);
            }
        } else {
            gemm::batched_nn_f32(rows, 1, *ind, *outd, &dpre, wt, &mut dx);
            if let Some(t) = tally {
                t.record(rows, *ind, *outd, PrecClass::F32);
            }
        }
        stats.fused_gemms += 1;
        stats.fused_rows += rows as u64;
        match resnet {
            Resnet::None => {}
            Resnet::Identity => {
                for r in 0..rows {
                    for i in 0..*ind {
                        dx[r * ind + i] += g[r * outd + i];
                    }
                }
            }
            Resnet::Doubling => {
                for r in 0..rows {
                    for i in 0..*ind {
                        dx[r * ind + i] += g[r * outd + i] + g[r * outd + i + ind];
                    }
                }
            }
        }
        ws.put32(std::mem::replace(&mut g, dx));
        ws.put32(dpre);
    }
    for v in xs {
        ws.put32(v);
    }
    for v in dfacs {
        ws.put64(v);
    }
    (energies, g)
}

impl DpEngine {
    /// Evaluate many independent systems through one engine, fusing the
    /// embedding and fitting passes across jobs (see module docs). Per job,
    /// energies/forces/virials are **bitwise identical** to a solo
    /// [`energy_forces`](Self::energy_forces) call, at any batch size and
    /// pool width. Returns one [`PotentialOutput`] per job (in job order)
    /// plus fusion statistics; the aggregate phase breakdown also lands in
    /// [`last_phases`](Self::last_phases).
    pub fn energy_forces_batched(
        &self,
        jobs: &mut [BatchJob<'_>],
    ) -> (Vec<PotentialOutput>, BatchEvalStats) {
        self.energy_forces_batched_with(jobs, &mut BatchWorkspace::new())
    }

    /// As [`energy_forces_batched`](Self::energy_forces_batched), but reusing
    /// the caller's [`BatchWorkspace`]. Steady-state callers (the batch
    /// scheduler evaluates every replica every step) keep one workspace alive
    /// so the stacked intermediates — hundreds of kilobytes per round at
    /// production sizes — are allocated once instead of per call. Results are
    /// bitwise independent of the workspace's history.
    pub fn energy_forces_batched_with(
        &self,
        jobs: &mut [BatchJob<'_>],
        ws: &mut BatchWorkspace,
    ) -> (Vec<PotentialOutput>, BatchEvalStats) {
        let mut stats = BatchEvalStats { jobs: jobs.len(), ..Default::default() };
        if let Some(o) = &self.obs {
            let idx = match self.precision {
                Precision::Double => 0,
                Precision::Mix32 => 1,
                Precision::Mix16 => 2,
            };
            for _ in 0..jobs.len() {
                o.evals[idx].inc();
            }
        }

        // The Double path is the f64 reference implementation; it has no
        // batched form, so each job runs solo (still one shared engine).
        if self.precision == Precision::Double {
            let pool = self.pool();
            let mut outs = Vec::with_capacity(jobs.len()); // dpmd-allow D7: O(jobs) staging per batched call
            let mut phases = ForcePhases::default();
            for job in jobs.iter_mut() {
                let (out, p) = self.model.energy_forces_on(pool, job.atoms, job.nl, job.bx, job.forces);
                phases.descriptor_s += p.descriptor_s;
                phases.embedding_s += p.embedding_s;
                phases.fitting_s += p.fitting_s;
                phases.reduction_s += p.reduction_s;
                stats.solo_fallbacks += 1;
                outs.push(out);
            }
            stats.phases = phases;
            *self.last_phases.lock().unwrap() = Some(phases);
            return (outs, stats);
        }

        let f16_first = self.precision == Precision::Mix16;
        let cfg = &self.model.config;
        let m1 = cfg.m1();
        let m2 = cfg.m2;
        let inv_nm = 1.0f32 / cfg.nmax as f32;
        let pool = self.pool();
        let mut phases = ForcePhases::default();
        let tally = self.obs.as_ref().map(|o| &o.gemm);

        // Pass 1: descriptors, per job (chunk-parallel inside each call).
        let t0 = wall_now();
        let envs: Vec<Vec<crate::descriptor::Environment>> = jobs
            .iter()
            .map(|j| build_environments_on(pool, j.atoms, j.nl, j.bx, cfg.rcut_smth, cfg.rcut))
            .collect(); // dpmd-allow D7: O(jobs) environment staging per batched call
        phases.descriptor_s = t0.elapsed().as_secs_f64();

        // Pass 2: embedding, type-sorted stacked GEMMs across every
        // (job, atom, neighbour) entry. Each entry's value chain is a row
        // `[1, v…]` and its tangent chain a row `[0, t…]`, both multiplied
        // against the augmented weights `[bias ; W]`: the kernel's
        // zero-seeded ascending-k fold then reproduces the solo path's
        // bias-seeded accumulation bit for bit (`0 + 1·b == b` for finite
        // non-zero biases — see module docs). Each result is pure per
        // entry, so the grouping cannot change bits. The order-dependent
        // part — accumulating the T matrix — then replays per atom in
        // entry order, exactly as `embed_atom32` interleaves it.
        let t0 = wall_now();
        // Per-atom embedding buffers live in the workspace: every field is
        // either fully overwritten this round (`g`/`dg_ds` by the scatter,
        // `coords` by the T accumulation) or re-zeroed here (`t`, and the
        // zero-fill below covers all of them anyway), so reuse is invisible.
        let mut embeds = std::mem::take(&mut ws.embeds);
        embeds.resize_with(envs.len(), Vec::default);
        for (je, jm) in envs.iter().zip(embeds.iter_mut()) {
            jm.resize_with(je.len(), AtomEmbed32::default);
            for (env, am) in je.iter().zip(jm.iter_mut()) {
                let n = env.entries.len();
                am.g.clear();
                am.g.resize(n * m1, 0.0);
                am.dg_ds.clear();
                am.dg_ds.resize(n * m1, 0.0);
                am.t.clear();
                am.t.resize(m1 * 4, 0.0);
                am.coords.clear();
                am.coords.resize(n, [0.0f32; 4]);
            }
        }
        // Bound the stacked intermediates so they stay cache-sized; chunking
        // is bitwise-invisible because every row is independent.
        const EMB_CHUNK: usize = 4096;
        let mut locs = std::mem::take(&mut ws.locs);
        for (ty, emb_net) in self.emb32.iter().enumerate() {
            // Gather this species' entries across the whole batch, in
            // (job, atom, entry) order.
            locs.clear();
            let mut svals = ws.take32(0);
            for (ji, je) in envs.iter().enumerate() {
                for (ai, env) in je.iter().enumerate() {
                    for (k, e) in env.entries.iter().enumerate() {
                        if e.typ as usize == ty {
                            locs.push((ji as u32, ai as u32, k as u32));
                            svals.push(e.s as f32);
                        }
                    }
                }
            }
            if locs.is_empty() {
                ws.put32(svals);
                continue;
            }
            for (chunk_locs, chunk_s) in locs.chunks(EMB_CHUNK).zip(svals.chunks(EMB_CHUNK)) {
                let rows = chunk_locs.len();
                // Stacked value rows `[1, s]` and tangent rows `[0, 1]`,
                // augmented column first.
                let mut val = ws.take32(rows * 2);
                let mut tan = ws.take32(rows * 2);
                for (r, &s) in chunk_s.iter().enumerate() {
                    val[r * 2] = 1.0;
                    val[r * 2 + 1] = s;
                    tan[r * 2 + 1] = 1.0;
                }
                for ((_, _, act, resnet, ind, outd), baug) in emb_net.layers.iter().zip(&emb_net.aug) {
                    let (ind, outd) = (*ind, *outd);
                    let mut pre = ws.take32(rows * outd);
                    let mut dpre = ws.take32(rows * outd);
                    gemm::batched_nn_f32(rows, 1, outd, ind + 1, &val, baug, &mut pre);
                    gemm::batched_nn_f32(rows, 1, outd, ind + 1, &tan, baug, &mut dpre);
                    if let Some(t) = tally {
                        t.record(rows, outd, ind + 1, PrecClass::F32);
                        t.record(rows, outd, ind + 1, PrecClass::F32);
                    }
                    stats.fused_gemms += 2;
                    stats.fused_rows += 2 * rows as u64;
                    let mut val_out = ws.take32(rows * (outd + 1));
                    let mut tan_out = ws.take32(rows * (outd + 1));
                    for r in 0..rows {
                        let prer = &pre[r * outd..(r + 1) * outd];
                        let dprer = &dpre[r * outd..(r + 1) * outd];
                        let vo = &mut val_out[r * (outd + 1)..(r + 1) * (outd + 1)];
                        let to = &mut tan_out[r * (outd + 1)..(r + 1) * (outd + 1)];
                        vo[0] = 1.0;
                        for o in 0..outd {
                            let (v, dfac) = act.value_grad_f32(prer[o]);
                            vo[1 + o] = v;
                            to[1 + o] = (dfac as f32) * dprer[o];
                        }
                        let vi = &val[r * (ind + 1)..(r + 1) * (ind + 1)];
                        let ti = &tan[r * (ind + 1)..(r + 1) * (ind + 1)];
                        match resnet {
                            Resnet::None => {}
                            Resnet::Identity => {
                                for i in 0..ind {
                                    vo[1 + i] += vi[1 + i];
                                    to[1 + i] += ti[1 + i];
                                }
                            }
                            Resnet::Doubling => {
                                for i in 0..ind {
                                    vo[1 + i] += vi[1 + i];
                                    vo[1 + i + ind] += vi[1 + i];
                                    to[1 + i] += ti[1 + i];
                                    to[1 + i + ind] += ti[1 + i];
                                }
                            }
                        }
                    }
                    ws.put32(std::mem::replace(&mut val, val_out));
                    ws.put32(std::mem::replace(&mut tan, tan_out));
                    ws.put32(pre);
                    ws.put32(dpre);
                }
                // Scatter the final rows (stride m1+1; column 0 is the
                // augmentation) into the per-atom embedding buffers.
                for (r, &(ji, ai, k)) in chunk_locs.iter().enumerate() {
                    let am = &mut embeds[ji as usize][ai as usize];
                    let (k, off) = (k as usize, r * (m1 + 1) + 1);
                    am.g[k * m1..(k + 1) * m1].copy_from_slice(&val[off..off + m1]);
                    am.dg_ds[k * m1..(k + 1) * m1].copy_from_slice(&tan[off..off + m1]);
                }
                ws.put32(val);
                ws.put32(tan);
            }
            ws.put32(svals);
        }
        ws.locs = locs;
        for (je, jm) in envs.iter().zip(embeds.iter_mut()) {
            for (env, am) in je.iter().zip(jm.iter_mut()) {
                for (k, e) in env.entries.iter().enumerate() {
                    let c64 = e.coords();
                    let c = [c64[0] as f32, c64[1] as f32, c64[2] as f32, c64[3] as f32];
                    am.coords[k] = c;
                    for m in 0..m1 {
                        let gv = am.g[k * m1 + m];
                        for (cc, &cv) in c.iter().enumerate() {
                            am.t[m * 4 + cc] += gv * cv * inv_nm;
                        }
                    }
                }
            }
        }
        phases.embedding_s = t0.elapsed().as_secs_f64();

        // Pass 3: fitting, stacked by central species across all jobs. The
        // descriptor row D is pure per atom (computed here in the solo loop
        // order); the net forward/backward then runs once per species as
        // layer-wise batched GEMMs over all stacked rows.
        let t0 = wall_now();
        let mut efit: Vec<Vec<f32>> = Vec::with_capacity(jobs.len()); // dpmd-allow D7: O(jobs) output staging per batched call
        let mut de_dd: Vec<Vec<f32>> = Vec::with_capacity(jobs.len()); // dpmd-allow D7: O(jobs) output staging per batched call
        for j in jobs.iter() {
            efit.push(ws.take32(j.atoms.nlocal));
            de_dd.push(ws.take32(j.atoms.nlocal * m1 * m2));
        }
        let mut row_of = std::mem::take(&mut ws.row_of);
        for (ty, fit) in self.fit32.iter().enumerate() {
            row_of.clear();
            for (ji, job) in jobs.iter().enumerate() {
                for i in 0..job.atoms.nlocal {
                    if job.atoms.typ[i] as usize == ty {
                        row_of.push((ji, i));
                    }
                }
            }
            let rows = row_of.len();
            if rows == 0 {
                continue;
            }
            let mut d_stacked = ws.take32(rows * m1 * m2);
            for (r, &(ji, i)) in row_of.iter().enumerate() {
                let t = &embeds[ji][i].t;
                let drow = &mut d_stacked[r * m1 * m2..(r + 1) * m1 * m2];
                for a in 0..m1 {
                    for b in 0..m2 {
                        let mut acc = 0.0f32;
                        for c in 0..4 {
                            acc += t[a * 4 + c] * t[b * 4 + c];
                        }
                        drow[a * m2 + b] = acc;
                    }
                }
            }
            let (energies, grads) =
                fit_batched(fit, rows, d_stacked, f16_first, self, &mut stats, ws);
            for (r, &(ji, i)) in row_of.iter().enumerate() {
                efit[ji][i] = energies[r];
                de_dd[ji][i * m1 * m2..(i + 1) * m1 * m2]
                    .copy_from_slice(&grads[r * m1 * m2..(r + 1) * m1 * m2]);
            }
            ws.put32(energies);
            ws.put32(grads);
        }
        ws.row_of = row_of;

        // Pass 4: per-job chain rule and force scatter, in exactly the solo
        // pass-3 structure — per-chunk f64 buffers over `atom_chunks`,
        // energies summed in atom order, chunks merged in chunk order — so
        // every f64 accumulation happens in the solo order.
        let mut outs = Vec::with_capacity(jobs.len()); // dpmd-allow D7: O(jobs) output staging per batched call
        for (ji, job) in jobs.iter_mut().enumerate() {
            let atoms = job.atoms;
            let chunks = atom_chunks(atoms.nlocal);
            struct ChunkOut {
                energy: f64,
                virial: f64,
                forces: Vec<Vec3>,
            }
            let mut couts: Vec<Option<ChunkOut>> = chunks.iter().map(|_| None).collect(); // dpmd-allow D7: O(chunks) slots per job
            {
                let (envs, embeds) = (&envs[ji], &embeds[ji]);
                let (efit, de_dd) = (&efit[ji], &de_dd[ji]);
                let nall = atoms.len();
                pool.scope(|sc| {
                    for (range, slot) in chunks.iter().zip(couts.iter_mut()) {
                        let range = range.clone(); // dpmd-allow D7: Range clone is Copy-sized, no heap
                        sc.spawn(move || {
                            let mut buf = vec![Vec3::ZERO; nall]; // dpmd-allow D7: one force buffer per chunk, amortized over the chunk's atoms
                            let mut energy = 0.0f64;
                            let mut virial = 0.0f64;
                            // dT scratch hoisted out of the atom loop
                            // (accumulated, so reset per atom) — mirrors
                            // the solo pass-3 chunk scratch.
                            let mut dt = vec![0.0f32; m1 * 4]; // dpmd-allow D7: per-chunk scratch, reused per atom
                            for i in range {
                                let env = &envs[i];
                                let emb = &embeds[i];
                                let ti = atoms.typ[i] as usize;
                                let t = &emb.t;
                                energy += efit[i] as f64 + self.model.energy_bias[ti];
                                let grad = &de_dd[i * m1 * m2..(i + 1) * m1 * m2];

                                dt.fill(0.0);
                                for a in 0..m1 {
                                    for b in 0..m2 {
                                        let aab = grad[a * m2 + b];
                                        for c in 0..4 {
                                            dt[a * 4 + c] += aab * t[b * 4 + c];
                                            dt[b * 4 + c] += aab * t[a * 4 + c];
                                        }
                                    }
                                }
                                for (k, e) in env.entries.iter().enumerate() {
                                    let c = emb.coords[k];
                                    let mut de_ds = 0.0f32;
                                    let mut de_drt = [0.0f32; 4];
                                    for m in 0..m1 {
                                        let mut de_dg = 0.0f32;
                                        for cc in 0..4 {
                                            de_dg += dt[m * 4 + cc] * c[cc];
                                            de_drt[cc] += dt[m * 4 + cc] * emb.g[k * m1 + m];
                                        }
                                        de_ds += de_dg * inv_nm * emb.dg_ds[k * m1 + m];
                                    }
                                    for v in &mut de_drt {
                                        *v *= inv_nm;
                                    }
                                    let grads = e.coord_grads();
                                    let inv_r = 1.0 / e.r;
                                    let dsdd = [
                                        e.ds_dr * e.disp.x * inv_r,
                                        e.ds_dr * e.disp.y * inv_r,
                                        e.ds_dr * e.disp.z * inv_r,
                                    ];
                                    let mut de_dd_vec = Vec3::ZERO;
                                    for axis in 0..3 {
                                        let mut v = de_ds as f64 * dsdd[axis];
                                        for cc in 0..4 {
                                            v += de_drt[cc] as f64 * grads[cc][axis];
                                        }
                                        de_dd_vec[axis] = v;
                                    }
                                    let j = e.j as usize;
                                    buf[j] -= de_dd_vec;
                                    buf[i] += de_dd_vec;
                                    virial += de_dd_vec.dot(e.disp);
                                }
                            }
                            *slot = Some(ChunkOut { energy, virial, forces: buf });
                        });
                    }
                });
            }
            let mut total_e = 0.0f64;
            let mut virial = 0.0f64;
            for cout in couts.into_iter().flatten() {
                total_e += cout.energy;
                virial += cout.virial;
                for (f, b) in job.forces.iter_mut().zip(&cout.forces) {
                    *f += *b;
                }
            }
            outs.push(PotentialOutput { energy: total_e, virial: -virial });
        }
        phases.fitting_s = t0.elapsed().as_secs_f64();
        for v in efit {
            ws.put32(v);
        }
        for v in de_dd {
            ws.put32(v);
        }
        ws.embeds = embeds;

        stats.phases = phases;
        *self.last_phases.lock().unwrap() = Some(phases);
        (outs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepPotConfig;
    use crate::model::DeepPotModel;
    use minimd::lattice::{fcc_copper, water_box};
    use minimd::neighbor::ListKind;

    fn copper_system(perturb_seed: u64) -> (SimBox, Atoms, NeighborList) {
        let (bx, mut atoms) = fcc_copper(3, 3, 3);
        for (k, p) in atoms.pos.iter_mut().enumerate() {
            let h = (k as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(perturb_seed);
            p.x += 0.03 * (((h >> 16) & 0xff) as f64 / 255.0 - 0.5);
            p.y += 0.03 * (((h >> 24) & 0xff) as f64 / 255.0 - 0.5);
            p.z += 0.03 * (((h >> 32) & 0xff) as f64 / 255.0 - 0.5);
        }
        let mut nl = NeighborList::new(5.0, 0.5, ListKind::Full);
        nl.build(&atoms, &bx);
        (bx, atoms, nl)
    }

    /// The whole design hinges on this: any number of jobs, evaluated in one
    /// batched call, must reproduce each job's solo evaluation bit for bit.
    #[test]
    fn batched_jobs_are_bitwise_identical_to_solo() {
        for precision in [Precision::Mix32, Precision::Mix16, Precision::Double] {
            let model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
            let engine = DpEngine::new(model, precision);
            let systems: Vec<_> = (0..3).map(|s| copper_system(1000 + s)).collect();

            let solo: Vec<_> = systems
                .iter()
                .map(|(bx, atoms, nl)| {
                    let mut f = vec![Vec3::ZERO; atoms.len()];
                    let out = engine.energy_forces(atoms, nl, bx, &mut f);
                    (out, f)
                })
                .collect();

            let mut force_bufs: Vec<Vec<Vec3>> =
                systems.iter().map(|(_, atoms, _)| vec![Vec3::ZERO; atoms.len()]).collect();
            let mut jobs: Vec<BatchJob> = systems
                .iter()
                .zip(force_bufs.iter_mut())
                .map(|((bx, atoms, nl), forces)| BatchJob { atoms, nl, bx, forces })
                .collect();
            let (outs, stats) = engine.energy_forces_batched(&mut jobs);

            assert_eq!(outs.len(), 3);
            for (ji, ((out_solo, f_solo), out_b)) in solo.iter().zip(&outs).enumerate() {
                assert_eq!(out_solo.energy, out_b.energy, "{precision:?} job {ji} energy");
                assert_eq!(out_solo.virial, out_b.virial, "{precision:?} job {ji} virial");
                assert_eq!(f_solo, &force_bufs[ji], "{precision:?} job {ji} forces");
            }
            if precision == Precision::Double {
                assert_eq!(stats.solo_fallbacks, 3);
            } else {
                assert_eq!(stats.solo_fallbacks, 0);
                assert!(stats.fused_gemms > 0, "fitting GEMMs must fuse");
                assert!(stats.fused_rows > stats.fused_gemms, "rows must stack");
            }
        }
    }

    /// The augmented-column trick the stacked embedding GEMMs rest on:
    /// a row `[1, v…]` against `[bias ; W]` through a kernel's zero-seeded
    /// ascending-k fold must reproduce the bias-seeded accumulation
    /// `((b + v0·w0) + v1·w1) + …` bit for bit — in *each* dispatch class,
    /// with the class's own rounding regime (two roundings per step on the
    /// scalar class, one fused rounding on the SIMD classes).
    #[test]
    fn augmented_column_reproduces_bias_seeded_fold() {
        use nnet::gemm::dispatch::{self, DispatchClass};

        let (ind, outd) = (7, 13);
        let h = |i: u64| ((i.wrapping_mul(0x9e3779b97f4a7c15) >> 17) & 0xffff) as f32 / 65536.0 - 0.5;
        let w: Vec<f32> = (0..ind * outd).map(|i| h(i as u64)).collect();
        let b: Vec<f32> = (0..outd).map(|i| h(1000 + i as u64)).collect();
        let v: Vec<f32> = (0..ind).map(|i| h(2000 + i as u64)).collect();

        let mut aug_b = b.clone();
        aug_b.extend_from_slice(&w);
        let mut row = vec![1.0f32];
        row.extend_from_slice(&v);

        for kernel in [dispatch::scalar(), dispatch::active()] {
            // Bias-seeded reference in this class's rounding regime,
            // accumulating ascending-i like every kernel's k-fold.
            let fused = kernel.class() != DispatchClass::Scalar;
            let mut solo = b.clone();
            for i in 0..ind {
                for (o, s) in solo.iter_mut().enumerate() {
                    *s = if fused { v[i].mul_add(w[i * outd + o], *s) } else { *s + v[i] * w[i * outd + o] };
                }
            }

            let mut c = vec![0.0f32; outd];
            kernel.nn_f32(1, outd, ind + 1, &row, &aug_b, &mut c);
            assert_eq!(solo, c, "class {:?}", kernel.class());
        }
    }

    /// Two species (water): the type-sorted grouping must respect per-atom
    /// species for both embedding and fitting nets.
    #[test]
    fn batched_multi_species_matches_solo() {
        let model = DeepPotModel::new(DeepPotConfig::tiny(2, 4.0));
        let engine = DpEngine::new(model, Precision::Mix32);
        let (bx, atoms) = water_box(2, 2, 2, 31);
        let mut nl = NeighborList::new(4.0, 0.5, ListKind::Full);
        nl.build(&atoms, &bx);

        let mut f_solo = vec![Vec3::ZERO; atoms.len()];
        let out_solo = engine.energy_forces(&atoms, &nl, &bx, &mut f_solo);

        let mut f_b = vec![Vec3::ZERO; atoms.len()];
        let mut jobs = [BatchJob { atoms: &atoms, nl: &nl, bx: &bx, forces: &mut f_b }];
        let (outs, _) = engine.energy_forces_batched(&mut jobs);
        assert_eq!(out_solo.energy, outs[0].energy);
        assert_eq!(out_solo.virial, outs[0].virial);
        assert_eq!(f_solo, f_b);
    }
}
