//! Training Deep Potential models against reference labels.
//!
//! Energy-matching loss with Adam, full backpropagation through the fitting
//! net, the symmetry-preserving descriptor contraction, and the embedding
//! nets. (The production DeePMD-kit also force-matches; energy-only
//! training suffices for the reproduction's accuracy experiments and keeps
//! the hand-derived gradients testable — force errors are *evaluated*
//! against the analytic backward pass either way.)

use minimd::neighbor::{ListKind, NeighborList};
use nnet::layers::DenseGrads;
use nnet::matrix::Matrix;
use rayon::prelude::*;

use crate::dataset::Frame;
use crate::descriptor::build_environments;
use crate::model::DeepPotModel;

/// Adam optimizer over a flat parameter vector.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Stabilizer.
    pub eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Standard Adam with the given learning rate, sized for `n` parameters.
    pub fn new(lr: f64, n: usize) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: vec![0.0; n], v: vec![0.0; n] }
    }

    /// One update step: `params -= lr · m̂/(√v̂ + ε)`.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Flatten every trainable parameter (embedding nets then fitting nets;
/// per layer: weights row-major, then bias) into one vector.
pub fn collect_params(model: &DeepPotModel) -> Vec<f64> {
    let mut out = Vec::new();
    for net in model.embeddings.iter().map(|e| &e.mlp).chain(model.fittings.iter().map(|f| &f.mlp)) {
        for layer in &net.layers {
            out.extend_from_slice(layer.w.as_slice());
            out.extend_from_slice(&layer.b);
        }
    }
    out
}

/// Write a flat parameter vector back into the model (inverse of
/// [`collect_params`]).
///
/// # Panics
/// If the vector length doesn't match the model's parameter count.
pub fn set_params(model: &mut DeepPotModel, params: &[f64]) {
    let mut k = 0;
    for net in model
        .embeddings
        .iter_mut()
        .map(|e| &mut e.mlp)
        .chain(model.fittings.iter_mut().map(|f| &mut f.mlp))
    {
        for layer in &mut net.layers {
            let wlen = layer.w.len();
            let (rows, cols) = (layer.w.rows(), layer.w.cols());
            layer.w = Matrix::from_vec(rows, cols, params[k..k + wlen].to_vec());
            k += wlen;
            let blen = layer.b.len();
            layer.b.copy_from_slice(&params[k..k + blen]);
            k += blen;
        }
    }
    assert_eq!(k, params.len(), "parameter vector length mismatch");
}

fn zero_grads_like(model: &DeepPotModel) -> Vec<f64> {
    vec![0.0; collect_params(model).len()]
}

/// Flatten `DenseGrads` per net/layer in the same order as
/// [`collect_params`], adding into `acc`.
fn accumulate(acc: &mut [f64], model: &DeepPotModel, emb_grads: &[Vec<DenseGrads>], fit_grads: &[Vec<DenseGrads>]) {
    let mut k = 0;
    for (net_idx, net) in model.embeddings.iter().enumerate() {
        for (li, layer) in net.mlp.layers.iter().enumerate() {
            let g = &emb_grads[net_idx][li];
            for (a, &b) in acc[k..k + layer.w.len()].iter_mut().zip(g.dw.as_slice()) {
                *a += b;
            }
            k += layer.w.len();
            for (a, &b) in acc[k..k + layer.b.len()].iter_mut().zip(&g.db) {
                *a += b;
            }
            k += layer.b.len();
        }
    }
    for (net_idx, net) in model.fittings.iter().enumerate() {
        for (li, layer) in net.mlp.layers.iter().enumerate() {
            let g = &fit_grads[net_idx][li];
            for (a, &b) in acc[k..k + layer.w.len()].iter_mut().zip(g.dw.as_slice()) {
                *a += b;
            }
            k += layer.w.len();
            for (a, &b) in acc[k..k + layer.b.len()].iter_mut().zip(&g.db) {
                *a += b;
            }
            k += layer.b.len();
        }
    }
}

fn zero_dense_grads(nets: &[nnet::layers::Mlp]) -> Vec<Vec<DenseGrads>> {
    nets.iter()
        .map(|net| {
            net.layers
                .iter()
                .map(|l| DenseGrads { dw: Matrix::zeros(l.in_dim(), l.out_dim()), db: vec![0.0; l.out_dim()] })
                .collect()
        })
        .collect()
}

fn add_dense_grads(acc: &mut [Vec<DenseGrads>], net: usize, grads: Vec<DenseGrads>) {
    for (a, g) in acc[net].iter_mut().zip(grads) {
        for (x, &y) in a.dw.as_mut_slice().iter_mut().zip(g.dw.as_slice()) {
            *x += y;
        }
        for (x, &y) in a.db.iter_mut().zip(&g.db) {
            *x += y;
        }
    }
}

/// Per-atom-normalized squared energy loss of one frame and its parameter
/// gradient: `L = ((E_pred − E_ref)/N)²`.
pub fn frame_loss_and_grads(model: &DeepPotModel, frame: &Frame) -> (f64, Vec<f64>) {
    let cfg = &model.config;
    let m1 = cfg.m1();
    let m2 = cfg.m2;
    let inv_nm = 1.0 / cfg.nmax as f64;
    let natoms = frame.atoms.nlocal;

    let mut nl = NeighborList::new(cfg.rcut, 0.5, ListKind::Full);
    nl.build(&frame.atoms, &frame.bx);
    let envs = build_environments(&frame.atoms, &nl, &frame.bx, cfg.rcut_smth, cfg.rcut);

    // ---- forward: keep per-atom caches ----
    struct AtomCache {
        // per type: (entry indices, input matrix cache, forward caches, G rows)
        per_type: Vec<(Vec<usize>, Vec<nnet::layers::DenseCache>, Matrix<f64>)>,
        t: Vec<f64>,
        fit_caches: Vec<nnet::layers::DenseCache>,
        d: Matrix<f64>,
    }
    let mut caches: Vec<AtomCache> = Vec::with_capacity(natoms);
    let mut e_pred = 0.0;
    for (i, env) in envs.iter().enumerate().take(natoms) {
        let ti = frame.atoms.typ[i] as usize;
        let mut per_type = Vec::with_capacity(cfg.ntypes);
        let mut t = vec![0.0; m1 * 4];
        for typ in 0..cfg.ntypes {
            let idx: Vec<usize> =
                (0..env.entries.len()).filter(|&k| env.entries[k].typ as usize == typ).collect();
            if idx.is_empty() {
                per_type.push((idx, Vec::new(), Matrix::zeros(0, m1)));
                continue;
            }
            let input = Matrix::from_fn(idx.len(), 1, |r, _| env.entries[idx[r]].s);
            let (g, dcaches) = model.embeddings[typ].mlp.forward(&input);
            for (row, &k) in idx.iter().enumerate() {
                let coords = env.entries[k].coords();
                for m in 0..m1 {
                    let gv = g[(row, m)];
                    for c in 0..4 {
                        t[m * 4 + c] += gv * coords[c] * inv_nm;
                    }
                }
            }
            per_type.push((idx, dcaches, g));
        }
        let mut d = vec![0.0; m1 * m2];
        for a in 0..m1 {
            for b in 0..m2 {
                let mut acc = 0.0;
                for c in 0..4 {
                    acc += t[a * 4 + c] * t[b * 4 + c];
                }
                d[a * m2 + b] = acc;
            }
        }
        let dm = Matrix::from_vec(1, m1 * m2, d);
        let (e_out, fit_caches) = model.fittings[ti].mlp.forward(&dm);
        e_pred += e_out[(0, 0)] + model.energy_bias[ti];
        caches.push(AtomCache { per_type, t, fit_caches, d: dm });
    }

    let resid = (e_pred - frame.energy) / natoms as f64;
    let loss = resid * resid;
    // dL/dE_i = 2·resid / N for every atom i.
    let w = 2.0 * resid / natoms as f64;

    // ---- backward ----
    let mut emb_grads = zero_dense_grads(&model.embeddings.iter().map(|e| e.mlp.clone()).collect::<Vec<_>>());
    let mut fit_grads = zero_dense_grads(&model.fittings.iter().map(|f| f.mlp.clone()).collect::<Vec<_>>());
    for (i, env) in envs.iter().enumerate().take(natoms) {
        let ti = frame.atoms.typ[i] as usize;
        let cache = &caches[i];
        let dout = Matrix::from_vec(1, 1, vec![w]);
        let (dd, fgrads) = model.fittings[ti].mlp.backward(&cache.fit_caches, &dout);
        add_dense_grads(&mut fit_grads, ti, fgrads);
        let _ = &cache.d;

        // dL/dT from dL/dD.
        let mut dt = vec![0.0; m1 * 4];
        for a in 0..m1 {
            for b in 0..m2 {
                let aab = dd[(0, a * m2 + b)];
                for c in 0..4 {
                    dt[a * 4 + c] += aab * cache.t[b * 4 + c];
                    dt[b * 4 + c] += aab * cache.t[a * 4 + c];
                }
            }
        }
        // dL/dG rows per type, then backprop each embedding batch.
        for typ in 0..cfg.ntypes {
            let (idx, dcaches, g) = &cache.per_type[typ];
            if idx.is_empty() {
                continue;
            }
            let _ = g;
            let mut dg = Matrix::zeros(idx.len(), m1);
            for (row, &k) in idx.iter().enumerate() {
                let coords = env.entries[k].coords();
                for m in 0..m1 {
                    let mut acc = 0.0;
                    for c in 0..4 {
                        acc += dt[m * 4 + c] * coords[c];
                    }
                    dg[(row, m)] = acc * inv_nm;
                }
            }
            let (_, egrads) = model.embeddings[typ].mlp.backward(dcaches, &dg);
            add_dense_grads(&mut emb_grads, typ, egrads);
        }
    }

    let mut flat = zero_grads_like(model);
    accumulate(&mut flat, model, &emb_grads, &fit_grads);
    (loss, flat)
}

/// Training configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Print a progress line every `log_every` epochs (0 = silent).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 200, lr: 3e-3, log_every: 0 }
    }
}

/// Set the per-species energy bias to the least-squares fit of the
/// reference energies (`E_ref ≈ Σ_t n_t·b_t`) — one normal-equation solve.
/// Must run before training, exactly like DeePMD-kit's `bias_atom_e`.
pub fn fit_energy_bias(model: &mut DeepPotModel, frames: &[Frame]) {
    let nt = model.config.ntypes;
    // Normal equations A b = y with A[f][t] = count of type t in frame f.
    let mut ata = vec![0.0; nt * nt];
    let mut aty = vec![0.0; nt];
    for f in frames {
        let mut counts = vec![0.0; nt];
        for &t in &f.atoms.typ[..f.atoms.nlocal] {
            counts[t as usize] += 1.0;
        }
        // Remove the current prediction's bias-free part? Bias is fitted to
        // raw reference energies; the net starts near zero output, so this
        // captures the cohesive offset.
        for a in 0..nt {
            for b in 0..nt {
                ata[a * nt + b] += counts[a] * counts[b];
            }
            aty[a] += counts[a] * f.energy;
        }
    }
    // Tiny ridge term for singular cases (single-type systems are 1×1).
    for a in 0..nt {
        ata[a * nt + a] += 1e-9;
    }
    // Gaussian elimination.
    let mut m = ata;
    let mut y = aty;
    for col in 0..nt {
        let piv = (col..nt).max_by(|&i, &j| m[i * nt + col].abs().partial_cmp(&m[j * nt + col].abs()).unwrap()).unwrap();
        for c in 0..nt {
            m.swap(col * nt + c, piv * nt + c);
        }
        y.swap(col, piv);
        let d = m[col * nt + col];
        for r in (col + 1)..nt {
            let f = m[r * nt + col] / d;
            for c in col..nt {
                m[r * nt + c] -= f * m[col * nt + c];
            }
            y[r] -= f * y[col];
        }
    }
    let mut bias = vec![0.0; nt];
    for col in (0..nt).rev() {
        let mut acc = y[col];
        for c in (col + 1)..nt {
            acc -= m[col * nt + c] * bias[c];
        }
        bias[col] = acc / m[col * nt + col];
    }
    model.energy_bias = bias;
}

/// Train with full-batch Adam; returns the per-epoch mean loss history.
pub fn train(model: &mut DeepPotModel, frames: &[Frame], cfg: TrainConfig) -> Vec<f64> {
    assert!(!frames.is_empty());
    let mut params = collect_params(model);
    let mut adam = Adam::new(cfg.lr, params.len());
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        // Parallel over frames: each yields (loss, grads); reduce by sum.
        let (loss_sum, grad_sum) = frames
            .par_iter()
            .map(|f| frame_loss_and_grads(model, f))
            .reduce(
                || (0.0, vec![0.0; params.len()]),
                |(la, mut ga), (lb, gb)| {
                    for (a, b) in ga.iter_mut().zip(&gb) {
                        *a += b;
                    }
                    (la + lb, ga)
                },
            );
        let n = frames.len() as f64;
        let mean_loss = loss_sum / n;
        let grads: Vec<f64> = grad_sum.iter().map(|g| g / n).collect();
        adam.step(&mut params, &grads);
        set_params(model, &params);
        history.push(mean_loss);
        if cfg.log_every > 0 && epoch % cfg.log_every == 0 {
            eprintln!("epoch {epoch:4}  rmse/atom {:.6e} eV", mean_loss.sqrt());
        }
    }
    history
}

/// Evaluation errors against reference labels: (energy MAE per atom in
/// eV/atom, force RMSE in eV/Å) — the two columns of Table II.
pub fn eval_errors(model: &DeepPotModel, frames: &[Frame]) -> (f64, f64) {
    let mut e_err = 0.0;
    let mut f_sq = 0.0;
    let mut f_count = 0usize;
    for frame in frames {
        let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
        nl.build(&frame.atoms, &frame.bx);
        let mut forces = vec![minimd::vec3::Vec3::ZERO; frame.atoms.len()];
        let out = model.energy_forces(&frame.atoms, &nl, &frame.bx, &mut forces);
        e_err += ((out.energy - frame.energy) / frame.atoms.nlocal as f64).abs();
        for (&f, &fr) in forces.iter().zip(&frame.forces).take(frame.atoms.nlocal) {
            let d = f - fr;
            f_sq += d.norm2();
            f_count += 3;
        }
    }
    (e_err / frames.len() as f64, (f_sq / f_count as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepPotConfig;
    use crate::dataset::copper_frames;

    #[test]
    fn param_round_trip() {
        let mut model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
        let p = collect_params(&model);
        assert!(!p.is_empty());
        let mut p2 = p.clone();
        p2[0] += 1.0;
        set_params(&mut model, &p2);
        assert_eq!(collect_params(&model), p2);
    }

    #[test]
    fn analytic_gradient_matches_finite_difference() {
        let mut model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
        let frames = copper_frames(1, 2, 0.08, 3);
        fit_energy_bias(&mut model, &frames);
        let (_, grads) = frame_loss_and_grads(&model, &frames[0]);
        let params = collect_params(&model);
        let h = 1e-6;
        // Probe a spread of parameters (embedding + fitting).
        let probes = [0usize, 3, params.len() / 2, params.len() - 2];
        for &k in &probes {
            let mut pp = params.clone();
            pp[k] += h;
            let mut mp = model.clone();
            set_params(&mut mp, &pp);
            let (lp, _) = frame_loss_and_grads(&mp, &frames[0]);
            pp[k] -= 2.0 * h;
            set_params(&mut mp, &pp);
            let (lm, _) = frame_loss_and_grads(&mp, &frames[0]);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grads[k]).abs() < 1e-6 * (1.0 + fd.abs()),
                "param {k}: fd={fd:.3e} an={:.3e}",
                grads[k]
            );
        }
    }

    #[test]
    fn bias_fit_removes_the_cohesive_offset() {
        let mut model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
        let frames = copper_frames(3, 2, 0.05, 4);
        fit_energy_bias(&mut model, &frames);
        // With bias fitted, the mean per-atom residual is small (the net
        // output is O(0.1) eV, the cohesive energy is O(−3.5) eV/atom).
        let (e_mae, _) = eval_errors(&model, &frames);
        assert!(e_mae < 0.5, "bias should absorb the offset, MAE {e_mae}");
    }

    #[test]
    fn short_training_reduces_the_loss() {
        let mut model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
        let frames = copper_frames(4, 2, 0.08, 5);
        fit_energy_bias(&mut model, &frames);
        let history = train(&mut model, &frames, TrainConfig { epochs: 40, lr: 3e-3, log_every: 0 });
        let early: f64 = history[..5].iter().sum::<f64>() / 5.0;
        let late: f64 = history[history.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(late < early, "loss must decrease: early {early:.3e}, late {late:.3e}");
    }

    #[test]
    fn adam_moves_toward_a_quadratic_minimum() {
        // Sanity on the optimizer itself: minimize (x−3)² + (y+1)².
        let mut p = vec![0.0, 0.0];
        let mut adam = Adam::new(0.1, 2);
        for _ in 0..500 {
            let g = vec![2.0 * (p[0] - 3.0), 2.0 * (p[1] + 1.0)];
            adam.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 0.05 && (p[1] + 1.0).abs() < 0.05, "{p:?}");
    }
}
