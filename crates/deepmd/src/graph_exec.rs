//! Deep Potential executed through the TensorFlow-analog graph runtime —
//! the *baseline* execution path the paper removes (§III-B1).
//!
//! For each atom, the full Fig. 1 dataflow is expressed as graph nodes:
//! per-species embedding sub-nets (with resnet skips emulated by
//! `Add`/`ConcatCols`), the `T = GᵀR̃/n_max` contraction (`MatMulTN`), the
//! symmetry-preserving product `D = T·T₂ᵀ`, the fitting net, and the energy
//! head. Forces come from `Graph::gradients` — the autodiff that
//! materializes the redundant kernels the paper's rmtf optimization trims.
//!
//! Numerically this path must agree with the direct reference
//! implementation (tested to ~1e-9); its `RunStats` quantify what the
//! baseline pays: one 4 ms session overhead per run plus one allocation per
//! intermediate tensor.

use std::collections::HashMap;

use minimd::atoms::Atoms;
use minimd::neighbor::NeighborList;
use minimd::potential::PotentialOutput;
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;
use nnet::graph::{Graph, NodeId, Op, RunStats, Session};
use nnet::layers::Resnet;
use nnet::matrix::Matrix;

use crate::descriptor::build_environments;
use crate::model::DeepPotModel;

/// A compiled per-signature graph: one graph per (centre species,
/// per-species neighbour counts) — like TF, rebuilt only when shapes change.
struct BuiltGraph {
    session: Session,
    /// Input names per species present: (s name, r name).
    inputs: Vec<(usize, String, String)>,
    energy: NodeId,
    /// dE/dR̃ per species (aligned with `inputs`).
    dr: Vec<NodeId>,
    /// dE/ds per species.
    ds: Vec<NodeId>,
}

/// The graph-based executor over a trained model.
pub struct GraphExecutor<'m> {
    model: &'m DeepPotModel,
    cache: HashMap<(u32, Vec<usize>), BuiltGraph>,
    cumulative: RunStats,
    runs: u64,
}

/// Append one MLP (embedding or fitting) to the graph with resnet skips.
fn add_mlp(g: &mut Graph, mlp: &nnet::layers::Mlp, mut x: NodeId) -> NodeId {
    for layer in &mlp.layers {
        let w = g.param(layer.w.clone());
        let b = g.param(Matrix::from_vec(1, layer.b.len(), layer.b.clone()));
        let mm = g.add(Op::MatMulNN(x, w));
        let ab = g.add(Op::AddBias(mm, b));
        let act = g.add(Op::Activation(ab, layer.act));
        x = match layer.resnet {
            Resnet::None => act,
            Resnet::Identity => g.add(Op::Add(act, x)),
            Resnet::Doubling => {
                let xx = g.add(Op::ConcatCols(x, x));
                g.add(Op::Add(act, xx))
            }
        };
    }
    x
}

impl<'m> GraphExecutor<'m> {
    /// A fresh executor over `model`.
    pub fn new(model: &'m DeepPotModel) -> Self {
        GraphExecutor { model, cache: HashMap::new(), cumulative: RunStats::default(), runs: 0 }
    }

    /// Cumulative framework statistics (session overheads, kernel launches,
    /// per-run tensor allocations) across all atom evaluations so far.
    pub fn stats(&self) -> (RunStats, u64) {
        (self.cumulative, self.runs)
    }

    /// Number of distinct graphs compiled (shape signatures seen).
    pub fn graphs_built(&self) -> usize {
        self.cache.len()
    }

    fn build(&self, typ_i: u32, counts: &[usize]) -> BuiltGraph {
        let cfg = &self.model.config;
        let m1 = cfg.m1();
        let m2 = cfg.m2;
        let mut g = Graph::new();
        let mut inputs = Vec::new();
        let mut s_nodes = Vec::new();
        let mut r_nodes = Vec::new();
        let mut t_node: Option<NodeId> = None;
        for (t, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let s_name = format!("s{t}");
            let r_name = format!("r{t}");
            let s = g.input(&s_name);
            let r = g.input(&r_name);
            inputs.push((t, s_name, r_name));
            s_nodes.push(s);
            r_nodes.push(r);
            let feats = add_mlp(&mut g, &self.model.embeddings[t].mlp, s); // n × M1
            let tt = g.add(Op::MatMulTN(feats, r)); // M1 × 4
            t_node = Some(match t_node {
                None => tt,
                Some(prev) => g.add(Op::Add(prev, tt)),
            });
        }
        let t_raw = t_node.expect("at least one neighbour");
        let t = g.add(Op::Scale(t_raw, 1.0 / cfg.nmax as f64));
        // D = T · T₂ᵀ: slice the first m2 rows of T via its transpose.
        let t_tr = g.add(Op::Transpose(t)); // 4 × M1
        let t2_tr = g.add(Op::SliceCols(t_tr, 0, m2)); // 4 × m2
        let d = g.add(Op::MatMulNN(t, t2_tr)); // M1 × m2
        let d_flat = g.add(Op::Reshape(d, 1, m1 * m2));
        let fit_out = add_mlp(&mut g, &self.model.fittings[typ_i as usize].mlp, d_flat);
        let bias = g.param(Matrix::from_vec(1, 1, vec![self.model.energy_bias[typ_i as usize]]));
        let energy = g.add(Op::Add(fit_out, bias));

        // Force gradients: dE/dR̃ then dE/ds per present species.
        let mut wrt_nodes: Vec<NodeId> = r_nodes.clone();
        wrt_nodes.extend(s_nodes.iter().copied());
        let mut g2 = g;
        let grads = g2.gradients(energy, &wrt_nodes);
        let dr = grads[..inputs.len()].to_vec();
        let ds = grads[inputs.len()..].to_vec();
        BuiltGraph { session: Session::new(g2), inputs, energy, dr, ds }
    }

    /// Energy + forces for all local atoms, through graph sessions.
    pub fn energy_forces(
        &mut self,
        atoms: &Atoms,
        nl: &NeighborList,
        bx: &SimBox,
        forces: &mut [Vec3],
    ) -> PotentialOutput {
        let cfg = &self.model.config;
        let envs = build_environments(atoms, nl, bx, cfg.rcut_smth, cfg.rcut);
        let inv_nm = 1.0 / cfg.nmax as f64;
        let _ = inv_nm;
        let mut total_e = 0.0;
        let mut virial = 0.0;
        for i in 0..atoms.nlocal {
            let env = &envs[i];
            if env.entries.is_empty() {
                continue;
            }
            let typ_i = atoms.typ[i];
            // Group entries per species (the baseline's slice/concat step).
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); cfg.ntypes];
            for (k, e) in env.entries.iter().enumerate() {
                groups[e.typ as usize].push(k);
            }
            let counts: Vec<usize> = groups.iter().map(Vec::len).collect();
            let key = (typ_i, counts.clone());
            if !self.cache.contains_key(&key) {
                let built = self.build(typ_i, &counts);
                self.cache.insert(key.clone(), built);
            }
            let built = self.cache.get_mut(&key).expect("just inserted");

            // Feeds.
            let mut feeds: HashMap<String, Matrix<f64>> = HashMap::new();
            for (t, s_name, r_name) in &built.inputs {
                let idx = &groups[*t];
                let s = Matrix::from_fn(idx.len(), 1, |r, _| env.entries[idx[r]].s);
                let r = Matrix::from_fn(idx.len(), 4, |row, c| env.entries[idx[row]].coords()[c]);
                feeds.insert(s_name.clone(), s);
                feeds.insert(r_name.clone(), r);
            }
            let mut fetches = vec![built.energy];
            fetches.extend(built.dr.iter().copied());
            fetches.extend(built.ds.iter().copied());
            let (outs, stats) = built.session.run(&feeds, &fetches);
            self.cumulative.kernels_launched += stats.kernels_launched;
            self.cumulative.tensors_allocated += stats.tensors_allocated;
            self.cumulative.framework_overhead_ns += stats.framework_overhead_ns;
            self.cumulative.matmul_flops += stats.matmul_flops;
            self.runs += 1;

            total_e += outs[0][(0, 0)];
            // Chain rule from dE/dR̃ and dE/ds to forces (host side, same as
            // every execution path).
            let ngroups = built.inputs.len();
            for (gi, (t, _, _)) in built.inputs.iter().enumerate() {
                let dr = &outs[1 + gi];
                let ds = &outs[1 + ngroups + gi];
                for (row, &k) in groups[*t].iter().enumerate() {
                    let e = &env.entries[k];
                    let grads = e.coord_grads();
                    let inv_r = 1.0 / e.r;
                    let dsdd = [
                        e.ds_dr * e.disp.x * inv_r,
                        e.ds_dr * e.disp.y * inv_r,
                        e.ds_dr * e.disp.z * inv_r,
                    ];
                    let mut de_dd = Vec3::ZERO;
                    for axis in 0..3 {
                        let mut v = ds[(row, 0)] * dsdd[axis];
                        for c in 0..4 {
                            v += dr[(row, c)] * grads[c][axis];
                        }
                        de_dd[axis] = v;
                    }
                    let j = e.j as usize;
                    forces[j] -= de_dd;
                    forces[i] += de_dd;
                    virial += de_dd.dot(e.disp);
                }
            }
        }
        PotentialOutput { energy: total_e, virial: -virial }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepPotConfig;
    use minimd::lattice::{fcc_copper, water_box};
    use minimd::neighbor::ListKind;

    fn compare(model: &DeepPotModel, bx: &SimBox, atoms: &Atoms) {
        let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
        nl.build(atoms, bx);
        let mut f_ref = vec![Vec3::ZERO; atoms.len()];
        let out_ref = model.energy_forces(atoms, &nl, bx, &mut f_ref);
        let mut exec = GraphExecutor::new(model);
        let mut f_g = vec![Vec3::ZERO; atoms.len()];
        let out_g = exec.energy_forces(atoms, &nl, bx, &mut f_g);
        assert!(
            (out_ref.energy - out_g.energy).abs() < 1e-8 * out_ref.energy.abs().max(1.0),
            "energy {} vs {}",
            out_ref.energy,
            out_g.energy
        );
        for i in 0..atoms.nlocal {
            assert!((f_ref[i] - f_g[i]).norm() < 1e-8, "atom {i}: {:?} vs {:?}", f_ref[i], f_g[i]);
        }
        // The framework-cost structure the paper measures.
        let (stats, runs) = exec.stats();
        assert_eq!(runs, atoms.nlocal as u64);
        assert_eq!(stats.framework_overhead_ns, runs * nnet::graph::SESSION_FIXED_OVERHEAD_NS);
        assert!(stats.tensors_allocated > runs, "per-run allocations");
    }

    #[test]
    fn graph_path_matches_reference_on_copper() {
        let model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
        let (bx, mut atoms) = fcc_copper(3, 3, 3);
        for (k, p) in atoms.pos.iter_mut().enumerate() {
            p.x += 0.05 * ((k % 7) as f64 - 3.0) / 3.0;
        }
        compare(&model, &bx, &atoms);
    }

    #[test]
    fn graph_path_matches_reference_on_multitype_water() {
        let model = DeepPotModel::new(DeepPotConfig::tiny(2, 5.0));
        let (bx, atoms) = water_box(3, 3, 3, 8);
        compare(&model, &bx, &atoms);
    }

    #[test]
    fn graphs_are_cached_per_shape_signature() {
        // A perfect FCC lattice: every atom has the same signature, so one
        // graph serves all of them (TF's shape-keyed compilation cache).
        let model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
        let (bx, atoms) = fcc_copper(3, 3, 3);
        let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
        nl.build(&atoms, &bx);
        let mut exec = GraphExecutor::new(&model);
        let mut f = vec![Vec3::ZERO; atoms.len()];
        exec.energy_forces(&atoms, &nl, &bx, &mut f);
        assert_eq!(exec.graphs_built(), 1, "uniform lattice needs exactly one graph");
    }
}
