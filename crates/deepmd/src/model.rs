//! The Deep Potential model: energy via forward propagation, forces via the
//! analytic backward pass (paper Fig. 1b).
//!
//! The f64 implementation here is the *reference* path; the mixed-precision
//! and TensorFlow-graph execution paths (crate modules [`crate::engine`] and
//! the `nnet::graph` baseline) are validated against it.

use dpmd_obs::clock::wall_now;

use dpmd_threads::{atom_chunks, ThreadPool};
use minimd::atoms::Atoms;
use minimd::neighbor::NeighborList;
use minimd::potential::{ForcePhases, Potential, PotentialOutput};
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;
use nnet::matrix::Matrix;
use serde::{Deserialize, Serialize};

use crate::compress::CompressedEmbedding;
use crate::config::DeepPotConfig;
use crate::descriptor::{build_environments, build_environments_on, Environment};
use crate::embedding::{EmbedScratch, EmbeddingNet};
use crate::fitting::FittingNet;

/// A complete Deep Potential model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeepPotModel {
    /// Hyper-parameters.
    pub config: DeepPotConfig,
    /// One embedding net per *neighbour* species.
    pub embeddings: Vec<EmbeddingNet>,
    /// One fitting net per *central* species.
    pub fittings: Vec<FittingNet>,
    /// Per-species energy bias (fitted to the reference data's mean).
    pub energy_bias: Vec<f64>,
    /// DP-Compress tables (one per species) replacing the embedding MLPs
    /// during evaluation when present — the compression of ref [42] that
    /// the baseline work [33] already deploys on Fugaku.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub compressed: Option<Vec<CompressedEmbedding>>,
}

/// Per-atom intermediates of the embedding pass, stored between the
/// embedding and fitting phases of the pipeline.
struct AtomEmbed {
    /// Per-neighbour embedding features (n × M₁, row-major).
    g: Vec<f64>,
    /// Per-neighbour feature derivative w.r.t. s (n × M₁).
    dg_ds: Vec<f64>,
    /// T = GᵀR̃/nmax (M₁ × 4, row-major).
    t: Vec<f64>,
}

/// Per-worker scratch for the embedding pass: the network's forward-mode
/// sweep buffers plus the per-neighbour feature/derivative rows they fill.
/// One instance per chunk worker keeps the neighbour loop allocation-free.
#[derive(Default)]
struct EmbedAtomScratch {
    gv: Vec<f64>,
    dgv: Vec<f64>,
    net: EmbedScratch,
}


impl DeepPotModel {
    /// A freshly initialized (untrained) model.
    pub fn new(config: DeepPotConfig) -> Self {
        config.validate();
        let embeddings = (0..config.ntypes)
            .map(|t| EmbeddingNet::new(&config.embedding_widths, config.seed ^ (t as u64).wrapping_mul(0x9e37)))
            .collect();
        let fittings = (0..config.ntypes)
            .map(|t| {
                FittingNet::new(
                    config.descriptor_len(),
                    &config.fitting_widths,
                    config.seed ^ (t as u64).wrapping_mul(0x85eb) ^ 0xffff,
                )
            })
            .collect();
        let energy_bias = vec![0.0; config.ntypes];
        DeepPotModel { config, embeddings, fittings, energy_bias, compressed: None }
    }

    /// Build DP-Compress tables from the (trained) embedding nets and use
    /// them for every subsequent evaluation. `intervals` controls accuracy
    /// (the paper-style deployment uses a few hundred).
    ///
    /// The table domain covers `s ∈ [0, s_max]` with
    /// `s_max = 1/min(r_cs, 0.8 Å)` — every physically reachable switching
    /// value; out-of-range inputs clamp (documented in `compress`).
    pub fn enable_compression(&mut self, intervals: usize) {
        let s_max = 1.0 / self.config.rcut_smth.min(0.8);
        self.compressed = Some(
            self.embeddings
                .iter()
                .map(|e| CompressedEmbedding::build(e, 0.0, s_max, intervals))
                .collect(),
        );
    }

    /// Drop the compression tables (back to exact MLP evaluation).
    pub fn disable_compression(&mut self) {
        self.compressed = None;
    }

    /// Embedding features and s-derivative for species `typ` at `s`,
    /// through the table when compression is enabled. Writes into the
    /// caller's reused buffers — the per-neighbour inner loop must not
    /// allocate.
    #[inline]
    fn embed_into(
        &self,
        typ: usize,
        s: f64,
        g: &mut Vec<f64>,
        dg: &mut Vec<f64>,
        net_scratch: &mut EmbedScratch,
    ) {
        match &self.compressed {
            Some(tables) => tables[typ].forward_with_grad_into(s, g, dg),
            None => self.embeddings[typ].forward_with_grad_into(s, g, dg, net_scratch),
        }
    }

    /// Serialize to JSON (the "model file" the real code loads through TF).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Embedding pass for one atom: per-neighbour features, their
    /// s-derivatives, and T = GᵀR̃/nmax.
    fn embed_atom(&self, env: &Environment, scratch: &mut EmbedAtomScratch) -> AtomEmbed {
        let m1 = self.config.m1();
        let n = env.entries.len();
        let inv_nm = 1.0 / self.config.nmax as f64;
        let mut g = vec![0.0; n * m1]; // dpmd-allow D7: per-atom output retained in AtomEmbed
        let mut dg_ds = vec![0.0; n * m1]; // dpmd-allow D7: per-atom output retained in AtomEmbed
        let mut t = vec![0.0; m1 * 4]; // dpmd-allow D7: per-atom output retained in AtomEmbed
        for (k, e) in env.entries.iter().enumerate() {
            self.embed_into(e.typ as usize, e.s, &mut scratch.gv, &mut scratch.dgv, &mut scratch.net);
            let (gv, dgv) = (&scratch.gv, &scratch.dgv);
            let coords = e.coords();
            for m in 0..m1 {
                g[k * m1 + m] = gv[m];
                dg_ds[k * m1 + m] = dgv[m];
                for c in 0..4 {
                    t[m * 4 + c] += gv[m] * coords[c] * inv_nm;
                }
            }
        }
        AtomEmbed { g, dg_ds, t }
    }

    /// Fitting pass for one atom: D = T·T₂ᵀ, energy, and ∂E/∂D.
    fn fit_atom(&self, typ: u32, emb: &AtomEmbed) -> (f64, Vec<f64>) {
        let m1 = self.config.m1();
        let m2 = self.config.m2;
        let t = &emb.t;
        let mut d = vec![0.0; m1 * m2]; // dpmd-allow D7: per-atom descriptor row, moved into the fitting Matrix (f64 reference path)
        for a in 0..m1 {
            for b in 0..m2 {
                let mut acc = 0.0;
                for c in 0..4 {
                    acc += t[a * 4 + c] * t[b * 4 + c];
                }
                d[a * m2 + b] = acc;
            }
        }
        let dm = Matrix::from_vec(1, m1 * m2, d);
        let (e_out, de_dd_m) = self.fittings[typ as usize].energy_and_grad(&dm);
        (e_out[0] + self.energy_bias[typ as usize], de_dd_m.into_vec())
    }

    /// Forward pass for one atom's environment: its atomic energy.
    fn atom_energy(&self, typ: u32, env: &Environment) -> f64 {
        self.fit_atom(typ, &self.embed_atom(env, &mut EmbedAtomScratch::default())).0
    }

    /// Total energy only (no forces) — used by finite-difference tests and
    /// the trainer's loss evaluation.
    pub fn energy(&self, atoms: &Atoms, nl: &NeighborList, bx: &SimBox) -> f64 {
        let envs = build_environments(atoms, nl, bx, self.config.rcut_smth, self.config.rcut);
        (0..atoms.nlocal).map(|i| self.atom_energy(atoms.typ[i], &envs[i])).sum()
    }

    /// Per-atom energies (for training-bias fitting and diagnostics).
    pub fn atomic_energies(&self, atoms: &Atoms, nl: &NeighborList, bx: &SimBox) -> Vec<f64> {
        let envs = build_environments(atoms, nl, bx, self.config.rcut_smth, self.config.rcut);
        (0..atoms.nlocal).map(|i| self.atom_energy(atoms.typ[i], &envs[i])).collect()
    }

    /// Fitting + backward pass for one atom: energy out; force and virial
    /// contributions accumulated into `forces` / `virial`. `dt` is caller
    /// scratch of length M₁·4.
    #[allow(clippy::too_many_arguments)] // one argument per solo-pass output sink
    fn fit_backward_atom(
        &self,
        i: usize,
        typ: u32,
        env: &Environment,
        emb: &AtomEmbed,
        dt: &mut [f64],
        forces: &mut [Vec3],
        virial: &mut f64,
    ) -> f64 {
        let m1 = self.config.m1();
        let m2 = self.config.m2;
        let inv_nm = 1.0 / self.config.nmax as f64;
        let (energy, de_dd_fit) = self.fit_atom(typ, emb);

        // ∂E/∂T: dT[a][c] = Σ_b A[a][b]·T₂[b][c]; rows b < M₂ gain
        // Σ_a A[a][b]·T[a][c] from the T₂ factor.
        dt.iter_mut().for_each(|x| *x = 0.0);
        for a in 0..m1 {
            for b in 0..m2 {
                let aab = de_dd_fit[a * m2 + b];
                for c in 0..4 {
                    dt[a * 4 + c] += aab * emb.t[b * 4 + c];
                    dt[b * 4 + c] += aab * emb.t[a * 4 + c];
                }
            }
        }

        // Per-neighbour chain rule.
        for (k, e) in env.entries.iter().enumerate() {
            // ∂E/∂g_k and ∂E/∂R̃_k.
            let coords = e.coords();
            let mut de_ds = 0.0;
            let mut de_drt = [0.0; 4];
            for m in 0..m1 {
                let mut de_dg = 0.0;
                for c in 0..4 {
                    de_dg += dt[m * 4 + c] * coords[c];
                    de_drt[c] += dt[m * 4 + c] * emb.g[k * m1 + m];
                }
                de_ds += de_dg * inv_nm * emb.dg_ds[k * m1 + m];
            }
            for v in &mut de_drt {
                *v *= inv_nm;
            }
            // ∂E/∂d through the generalized coordinates and through s.
            let grads = e.coord_grads();
            let inv_r = 1.0 / e.r;
            let dsdd = [
                e.ds_dr * e.disp.x * inv_r,
                e.ds_dr * e.disp.y * inv_r,
                e.ds_dr * e.disp.z * inv_r,
            ];
            let mut de_dd = Vec3::ZERO;
            for axis in 0..3 {
                let mut v = de_ds * dsdd[axis];
                for c in 0..4 {
                    v += de_drt[c] * grads[c][axis];
                }
                de_dd[axis] = v;
            }
            // d = r_j − r_i: force on j is −∂E/∂d, reaction on i is +.
            let j = e.j as usize;
            forces[j] -= de_dd;
            forces[i] += de_dd;
            *virial += de_dd.dot(e.disp);
        }
        energy
    }

    /// Energy, forces, and virial via the full analytic backward pass.
    ///
    /// Forces are accumulated into `forces` (length = atoms.len(), ghosts
    /// included — ghost forces must be reverse-communicated by the caller in
    /// distributed runs, "Newton's law on"). Runs on the global thread pool;
    /// see [`energy_forces_on`](Self::energy_forces_on).
    pub fn energy_forces(
        &self,
        atoms: &Atoms,
        nl: &NeighborList,
        bx: &SimBox,
        forces: &mut [Vec3],
    ) -> PotentialOutput {
        self.energy_forces_on(ThreadPool::global(), atoms, nl, bx, forces).0
    }

    /// [`energy_forces`](Self::energy_forces) on an explicit pool, with the
    /// per-phase wall-time breakdown of the evaluation.
    ///
    /// The pipeline runs as three barrier-separated parallel passes —
    /// descriptor, embedding, fitting+backward — with atoms chunked by the
    /// even-split policy of `dpmd_balance::assign`. Chunk boundaries depend
    /// on the atom count only, every per-atom intermediate lands at a fixed
    /// index, and each fitting chunk accumulates forces into its own
    /// full-length buffer; the buffers (and per-chunk energy/virial
    /// partials) are then merged by this thread in chunk order. The result
    /// is therefore bit-identical for any pool width, including the
    /// 1-thread pool that serves as the serial reference.
    pub fn energy_forces_on(
        &self,
        pool: &ThreadPool,
        atoms: &Atoms,
        nl: &NeighborList,
        bx: &SimBox,
        forces: &mut [Vec3],
    ) -> (PotentialOutput, ForcePhases) {
        assert!(forces.len() >= atoms.len());
        let m1 = self.config.m1();
        let mut phases = ForcePhases::default();

        // Pass 1: descriptor (environment matrices).
        let t0 = wall_now();
        let envs =
            build_environments_on(pool, atoms, nl, bx, self.config.rcut_smth, self.config.rcut);
        phases.descriptor_s = t0.elapsed().as_secs_f64();

        let chunks = atom_chunks(atoms.nlocal);

        // Pass 2: embedding nets (the GEMM-heavy phase), intermediates
        // stored per atom.
        let t0 = wall_now();
        let mut emb_parts: Vec<Vec<AtomEmbed>> =
            chunks.iter().map(|c| Vec::with_capacity(c.len())).collect(); // dpmd-allow D7: O(chunks) staging per step
        {
            let envs = &envs;
            pool.scope(|sc| {
                for (range, part) in chunks.iter().zip(emb_parts.iter_mut()) {
                    let range = range.clone(); // dpmd-allow D7: Range clone is Copy-sized, no heap
                    sc.spawn(move || {
                        // One scratch per chunk worker: the per-neighbour
                        // embedding loop reuses its buffers for every atom
                        // in the range.
                        let mut scratch = EmbedAtomScratch::default();
                        part.extend(range.map(|i| self.embed_atom(&envs[i], &mut scratch)));
                    });
                }
            });
        }
        let embeds: Vec<AtomEmbed> = emb_parts.into_iter().flatten().collect(); // dpmd-allow D7: per-step output assembly in chunk order
        phases.embedding_s = t0.elapsed().as_secs_f64();

        // Pass 3: fitting nets + force backward, one force buffer per chunk.
        let t0 = wall_now();
        struct ChunkOut {
            energy: f64,
            virial: f64,
            forces: Vec<Vec3>,
        }
        let mut outs: Vec<Option<ChunkOut>> = chunks.iter().map(|_| None).collect(); // dpmd-allow D7: O(chunks) slots per step
        {
            let (envs, embeds) = (&envs, &embeds);
            let nall = atoms.len();
            pool.scope(|sc| {
                for (range, slot) in chunks.iter().zip(outs.iter_mut()) {
                    let range = range.clone(); // dpmd-allow D7: Range clone is Copy-sized, no heap
                    sc.spawn(move || {
                        let mut buf = vec![Vec3::ZERO; nall]; // dpmd-allow D7: one force buffer per chunk, amortized over the chunk's atoms
                        let mut energy = 0.0;
                        let mut virial = 0.0;
                        let mut dt = vec![0.0; m1 * 4]; // dpmd-allow D7: per-chunk scratch, reused per atom
                        for i in range {
                            energy += self.fit_backward_atom(
                                i,
                                atoms.typ[i],
                                &envs[i],
                                &embeds[i],
                                &mut dt,
                                &mut buf,
                                &mut virial,
                            );
                        }
                        *slot = Some(ChunkOut { energy, virial, forces: buf });
                    });
                }
            });
        }
        phases.fitting_s = t0.elapsed().as_secs_f64();

        // Deterministic fixed-order reduction: merge in chunk order.
        let t0 = wall_now();
        let mut total_e = 0.0;
        let mut virial = 0.0;
        for out in outs.into_iter().flatten() {
            total_e += out.energy;
            virial += out.virial;
            for (f, b) in forces.iter_mut().zip(&out.forces) {
                *f += *b;
            }
        }
        phases.reduction_s = t0.elapsed().as_secs_f64();

        (PotentialOutput { energy: total_e, virial: -virial }, phases)
    }
}

/// [`Potential`] adapter so a Deep Potential model plugs into `minimd`'s
/// simulation driver exactly like an analytic force field.
impl Potential for DeepPotModel {
    fn compute(&self, atoms: &mut Atoms, nl: &NeighborList, bx: &SimBox) -> PotentialOutput {
        let mut forces = std::mem::take(&mut atoms.force);
        let out = self.energy_forces(atoms, nl, bx, &mut forces);
        atoms.force = forces;
        out
    }

    fn cutoff(&self) -> f64 {
        self.config.rcut
    }

    fn name(&self) -> &'static str {
        "deep-potential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::atoms::{copper_species, water_species};
    use minimd::lattice::{fcc_copper, water_box};
    use minimd::neighbor::ListKind;

    fn tiny_cu_model() -> DeepPotModel {
        DeepPotModel::new(DeepPotConfig::tiny(1, 5.0))
    }

    fn cluster(positions: &[[f64; 3]], types: &[u32], water: bool) -> (SimBox, Atoms) {
        let bx = SimBox::cubic(60.0);
        let species = if water { water_species() } else { copper_species() };
        let mut atoms = Atoms::new(species);
        for (k, (p, &t)) in positions.iter().zip(types).enumerate() {
            atoms.push_local(k as u64 + 1, t, Vec3::new(p[0] + 30.0, p[1] + 30.0, p[2] + 30.0), Vec3::ZERO);
        }
        (bx, atoms)
    }

    fn eval(model: &DeepPotModel, bx: &SimBox, atoms: &mut Atoms) -> (f64, Vec<Vec3>) {
        let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
        nl.build(atoms, bx);
        let mut forces = vec![Vec3::ZERO; atoms.len()];
        let out = model.energy_forces(atoms, &nl, bx, &mut forces);
        (out.energy, forces)
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i/axis jointly index positions and forces
    fn forces_match_finite_difference() {
        let model = tiny_cu_model();
        let (bx, mut atoms) =
            cluster(&[[0.0, 0.0, 0.0], [2.2, 0.3, -0.4], [-0.8, 2.0, 1.1], [1.0, -1.7, 2.0]], &[0; 4], false);
        let (_, forces) = eval(&model, &bx, &mut atoms);
        let h = 1e-6;
        let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
        for i in 0..atoms.nlocal {
            for axis in 0..3 {
                let orig = atoms.pos[i][axis];
                atoms.pos[i][axis] = orig + h;
                nl.build(&atoms, &bx);
                let ep = model.energy(&atoms, &nl, &bx);
                atoms.pos[i][axis] = orig - h;
                nl.build(&atoms, &bx);
                let em = model.energy(&atoms, &nl, &bx);
                atoms.pos[i][axis] = orig;
                let fd = -(ep - em) / (2.0 * h);
                assert!(
                    (fd - forces[i][axis]).abs() < 1e-6,
                    "atom {i} axis {axis}: fd={fd} an={}",
                    forces[i][axis]
                );
            }
        }
    }

    #[test]
    fn energy_is_translation_invariant() {
        let model = tiny_cu_model();
        let pos = [[0.0, 0.0, 0.0], [2.0, 0.5, 0.0], [0.3, 1.9, -1.0]];
        let (bx, mut a1) = cluster(&pos, &[0; 3], false);
        let (e1, _) = eval(&model, &bx, &mut a1);
        let shifted: Vec<[f64; 3]> =
            pos.iter().map(|p| [p[0] + 3.3, p[1] - 2.1, p[2] + 0.7]).collect();
        let (_, mut a2) = cluster(&shifted, &[0; 3], false);
        let (e2, _) = eval(&model, &bx, &mut a2);
        assert!((e1 - e2).abs() < 1e-10, "{e1} vs {e2}");
    }

    #[test]
    fn energy_is_rotation_invariant() {
        let model = tiny_cu_model();
        let pos = [[0.0, 0.0, 0.0], [2.0, 0.5, 0.0], [0.3, 1.9, -1.0], [-1.2, 0.4, 1.6]];
        let (bx, mut a1) = cluster(&pos, &[0; 4], false);
        let (e1, _) = eval(&model, &bx, &mut a1);
        // Rotate 40° about z then 25° about x.
        let (c1, s1) = (40.0f64.to_radians().cos(), 40.0f64.to_radians().sin());
        let (c2, s2) = (25.0f64.to_radians().cos(), 25.0f64.to_radians().sin());
        let rot = |p: &[f64; 3]| {
            let (x, y, z) = (p[0], p[1], p[2]);
            let (x1, y1, z1) = (c1 * x - s1 * y, s1 * x + c1 * y, z);
            [x1, c2 * y1 - s2 * z1, s2 * y1 + c2 * z1]
        };
        let rotated: Vec<[f64; 3]> = pos.iter().map(rot).collect();
        let (_, mut a2) = cluster(&rotated, &[0; 4], false);
        let (e2, _) = eval(&model, &bx, &mut a2);
        assert!((e1 - e2).abs() < 1e-9, "{e1} vs {e2}");
    }

    #[test]
    fn energy_is_permutation_invariant() {
        let model = tiny_cu_model();
        let pos = [[0.0, 0.0, 0.0], [2.0, 0.5, 0.0], [0.3, 1.9, -1.0]];
        let (bx, mut a1) = cluster(&pos, &[0; 3], false);
        let (e1, _) = eval(&model, &bx, &mut a1);
        let permuted = [pos[2], pos[0], pos[1]];
        let (_, mut a2) = cluster(&permuted, &[0; 3], false);
        let (e2, _) = eval(&model, &bx, &mut a2);
        assert!((e1 - e2).abs() < 1e-10);
    }

    #[test]
    fn net_force_is_zero() {
        let model = tiny_cu_model();
        let (bx, mut atoms) =
            cluster(&[[0.0, 0.0, 0.0], [2.2, 0.3, -0.4], [-0.8, 2.0, 1.1]], &[0; 3], false);
        let (_, forces) = eval(&model, &bx, &mut atoms);
        let net = forces.iter().fold(Vec3::ZERO, |a, &f| a + f);
        assert!(net.norm() < 1e-10, "net force {net:?}");
    }

    #[test]
    fn multitype_water_model_runs_and_conserves_momentum() {
        let model = DeepPotModel::new(DeepPotConfig::tiny(2, 5.0));
        let (bx, mut atoms) = water_box(4, 4, 4, 17);
        let (e, forces) = eval(&model, &bx, &mut atoms);
        assert!(e.is_finite());
        let net = forces.iter().fold(Vec3::ZERO, |a, &f| a + f);
        assert!(net.norm() < 1e-8, "net force {net:?}");
    }

    #[test]
    fn model_json_round_trip_is_exact() {
        let model = tiny_cu_model();
        let back = DeepPotModel::from_json(&model.to_json()).unwrap();
        let (bx, mut atoms) = cluster(&[[0.0, 0.0, 0.0], [2.0, 0.4, 0.2]], &[0; 2], false);
        let (e1, _) = eval(&model, &bx, &mut atoms);
        let (e2, _) = eval(&back, &bx, &mut atoms);
        assert_eq!(e1, e2);
    }

    #[test]
    fn compressed_model_matches_exact_model() {
        // DP-Compress (ref [42]): tabulated embeddings must reproduce the
        // exact MLP evaluation to high accuracy, for energies AND forces.
        let mut model = tiny_cu_model();
        let (bx, mut atoms) = cluster(
            &[[0.0, 0.0, 0.0], [2.2, 0.3, -0.4], [-0.8, 2.0, 1.1], [1.0, -1.7, 2.0]],
            &[0; 4],
            false,
        );
        let (e_exact, f_exact) = eval(&model, &bx, &mut atoms);
        model.enable_compression(256);
        let (e_tab, f_tab) = eval(&model, &bx, &mut atoms);
        assert!((e_exact - e_tab).abs() < 1e-6, "{e_exact} vs {e_tab}");
        for i in 0..atoms.nlocal {
            assert!((f_exact[i] - f_tab[i]).norm() < 1e-4, "atom {i}");
        }
        model.disable_compression();
        let (e_back, _) = eval(&model, &bx, &mut atoms);
        assert_eq!(e_back, e_exact, "disable restores the exact path");
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_across_pool_widths() {
        // The chunk structure is a function of the atom count only and the
        // reduction merges per-chunk buffers in chunk order, so every pool
        // width — including the 1-thread serial reference — must produce
        // the same bits.
        let model = tiny_cu_model();
        let (bx, mut atoms) = fcc_copper(4, 4, 4);
        for (k, p) in atoms.pos.iter_mut().enumerate() {
            p.y += 0.03 * ((k % 5) as f64 - 2.0);
        }
        let mut nl = NeighborList::new(model.config.rcut, 1.0, ListKind::Full);
        nl.build(&atoms, &bx);
        let serial = dpmd_threads::ThreadPool::serial();
        let mut f_ref = vec![Vec3::ZERO; atoms.len()];
        let (out_ref, phases) = model.energy_forces_on(&serial, &atoms, &nl, &bx, &mut f_ref);
        assert!(phases.total() > 0.0, "phases must be timed");
        for threads in [2usize, 4, 7] {
            let pool = dpmd_threads::ThreadPool::new(threads);
            let mut f = vec![Vec3::ZERO; atoms.len()];
            let (out, _) = model.energy_forces_on(&pool, &atoms, &nl, &bx, &mut f);
            assert_eq!(out_ref.energy, out.energy, "{threads} threads");
            assert_eq!(out_ref.virial, out.virial, "{threads} threads");
            assert_eq!(f_ref, f, "{threads} threads");
        }
    }

    #[test]
    fn potential_trait_adapter_matches_direct_call() {
        let model = tiny_cu_model();
        let (bx, mut atoms) = fcc_copper(3, 3, 3);
        let mut nl = NeighborList::new(model.config.rcut, 1.0, ListKind::Full);
        nl.build(&atoms, &bx);
        atoms.zero_forces();
        let via_trait = model.compute(&mut atoms, &nl, &bx);
        let mut forces = vec![Vec3::ZERO; atoms.len()];
        let direct = model.energy_forces(&atoms, &nl, &bx, &mut forces);
        assert_eq!(via_trait.energy, direct.energy);
        for (a, b) in atoms.force.iter().zip(&forces).take(atoms.nlocal) {
            assert_eq!(a, b);
        }
    }
}
