//! The Deep Potential model: energy via forward propagation, forces via the
//! analytic backward pass (paper Fig. 1b).
//!
//! The f64 implementation here is the *reference* path; the mixed-precision
//! and TensorFlow-graph execution paths (crate modules [`crate::engine`] and
//! the `nnet::graph` baseline) are validated against it.

use minimd::atoms::Atoms;
use minimd::neighbor::NeighborList;
use minimd::potential::{Potential, PotentialOutput};
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;
use nnet::matrix::Matrix;
use serde::{Deserialize, Serialize};

use crate::compress::CompressedEmbedding;
use crate::config::DeepPotConfig;
use crate::descriptor::{build_environments, Environment};
use crate::embedding::EmbeddingNet;
use crate::fitting::FittingNet;

/// A complete Deep Potential model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeepPotModel {
    /// Hyper-parameters.
    pub config: DeepPotConfig,
    /// One embedding net per *neighbour* species.
    pub embeddings: Vec<EmbeddingNet>,
    /// One fitting net per *central* species.
    pub fittings: Vec<FittingNet>,
    /// Per-species energy bias (fitted to the reference data's mean).
    pub energy_bias: Vec<f64>,
    /// DP-Compress tables (one per species) replacing the embedding MLPs
    /// during evaluation when present — the compression of ref [42] that
    /// the baseline work [33] already deploys on Fugaku.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub compressed: Option<Vec<CompressedEmbedding>>,
}

/// Everything the backward pass needs about one atom's forward evaluation.
struct AtomForward {
    /// Per-neighbour embedding features (n × M₁, row-major).
    g: Vec<f64>,
    /// Per-neighbour feature derivative w.r.t. s (n × M₁).
    dg_ds: Vec<f64>,
    /// T = GᵀR̃/nmax (M₁ × 4, row-major).
    t: Vec<f64>,
    /// Atomic energy.
    energy: f64,
    /// ∂E/∂D (M₁ × M₂, row-major).
    de_dd: Vec<f64>,
}

impl DeepPotModel {
    /// A freshly initialized (untrained) model.
    pub fn new(config: DeepPotConfig) -> Self {
        config.validate();
        let embeddings = (0..config.ntypes)
            .map(|t| EmbeddingNet::new(&config.embedding_widths, config.seed ^ (t as u64).wrapping_mul(0x9e37)))
            .collect();
        let fittings = (0..config.ntypes)
            .map(|t| {
                FittingNet::new(
                    config.descriptor_len(),
                    &config.fitting_widths,
                    config.seed ^ (t as u64).wrapping_mul(0x85eb) ^ 0xffff,
                )
            })
            .collect();
        let energy_bias = vec![0.0; config.ntypes];
        DeepPotModel { config, embeddings, fittings, energy_bias, compressed: None }
    }

    /// Build DP-Compress tables from the (trained) embedding nets and use
    /// them for every subsequent evaluation. `intervals` controls accuracy
    /// (the paper-style deployment uses a few hundred).
    ///
    /// The table domain covers `s ∈ [0, s_max]` with
    /// `s_max = 1/min(r_cs, 0.8 Å)` — every physically reachable switching
    /// value; out-of-range inputs clamp (documented in `compress`).
    pub fn enable_compression(&mut self, intervals: usize) {
        let s_max = 1.0 / self.config.rcut_smth.min(0.8);
        self.compressed = Some(
            self.embeddings
                .iter()
                .map(|e| CompressedEmbedding::build(e, 0.0, s_max, intervals))
                .collect(),
        );
    }

    /// Drop the compression tables (back to exact MLP evaluation).
    pub fn disable_compression(&mut self) {
        self.compressed = None;
    }

    /// Embedding features and s-derivative for species `typ` at `s`,
    /// through the table when compression is enabled.
    #[inline]
    fn embed(&self, typ: usize, s: f64) -> (Vec<f64>, Vec<f64>) {
        match &self.compressed {
            Some(tables) => tables[typ].forward_with_grad(s),
            None => self.embeddings[typ].forward_with_grad(s),
        }
    }

    /// Serialize to JSON (the "model file" the real code loads through TF).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Forward pass for one atom's environment: features, T, energy, ∂E/∂D.
    fn forward_atom(&self, typ: u32, env: &Environment) -> AtomForward {
        let m1 = self.config.m1();
        let m2 = self.config.m2;
        let n = env.entries.len();
        let inv_nm = 1.0 / self.config.nmax as f64;

        let mut g = vec![0.0; n * m1];
        let mut dg_ds = vec![0.0; n * m1];
        let mut t = vec![0.0; m1 * 4];
        for (k, e) in env.entries.iter().enumerate() {
            let (gv, dgv) = self.embed(e.typ as usize, e.s);
            let coords = e.coords();
            for m in 0..m1 {
                g[k * m1 + m] = gv[m];
                dg_ds[k * m1 + m] = dgv[m];
                for c in 0..4 {
                    t[m * 4 + c] += gv[m] * coords[c] * inv_nm;
                }
            }
        }
        // D = T · T₂ᵀ (M₁ × M₂).
        let mut d = vec![0.0; m1 * m2];
        for a in 0..m1 {
            for b in 0..m2 {
                let mut acc = 0.0;
                for c in 0..4 {
                    acc += t[a * 4 + c] * t[b * 4 + c];
                }
                d[a * m2 + b] = acc;
            }
        }
        let dm = Matrix::from_vec(1, m1 * m2, d);
        let (e_out, de_dd_m) = self.fittings[typ as usize].energy_and_grad(&dm);
        AtomForward {
            g,
            dg_ds,
            t,
            energy: e_out[0] + self.energy_bias[typ as usize],
            de_dd: de_dd_m.into_vec(),
        }
    }

    /// Total energy only (no forces) — used by finite-difference tests and
    /// the trainer's loss evaluation.
    pub fn energy(&self, atoms: &Atoms, nl: &NeighborList, bx: &SimBox) -> f64 {
        let envs = build_environments(atoms, nl, bx, self.config.rcut_smth, self.config.rcut);
        (0..atoms.nlocal).map(|i| self.forward_atom(atoms.typ[i], &envs[i]).energy).sum()
    }

    /// Per-atom energies (for training-bias fitting and diagnostics).
    pub fn atomic_energies(&self, atoms: &Atoms, nl: &NeighborList, bx: &SimBox) -> Vec<f64> {
        let envs = build_environments(atoms, nl, bx, self.config.rcut_smth, self.config.rcut);
        (0..atoms.nlocal).map(|i| self.forward_atom(atoms.typ[i], &envs[i]).energy).collect()
    }

    /// Energy, forces, and virial via the full analytic backward pass.
    ///
    /// Forces are accumulated into `forces` (length = atoms.len(), ghosts
    /// included — ghost forces must be reverse-communicated by the caller in
    /// distributed runs, "Newton's law on").
    pub fn energy_forces(
        &self,
        atoms: &Atoms,
        nl: &NeighborList,
        bx: &SimBox,
        forces: &mut [Vec3],
    ) -> PotentialOutput {
        assert!(forces.len() >= atoms.len());
        let m1 = self.config.m1();
        let m2 = self.config.m2;
        let inv_nm = 1.0 / self.config.nmax as f64;
        let envs = build_environments(atoms, nl, bx, self.config.rcut_smth, self.config.rcut);

        let mut total_e = 0.0;
        let mut virial = 0.0;
        let mut dt = vec![0.0; m1 * 4];
        for i in 0..atoms.nlocal {
            let env = &envs[i];
            let fwd = self.forward_atom(atoms.typ[i], env);
            total_e += fwd.energy;

            // ∂E/∂T: dT[a][c] = Σ_b A[a][b]·T₂[b][c]; rows b < M₂ gain
            // Σ_a A[a][b]·T[a][c] from the T₂ factor.
            dt.iter_mut().for_each(|x| *x = 0.0);
            for a in 0..m1 {
                for b in 0..m2 {
                    let aab = fwd.de_dd[a * m2 + b];
                    for c in 0..4 {
                        dt[a * 4 + c] += aab * fwd.t[b * 4 + c];
                        dt[b * 4 + c] += aab * fwd.t[a * 4 + c];
                    }
                }
            }

            // Per-neighbour chain rule.
            for (k, e) in env.entries.iter().enumerate() {
                // ∂E/∂g_k and ∂E/∂R̃_k.
                let coords = e.coords();
                let mut de_ds = 0.0;
                let mut de_drt = [0.0; 4];
                for m in 0..m1 {
                    let mut de_dg = 0.0;
                    for c in 0..4 {
                        de_dg += dt[m * 4 + c] * coords[c];
                        de_drt[c] += dt[m * 4 + c] * fwd.g[k * m1 + m];
                    }
                    de_ds += de_dg * inv_nm * fwd.dg_ds[k * m1 + m];
                }
                for v in &mut de_drt {
                    *v *= inv_nm;
                }
                // ∂E/∂d through the generalized coordinates and through s.
                let grads = e.coord_grads();
                let inv_r = 1.0 / e.r;
                let dsdd = [
                    e.ds_dr * e.disp.x * inv_r,
                    e.ds_dr * e.disp.y * inv_r,
                    e.ds_dr * e.disp.z * inv_r,
                ];
                let mut de_dd = Vec3::ZERO;
                for axis in 0..3 {
                    let mut v = de_ds * dsdd[axis];
                    for c in 0..4 {
                        v += de_drt[c] * grads[c][axis];
                    }
                    de_dd[axis] = v;
                }
                // d = r_j − r_i: force on j is −∂E/∂d, reaction on i is +.
                let j = e.j as usize;
                forces[j] -= de_dd;
                forces[i] += de_dd;
                virial += de_dd.dot(e.disp);
            }
        }
        PotentialOutput { energy: total_e, virial: -virial }
    }
}

/// [`Potential`] adapter so a Deep Potential model plugs into `minimd`'s
/// simulation driver exactly like an analytic force field.
impl Potential for DeepPotModel {
    fn compute(&self, atoms: &mut Atoms, nl: &NeighborList, bx: &SimBox) -> PotentialOutput {
        let mut forces = std::mem::take(&mut atoms.force);
        let out = self.energy_forces(atoms, nl, bx, &mut forces);
        atoms.force = forces;
        out
    }

    fn cutoff(&self) -> f64 {
        self.config.rcut
    }

    fn name(&self) -> &'static str {
        "deep-potential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::atoms::{copper_species, water_species};
    use minimd::lattice::{fcc_copper, water_box};
    use minimd::neighbor::ListKind;

    fn tiny_cu_model() -> DeepPotModel {
        DeepPotModel::new(DeepPotConfig::tiny(1, 5.0))
    }

    fn cluster(positions: &[[f64; 3]], types: &[u32], water: bool) -> (SimBox, Atoms) {
        let bx = SimBox::cubic(60.0);
        let species = if water { water_species() } else { copper_species() };
        let mut atoms = Atoms::new(species);
        for (k, (p, &t)) in positions.iter().zip(types).enumerate() {
            atoms.push_local(k as u64 + 1, t, Vec3::new(p[0] + 30.0, p[1] + 30.0, p[2] + 30.0), Vec3::ZERO);
        }
        (bx, atoms)
    }

    fn eval(model: &DeepPotModel, bx: &SimBox, atoms: &mut Atoms) -> (f64, Vec<Vec3>) {
        let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
        nl.build(atoms, bx);
        let mut forces = vec![Vec3::ZERO; atoms.len()];
        let out = model.energy_forces(atoms, &nl, bx, &mut forces);
        (out.energy, forces)
    }

    #[test]
    fn forces_match_finite_difference() {
        let model = tiny_cu_model();
        let (bx, mut atoms) =
            cluster(&[[0.0, 0.0, 0.0], [2.2, 0.3, -0.4], [-0.8, 2.0, 1.1], [1.0, -1.7, 2.0]], &[0; 4], false);
        let (_, forces) = eval(&model, &bx, &mut atoms);
        let h = 1e-6;
        let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
        for i in 0..atoms.nlocal {
            for axis in 0..3 {
                let orig = atoms.pos[i][axis];
                atoms.pos[i][axis] = orig + h;
                nl.build(&atoms, &bx);
                let ep = model.energy(&atoms, &nl, &bx);
                atoms.pos[i][axis] = orig - h;
                nl.build(&atoms, &bx);
                let em = model.energy(&atoms, &nl, &bx);
                atoms.pos[i][axis] = orig;
                let fd = -(ep - em) / (2.0 * h);
                assert!(
                    (fd - forces[i][axis]).abs() < 1e-6,
                    "atom {i} axis {axis}: fd={fd} an={}",
                    forces[i][axis]
                );
            }
        }
    }

    #[test]
    fn energy_is_translation_invariant() {
        let model = tiny_cu_model();
        let pos = [[0.0, 0.0, 0.0], [2.0, 0.5, 0.0], [0.3, 1.9, -1.0]];
        let (bx, mut a1) = cluster(&pos, &[0; 3], false);
        let (e1, _) = eval(&model, &bx, &mut a1);
        let shifted: Vec<[f64; 3]> =
            pos.iter().map(|p| [p[0] + 3.3, p[1] - 2.1, p[2] + 0.7]).collect();
        let (_, mut a2) = cluster(&shifted, &[0; 3], false);
        let (e2, _) = eval(&model, &bx, &mut a2);
        assert!((e1 - e2).abs() < 1e-10, "{e1} vs {e2}");
    }

    #[test]
    fn energy_is_rotation_invariant() {
        let model = tiny_cu_model();
        let pos = [[0.0, 0.0, 0.0], [2.0, 0.5, 0.0], [0.3, 1.9, -1.0], [-1.2, 0.4, 1.6]];
        let (bx, mut a1) = cluster(&pos, &[0; 4], false);
        let (e1, _) = eval(&model, &bx, &mut a1);
        // Rotate 40° about z then 25° about x.
        let (c1, s1) = (40.0f64.to_radians().cos(), 40.0f64.to_radians().sin());
        let (c2, s2) = (25.0f64.to_radians().cos(), 25.0f64.to_radians().sin());
        let rot = |p: &[f64; 3]| {
            let (x, y, z) = (p[0], p[1], p[2]);
            let (x1, y1, z1) = (c1 * x - s1 * y, s1 * x + c1 * y, z);
            [x1, c2 * y1 - s2 * z1, s2 * y1 + c2 * z1]
        };
        let rotated: Vec<[f64; 3]> = pos.iter().map(rot).collect();
        let (_, mut a2) = cluster(&rotated, &[0; 4], false);
        let (e2, _) = eval(&model, &bx, &mut a2);
        assert!((e1 - e2).abs() < 1e-9, "{e1} vs {e2}");
    }

    #[test]
    fn energy_is_permutation_invariant() {
        let model = tiny_cu_model();
        let pos = [[0.0, 0.0, 0.0], [2.0, 0.5, 0.0], [0.3, 1.9, -1.0]];
        let (bx, mut a1) = cluster(&pos, &[0; 3], false);
        let (e1, _) = eval(&model, &bx, &mut a1);
        let permuted = [pos[2], pos[0], pos[1]];
        let (_, mut a2) = cluster(&permuted, &[0; 3], false);
        let (e2, _) = eval(&model, &bx, &mut a2);
        assert!((e1 - e2).abs() < 1e-10);
    }

    #[test]
    fn net_force_is_zero() {
        let model = tiny_cu_model();
        let (bx, mut atoms) =
            cluster(&[[0.0, 0.0, 0.0], [2.2, 0.3, -0.4], [-0.8, 2.0, 1.1]], &[0; 3], false);
        let (_, forces) = eval(&model, &bx, &mut atoms);
        let net = forces.iter().fold(Vec3::ZERO, |a, &f| a + f);
        assert!(net.norm() < 1e-10, "net force {net:?}");
    }

    #[test]
    fn multitype_water_model_runs_and_conserves_momentum() {
        let model = DeepPotModel::new(DeepPotConfig::tiny(2, 5.0));
        let (bx, mut atoms) = water_box(4, 4, 4, 17);
        let (e, forces) = eval(&model, &bx, &mut atoms);
        assert!(e.is_finite());
        let net = forces.iter().fold(Vec3::ZERO, |a, &f| a + f);
        assert!(net.norm() < 1e-8, "net force {net:?}");
    }

    #[test]
    fn model_json_round_trip_is_exact() {
        let model = tiny_cu_model();
        let back = DeepPotModel::from_json(&model.to_json()).unwrap();
        let (bx, mut atoms) = cluster(&[[0.0, 0.0, 0.0], [2.0, 0.4, 0.2]], &[0; 2], false);
        let (e1, _) = eval(&model, &bx, &mut atoms);
        let (e2, _) = eval(&back, &bx, &mut atoms);
        assert_eq!(e1, e2);
    }

    #[test]
    fn compressed_model_matches_exact_model() {
        // DP-Compress (ref [42]): tabulated embeddings must reproduce the
        // exact MLP evaluation to high accuracy, for energies AND forces.
        let mut model = tiny_cu_model();
        let (bx, mut atoms) = cluster(
            &[[0.0, 0.0, 0.0], [2.2, 0.3, -0.4], [-0.8, 2.0, 1.1], [1.0, -1.7, 2.0]],
            &[0; 4],
            false,
        );
        let (e_exact, f_exact) = eval(&model, &bx, &mut atoms);
        model.enable_compression(256);
        let (e_tab, f_tab) = eval(&model, &bx, &mut atoms);
        assert!((e_exact - e_tab).abs() < 1e-6, "{e_exact} vs {e_tab}");
        for i in 0..atoms.nlocal {
            assert!((f_exact[i] - f_tab[i]).norm() < 1e-4, "atom {i}");
        }
        model.disable_compression();
        let (e_back, _) = eval(&model, &bx, &mut atoms);
        assert_eq!(e_back, e_exact, "disable restores the exact path");
    }

    #[test]
    fn potential_trait_adapter_matches_direct_call() {
        let model = tiny_cu_model();
        let (bx, mut atoms) = fcc_copper(3, 3, 3);
        let mut nl = NeighborList::new(model.config.rcut, 1.0, ListKind::Full);
        nl.build(&atoms, &bx);
        atoms.zero_forces();
        let via_trait = model.compute(&mut atoms, &nl, &bx);
        let mut forces = vec![Vec3::ZERO; atoms.len()];
        let direct = model.energy_forces(&atoms, &nl, &bx, &mut forces);
        assert_eq!(via_trait.energy, direct.energy);
        for i in 0..atoms.nlocal {
            assert_eq!(atoms.force[i], forces[i]);
        }
    }
}
