//! # deepmd — the Deep Potential model
//!
//! A from-scratch implementation of the smooth-edition Deep Potential
//! (`se_a`) force field that DeePMD-kit executes, matching the architecture
//! in the paper's Fig. 1:
//!
//! 1. the **local environment matrix** `R̃_i` built from the neighbour list
//!    within cutoff `r_c`, smoothed by the switching function `s(r)`
//!    ([`descriptor`]);
//! 2. the **embedding net** mapping `s(r)` to an `M₁`-wide feature per
//!    neighbour, one net per neighbour species ([`embedding`]), optionally
//!    replaced by the tabulated **compressed** form of DP Compress
//!    ([`compress`]);
//! 3. the symmetry-preserving **descriptor** `D_i = (GᵀR̃)(R̃ᵀG₂)ᵀ/N²`
//!    (translation/rotation/permutation invariant — property-tested);
//! 4. the **fitting net** (240×240×240 in the paper) producing the atomic
//!    energy `E_i`; the total energy is `Σ_i E_i` and forces come from the
//!    analytic backward pass ([`model`]);
//! 5. **mixed-precision inference paths** (Double / MIX-fp32 / MIX-fp16)
//!    mirroring §III-B3 ([`engine`]);
//! 6. **training** against reference potentials standing in for AIMD labels
//!    (Adam, energy-matching loss) ([`train`], [`dataset`]);
//! 7. the **type-sorted environment layout** vs the baseline
//!    slice-and-concat handling of multi-species systems ([`typesort`]).

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod batch;
pub mod compress;
pub mod config;
pub mod dataset;
pub mod descriptor;
pub mod embedding;
pub mod engine;
pub mod fitting;
pub mod graph_exec;
pub mod model;
pub mod train;
pub mod typesort;

pub use config::DeepPotConfig;
pub use engine::DpEngine;
pub use model::DeepPotModel;
