//! The embedding net: `s(r) ↦ g ∈ R^{M₁}` per neighbour (paper Fig. 1b).
//!
//! One net per neighbour species (the `se_a` convention). Input is the
//! single scalar `s(r)`, so the Jacobian needed by the force backward pass
//! is a single column — computed here by forward-mode differentiation in
//! the same sweep as the value.

use nnet::activation::Activation;
use nnet::layers::{Dense, Mlp, Resnet};
use nnet::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// An embedding network (all-tanh MLP from 1 scalar to M₁ features).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EmbeddingNet {
    /// The underlying MLP (kept public for the trainer).
    pub mlp: Mlp,
}

impl EmbeddingNet {
    /// Build with DeePMD's resnet policy (identity when widths repeat,
    /// doubling when a width doubles).
    pub fn new(widths: &[usize], seed: u64) -> Self {
        assert!(!widths.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(widths.len());
        let mut prev = 1usize;
        for &w in widths {
            let resnet = if w == prev {
                Resnet::Identity
            } else if w == 2 * prev {
                Resnet::Doubling
            } else {
                Resnet::None
            };
            layers.push(Dense::xavier(prev, w, Activation::Tanh, resnet, &mut rng));
            prev = w;
        }
        EmbeddingNet { mlp: Mlp::new(layers) }
    }

    /// Output feature width M₁.
    pub fn m1(&self) -> usize {
        self.mlp.out_dim()
    }

    /// Evaluate `g(s)` alone.
    pub fn forward(&self, s: f64) -> Vec<f64> {
        let x = Matrix::from_vec(1, 1, vec![s]);
        self.mlp.forward_infer(&x).into_vec()
    }

    /// Evaluate `g(s)` and `dg/ds` in one forward-mode sweep. Convenience
    /// wrapper for cold paths and tests; the per-neighbour hot loop uses
    /// [`forward_with_grad_into`](Self::forward_with_grad_into) with
    /// reused buffers.
    pub fn forward_with_grad(&self, s: f64) -> (Vec<f64>, Vec<f64>) {
        let mut g = Vec::default();
        let mut dg = Vec::default();
        self.forward_with_grad_into(s, &mut g, &mut dg, &mut EmbedScratch::default());
        (g, dg)
    }

    /// Evaluate `g(s)` and `dg/ds` into caller-owned buffers. With `g`,
    /// `dg`, and `scratch` reused across calls, the sweep is allocation-free
    /// after the first-call growth — this is the per-neighbour inner loop of
    /// the embedding pass.
    pub fn forward_with_grad_into(
        &self,
        s: f64,
        g: &mut Vec<f64>,
        dg: &mut Vec<f64>,
        scratch: &mut EmbedScratch,
    ) {
        let EmbedScratch { val, tan, pre, dpre, out, dout } = scratch;
        val.clear();
        val.push(s);
        tan.clear();
        tan.push(1.0);
        for layer in &self.mlp.layers {
            let (ind, outd) = (layer.in_dim(), layer.out_dim());
            debug_assert_eq!(val.len(), ind);
            pre.clear();
            pre.extend_from_slice(&layer.b);
            dpre.clear();
            dpre.resize(outd, 0.0);
            for i in 0..ind {
                let row = layer.w.row(i);
                for (o, &w) in row.iter().enumerate() {
                    pre[o] += val[i] * w;
                    dpre[o] += tan[i] * w;
                }
            }
            out.clear();
            out.resize(outd, 0.0);
            dout.clear();
            dout.resize(outd, 0.0);
            for o in 0..outd {
                out[o] = layer.act.apply(pre[o]);
                dout[o] = layer.act.derivative(pre[o]) * dpre[o];
            }
            match layer.resnet {
                Resnet::None => {}
                Resnet::Identity => {
                    for i in 0..ind {
                        out[i] += val[i];
                        dout[i] += tan[i];
                    }
                }
                Resnet::Doubling => {
                    for i in 0..ind {
                        out[i] += val[i];
                        out[i + ind] += val[i];
                        dout[i] += tan[i];
                        dout[i + ind] += tan[i];
                    }
                }
            }
            std::mem::swap(val, out);
            std::mem::swap(tan, dout);
        }
        g.clear();
        g.extend_from_slice(val);
        dg.clear();
        dg.extend_from_slice(tan);
    }
}

/// Reusable forward-mode sweep buffers for
/// [`EmbeddingNet::forward_with_grad_into`]: one set per worker, reused
/// across every neighbour of every atom, so the embedding inner loop stops
/// allocating once the buffers have grown to the network width.
#[derive(Debug, Default)]
pub struct EmbedScratch {
    val: Vec<f64>,
    tan: Vec<f64>,
    pre: Vec<f64>,
    dpre: Vec<f64>,
    out: Vec<f64>,
    dout: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_mlp_reference() {
        let net = EmbeddingNet::new(&[4, 8], 3);
        assert_eq!(net.m1(), 8);
        let (g, _) = net.forward_with_grad(0.37);
        let reference = net.forward(0.37);
        for (a, b) in g.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let net = EmbeddingNet::new(&[4, 8], 5);
        let s = 0.61;
        let h = 1e-7;
        let (_, dg) = net.forward_with_grad(s);
        let gp = net.forward(s + h);
        let gm = net.forward(s - h);
        for k in 0..net.m1() {
            let fd = (gp[k] - gm[k]) / (2.0 * h);
            assert!((fd - dg[k]).abs() < 1e-6, "feature {k}: fd={fd} an={}", dg[k]);
        }
    }

    #[test]
    fn resnet_policy_applied() {
        let net = EmbeddingNet::new(&[8, 16, 16], 1);
        assert_eq!(net.mlp.layers[0].resnet, Resnet::None); // 1 -> 8
        assert_eq!(net.mlp.layers[1].resnet, Resnet::Doubling); // 8 -> 16
        assert_eq!(net.mlp.layers[2].resnet, Resnet::Identity); // 16 -> 16
    }

    #[test]
    fn deterministic_per_seed() {
        let a = EmbeddingNet::new(&[4, 8], 9);
        let b = EmbeddingNet::new(&[4, 8], 9);
        assert_eq!(a.forward(0.5), b.forward(0.5));
    }
}
