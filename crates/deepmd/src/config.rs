//! Model hyper-parameters.

use serde::{Deserialize, Serialize};

/// Architecture and cutoff configuration of a Deep Potential model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeepPotConfig {
    /// Number of atomic species.
    pub ntypes: usize,
    /// Cutoff radius `r_c`, Å (paper: 8 Å copper, 6 Å water).
    pub rcut: f64,
    /// Inner radius `r_cs` where the switching function starts, Å.
    pub rcut_smth: f64,
    /// Maximum neighbours budgeted per central atom (paper: 512 for Cu,
    /// 92/46 for O/H). Used as the descriptor normalization constant.
    pub nmax: usize,
    /// Embedding-net hidden widths; the last entry is the feature width M₁.
    pub embedding_widths: Vec<usize>,
    /// Number of leading feature columns M₂ used for the second factor of
    /// the descriptor (M₂ ≤ M₁).
    pub m2: usize,
    /// Fitting-net hidden widths (paper: [240, 240, 240]).
    pub fitting_widths: Vec<usize>,
    /// Seed for deterministic weight initialization.
    pub seed: u64,
}

impl DeepPotConfig {
    /// Feature width M₁ (last embedding layer).
    pub fn m1(&self) -> usize {
        *self.embedding_widths.last().expect("embedding must have layers")
    }

    /// Descriptor length M₁ × M₂ — the fitting-net input width.
    pub fn descriptor_len(&self) -> usize {
        self.m1() * self.m2
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    /// On contradictory settings.
    pub fn validate(&self) {
        assert!(self.ntypes > 0, "need at least one species");
        assert!(self.rcut > 0.0 && self.rcut_smth >= 0.0 && self.rcut_smth < self.rcut);
        assert!(self.nmax > 0);
        assert!(!self.embedding_widths.is_empty());
        assert!(self.m2 > 0 && self.m2 <= self.m1(), "M2 must be within M1");
        assert!(!self.fitting_widths.is_empty());
    }

    /// Paper-shaped copper model: r_c = 8 Å, 512-neighbour budget, fitting
    /// net (240, 240, 240). The embedding is the compressed-size variant
    /// (16×4 descriptor) that the baseline work [33] already uses on Fugaku.
    pub fn copper() -> Self {
        DeepPotConfig {
            ntypes: 1,
            rcut: 8.0,
            rcut_smth: 0.5,
            nmax: 512,
            embedding_widths: vec![8, 16],
            m2: 4,
            fitting_widths: vec![240, 240, 240],
            seed: 20240101,
        }
    }

    /// Paper-shaped water model: r_c = 6 Å, neighbour budget 92 (the O
    /// budget dominates), two species (O = 0, H = 1).
    pub fn water() -> Self {
        DeepPotConfig {
            ntypes: 2,
            rcut: 6.0,
            rcut_smth: 0.5,
            nmax: 92,
            embedding_widths: vec![8, 16],
            m2: 4,
            fitting_widths: vec![240, 240, 240],
            seed: 20240202,
        }
    }

    /// A tiny configuration for fast unit tests.
    pub fn tiny(ntypes: usize, rcut: f64) -> Self {
        DeepPotConfig {
            ntypes,
            rcut,
            rcut_smth: 0.4 * rcut,
            nmax: 64,
            embedding_widths: vec![4, 8],
            m2: 2,
            fitting_widths: vec![16, 16],
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        DeepPotConfig::copper().validate();
        DeepPotConfig::water().validate();
        DeepPotConfig::tiny(1, 5.0).validate();
        assert_eq!(DeepPotConfig::copper().fitting_widths, vec![240, 240, 240]);
        assert_eq!(DeepPotConfig::copper().nmax, 512);
        assert_eq!(DeepPotConfig::water().nmax, 92);
    }

    #[test]
    fn descriptor_len_is_m1_times_m2() {
        let c = DeepPotConfig::copper();
        assert_eq!(c.descriptor_len(), 16 * 4);
    }

    #[test]
    #[should_panic(expected = "M2 must be within M1")]
    fn oversized_m2_rejected() {
        let mut c = DeepPotConfig::tiny(1, 5.0);
        c.m2 = 100;
        c.validate();
    }
}
