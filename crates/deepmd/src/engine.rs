//! Mixed-precision inference engines (§III-B3).
//!
//! * `Double` — delegates to the f64 reference implementation.
//! * `Mix32` — embedding-net and fitting-net arithmetic in f32 (descriptor
//!   assembly in f32 as well, per ref [42]); force accumulation stays f64.
//! * `Mix16` — like `Mix32`, but the first-layer fitting-net GEMMs (forward
//!   and backward) run on binary16-stored operands with f32 accumulation —
//!   the paper's fp16-sve-gemm.
//!
//! These paths share the exact dataflow of [`crate::model::DeepPotModel`];
//! Table II and Fig. 6 measure how far the reduced-precision energies and
//! forces drift from the Double path and from the reference labels.

use std::sync::{Arc, Mutex};
use dpmd_obs::clock::wall_now;

use dpmd_obs::{Counter, MetricsRegistry, Unit};
use dpmd_threads::{atom_chunks, ThreadPool};
use minimd::atoms::Atoms;
use minimd::neighbor::NeighborList;
use minimd::potential::{ForcePhases, Potential, PotentialOutput};
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;
use nnet::activation::Activation;
use nnet::f16::F16;
use nnet::gemm::{self, simd};
use nnet::layers::Resnet;
use nnet::precision::Precision;
use nnet::stats::{GemmTally, PrecClass};

use crate::descriptor::build_environments_on;
use crate::model::DeepPotModel;

/// One embedding layer: (w in×out, b, act, resnet, in, out).
pub(crate) type EmbLayer32 = (Vec<f32>, Vec<f32>, Activation, Resnet, usize, usize);

/// One embedding net with weights cast to f32, plus the augmented per-layer
/// matrices `[bias ; W]` (shape `(ind+1)×outd`), built once at engine
/// construction — the paper's initialization-phase preprocessing — and
/// shared by the solo and batched embedding passes: both run zero-seeded
/// augmented GEMMs (value rows `[1, v…]`, tangent rows `[0, t…]`) so the
/// kernel's ascending-k fold reproduces the bias-seeded accumulation of the
/// historical per-entry loop bit for bit within each dispatch class.
#[derive(Clone, Debug)]
pub(crate) struct Emb32 {
    pub(crate) layers: Vec<EmbLayer32>,
    pub(crate) aug: Vec<Vec<f32>>,
}

impl Emb32 {
    fn from_model(net: &crate::embedding::EmbeddingNet) -> Self {
        let layers: Vec<EmbLayer32> = net
            .mlp
            .layers
            .iter()
            .map(|l| {
                (
                    l.w.as_slice().iter().map(|&x| x as f32).collect(),
                    l.b.iter().map(|&x| x as f32).collect(),
                    l.act,
                    l.resnet,
                    l.in_dim(),
                    l.out_dim(),
                )
            })
            .collect();
        let aug = layers
            .iter()
            .map(|(w, b, _, _, _, _): &EmbLayer32| {
                let mut m = Vec::with_capacity(b.len() + w.len());
                m.extend_from_slice(b);
                m.extend_from_slice(w);
                m
            })
            .collect();
        Emb32 { layers, aug }
    }
}

/// One fitting layer: (w in×out, wᵀ out×in, b, act, resnet, in, out).
pub(crate) type FitLayer32 = (Vec<f32>, Vec<f32>, Vec<f32>, Activation, Resnet, usize, usize);

/// Reusable forward/backward tape for [`Fit32::energy_and_grad_into`]:
/// one instance per chunk worker, so the per-atom fitting sweep stops
/// allocating once the buffers have grown to the network's layer widths.
#[derive(Clone, Debug, Default)]
pub(crate) struct Fit32Scratch {
    /// Per-layer biased pre-activations (the backward tape).
    pres: Vec<Vec<f32>>,
    x: Vec<f32>,
    out: Vec<f32>,
    x16: Vec<F16>,
    dpre: Vec<f32>,
    dx: Vec<f32>,
    dpre16: Vec<F16>,
}

/// One fitting net with f32 weights (and binary16 copies of the first
/// layer's weight matrices for the `Mix16` path).
#[derive(Clone, Debug)]
pub(crate) struct Fit32 {
    pub(crate) layers: Vec<FitLayer32>,
    // First-layer fp16 copies: weights (in×out) and transpose (out×in).
    pub(crate) w16_first: Vec<F16>,
    pub(crate) wt16_first: Vec<F16>,
}

impl Fit32 {
    fn from_model(net: &crate::fitting::FittingNet) -> Self {
        let layers: Vec<_> = net
            .mlp
            .layers
            .iter()
            .map(|l| {
                let w: Vec<f32> = l.w.as_slice().iter().map(|&x| x as f32).collect();
                let wt: Vec<f32> = l.w.transpose().as_slice().iter().map(|&x| x as f32).collect();
                let b: Vec<f32> = l.b.iter().map(|&x| x as f32).collect();
                (w, wt, b, l.act, l.resnet, l.in_dim(), l.out_dim())
            })
            .collect();
        let w16_first = layers[0].0.iter().map(|&x| F16::from_f32(x)).collect();
        let wt16_first = layers[0].1.iter().map(|&x| F16::from_f32(x)).collect();
        Fit32 { layers, w16_first, wt16_first }
    }

    /// Energy and ∂E/∂D for a single descriptor row, in f32 (first-layer
    /// GEMMs in fp16 when `f16_first` is set). The cotangent lands in
    /// `g`; with `g` and `scratch` reused across calls the whole
    /// forward/backward sweep is allocation-free after first growth —
    /// this runs once per atom inside the fitting chunk loop.
    fn energy_and_grad_into(
        &self,
        d: &[f32],
        f16_first: bool,
        tally: Option<&GemmTally>,
        g: &mut Vec<f32>,
        scratch: &mut Fit32Scratch,
    ) -> f32 {
        let nl = self.layers.len();
        let Fit32Scratch { pres, x, out, x16, dpre, dx, dpre16 } = scratch;
        // Forward, saving biased pre-activations (the backward tape).
        pres.resize_with(nl, Vec::default);
        x.clear();
        x.extend_from_slice(d);
        for (li, (w, _, b, act, resnet, ind, outd)) in self.layers.iter().enumerate() {
            let pre = &mut pres[li];
            pre.clear();
            pre.resize(*outd, 0.0f32);
            if li == 0 && f16_first {
                x16.clear();
                x16.extend(x.iter().map(|&v| F16::from_f32(v)));
                simd::gemm_nn_f16(1, *outd, *ind, x16, &self.w16_first, pre);
                if let Some(t) = tally {
                    t.record(1, *outd, *ind, PrecClass::F16);
                }
            } else {
                gemm::auto_nn_f32(1, *outd, *ind, x, w, pre);
                if let Some(t) = tally {
                    t.record(1, *outd, *ind, PrecClass::F32);
                }
            }
            for (p, &bb) in pre.iter_mut().zip(b) {
                *p += bb;
            }
            out.clear();
            out.extend(pre.iter().map(|&p| act.apply_f32(p)));
            match resnet {
                Resnet::None => {}
                Resnet::Identity => {
                    for i in 0..*ind {
                        out[i] += x[i];
                    }
                }
                Resnet::Doubling => {
                    for i in 0..*ind {
                        out[i] += x[i];
                        out[i + ind] += x[i];
                    }
                }
            }
            std::mem::swap(x, out);
        }
        let energy = x[0];

        // Backward with unit cotangent.
        g.clear();
        g.push(1.0f32);
        for (li, (_, wt, _, act, resnet, ind, outd)) in self.layers.iter().enumerate().rev() {
            let pre = &pres[li];
            dpre.clear();
            dpre.resize(*outd, 0.0f32);
            for o in 0..*outd {
                dpre[o] = g[o] * (act.derivative(pre[o] as f64) as f32);
            }
            dx.clear();
            dx.resize(*ind, 0.0f32);
            if li == 0 && f16_first {
                dpre16.clear();
                dpre16.extend(dpre.iter().map(|&v| F16::from_f32(v)));
                simd::gemm_nn_f16(1, *ind, *outd, dpre16, &self.wt16_first, dx);
                if let Some(t) = tally {
                    t.record(1, *ind, *outd, PrecClass::F16);
                }
            } else {
                gemm::auto_nn_f32(1, *ind, *outd, dpre, wt, dx);
                if let Some(t) = tally {
                    t.record(1, *ind, *outd, PrecClass::F32);
                }
            }
            match resnet {
                Resnet::None => {}
                Resnet::Identity => {
                    for i in 0..*ind {
                        dx[i] += g[i];
                    }
                }
                Resnet::Doubling => {
                    for i in 0..*ind {
                        dx[i] += g[i] + g[i + ind];
                    }
                }
            }
            std::mem::swap(g, dx);
        }
        energy
    }
}

/// Reusable buffers of the type-sorted f32 embedding pass: one instance per
/// worker chunk, so the per-atom GEMM staging allocates only on growth.
#[derive(Default)]
pub(crate) struct EmbScratch {
    /// Entry positions of the type currently being batched.
    idx: Vec<u32>,
    /// Augmented value rows, stride `width + 1` (column 0 carries the 1).
    val: Vec<f32>,
    /// Augmented tangent rows, stride `width + 1` (column 0 carries the 0).
    tan: Vec<f32>,
    pre: Vec<f32>,
    dpre: Vec<f32>,
    val_next: Vec<f32>,
    tan_next: Vec<f32>,
}

/// Per-atom intermediates of the f32 embedding pass (Mix32/Mix16 paths).
#[derive(Default)]
pub(crate) struct AtomEmbed32 {
    pub(crate) g: Vec<f32>,
    pub(crate) dg_ds: Vec<f32>,
    pub(crate) t: Vec<f32>,
    pub(crate) coords: Vec<[f32; 4]>,
}

/// Observability handles of an attached engine: per-precision evaluation
/// counters plus the GEMM shape-class tally shared with `nnet`.
#[derive(Clone, Debug)]
pub(crate) struct DpObs {
    /// `deepmd.eval.{fp64,fp32,fp16}.calls`, indexed by precision path.
    pub(crate) evals: [Counter; 3],
    pub(crate) gemm: GemmTally,
}

/// A precision-parameterized inference engine over a trained model.
pub struct DpEngine {
    /// The underlying f64 model (reference path and source of weights).
    pub model: DeepPotModel,
    /// Active precision mode.
    pub precision: Precision,
    pub(crate) emb32: Vec<Emb32>,
    pub(crate) fit32: Vec<Fit32>,
    /// Owned pool; falls back to the process-global pool when unset.
    pool: Option<Arc<ThreadPool>>,
    /// Phase breakdown of the last evaluation (`compute` takes `&self`, so
    /// interior mutability is needed to record it).
    pub(crate) last_phases: Mutex<Option<ForcePhases>>,
    /// Metric handles; `None` (the default) skips all recording.
    pub(crate) obs: Option<DpObs>,
}

impl DpEngine {
    /// Build an engine at the given precision (weights are cast once here —
    /// the paper's "preprocess the transpose in the initial phase" applies
    /// to these cached copies too).
    pub fn new(model: DeepPotModel, precision: Precision) -> Self {
        let emb32 = model.embeddings.iter().map(Emb32::from_model).collect();
        let fit32 = model.fittings.iter().map(Fit32::from_model).collect();
        DpEngine {
            model,
            precision,
            emb32,
            fit32,
            pool: None,
            last_phases: Mutex::new(None),
            obs: None,
        }
    }

    /// Register this engine's metrics on `reg` and start recording: one
    /// evaluation counter per precision path, and a GEMM call tally keyed by
    /// M×N×K shape class covering every fitting-net GEMM (forward and
    /// backward, fp32 and fp16 first-layer variants) and the per-neighbour
    /// embedding matvecs.
    pub fn attach_obs(&mut self, reg: &MetricsRegistry) {
        let mut shapes: Vec<(usize, usize, usize, PrecClass)> = Vec::new();
        for fit in &self.fit32 {
            for (li, (_, _, _, _, _, ind, outd)) in fit.layers.iter().enumerate() {
                shapes.push((1, *outd, *ind, PrecClass::F32)); // forward
                shapes.push((1, *ind, *outd, PrecClass::F32)); // backward
                if li == 0 {
                    // The Mix16 path runs the first layer on f16 storage.
                    shapes.push((1, *outd, *ind, PrecClass::F16));
                    shapes.push((1, *ind, *outd, PrecClass::F16));
                }
            }
        }
        // Embedding GEMMs are type-sorted with data-dependent row counts, so
        // they have no fixed exact shape to pre-register; the always-on
        // per-precision M-class counters of the tally cover them.
        self.obs = Some(DpObs {
            evals: [
                reg.counter("deepmd.eval.fp64.calls", Unit::Count),
                reg.counter("deepmd.eval.fp32.calls", Unit::Count),
                reg.counter("deepmd.eval.fp16.calls", Unit::Count),
            ],
            gemm: GemmTally::register(reg, &shapes),
        });
    }

    /// Run all evaluations on the given pool instead of the global one
    /// (lets one process host engines of different widths, e.g. the
    /// determinism tests and the scaling bench).
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The pool evaluations run on.
    pub fn pool(&self) -> &ThreadPool {
        match &self.pool {
            Some(p) => p,
            None => ThreadPool::global(),
        }
    }

    /// Phase breakdown of the most recent evaluation, if any ran yet.
    pub fn last_phases(&self) -> Option<ForcePhases> {
        *self.last_phases.lock().unwrap()
    }

    /// Total energy at the engine's precision.
    pub fn energy(&self, atoms: &Atoms, nl: &NeighborList, bx: &SimBox) -> f64 {
        let mut forces = vec![Vec3::ZERO; atoms.len()];
        self.energy_forces(atoms, nl, bx, &mut forces).energy
    }

    /// f32 embedding pass for one atom (Mix32/Mix16), **type-sorted**: the
    /// environment's same-type entries stack into one augmented GEMM pair
    /// per layer (value rows `[1, s]`, tangent rows `[0, 1]`, weights
    /// `[bias ; W]` from [`Emb32::aug`]), dispatched to the process's active
    /// kernel class — the paper's "sort environment matrices by type so one
    /// GEMM serves all same-type neighbours". Row independence of every
    /// kernel class makes the grouping bitwise-invisible, and on the scalar
    /// class the zero-seeded augmented fold reproduces the historical
    /// bias-seeded per-entry loop bit for bit. The order-sensitive T
    /// accumulation then replays in original entry order, unchanged.
    fn embed_atom32(&self, env: &crate::descriptor::Environment, scratch: &mut EmbScratch) -> AtomEmbed32 {
        let m1 = self.model.config.m1();
        let inv_nm = 1.0f32 / self.model.config.nmax as f32;
        let n = env.entries.len();
        let mut g = vec![0.0f32; n * m1]; // dpmd-allow D5: per-atom result storage, returned in AtomEmbed32
        let mut dg_ds = vec![0.0f32; n * m1]; // dpmd-allow D5: per-atom result storage, returned in AtomEmbed32
        let mut t = vec![0.0f32; m1 * 4]; // dpmd-allow D5: per-atom result storage, returned in AtomEmbed32
        let mut coords = vec![[0.0f32; 4]; n]; // dpmd-allow D5: per-atom result storage, returned in AtomEmbed32
        let tally = self.obs.as_ref().map(|o| &o.gemm);
        for (ty, emb_net) in self.emb32.iter().enumerate() {
            scratch.idx.clear();
            scratch.idx.extend(
                env.entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.typ as usize == ty)
                    .map(|(k, _)| k as u32),
            );
            let rows = scratch.idx.len();
            if rows == 0 {
                continue;
            }
            scratch.val.clear();
            scratch.val.resize(rows * 2, 0.0);
            scratch.tan.clear();
            scratch.tan.resize(rows * 2, 0.0);
            for (r, &k) in scratch.idx.iter().enumerate() {
                scratch.val[r * 2] = 1.0;
                scratch.val[r * 2 + 1] = env.entries[k as usize].s as f32;
                scratch.tan[r * 2 + 1] = 1.0;
            }
            for ((_, _, act, resnet, ind, outd), baug) in emb_net.layers.iter().zip(&emb_net.aug) {
                let (ind, outd) = (*ind, *outd);
                scratch.pre.clear();
                scratch.pre.resize(rows * outd, 0.0);
                scratch.dpre.clear();
                scratch.dpre.resize(rows * outd, 0.0);
                gemm::batched_nn_f32(rows, 1, outd, ind + 1, &scratch.val, baug, &mut scratch.pre);
                gemm::batched_nn_f32(rows, 1, outd, ind + 1, &scratch.tan, baug, &mut scratch.dpre);
                if let Some(tl) = tally {
                    tl.record(rows, outd, ind + 1, PrecClass::F32);
                    tl.record(rows, outd, ind + 1, PrecClass::F32);
                }
                scratch.val_next.clear();
                scratch.val_next.resize(rows * (outd + 1), 0.0);
                scratch.tan_next.clear();
                scratch.tan_next.resize(rows * (outd + 1), 0.0);
                for r in 0..rows {
                    let prer = &scratch.pre[r * outd..(r + 1) * outd];
                    let dprer = &scratch.dpre[r * outd..(r + 1) * outd];
                    let vo = &mut scratch.val_next[r * (outd + 1)..(r + 1) * (outd + 1)];
                    let to = &mut scratch.tan_next[r * (outd + 1)..(r + 1) * (outd + 1)];
                    vo[0] = 1.0;
                    for o in 0..outd {
                        let (v, dfac) = act.value_grad_f32(prer[o]);
                        vo[1 + o] = v;
                        to[1 + o] = (dfac as f32) * dprer[o];
                    }
                    let vi = &scratch.val[r * (ind + 1)..(r + 1) * (ind + 1)];
                    let ti = &scratch.tan[r * (ind + 1)..(r + 1) * (ind + 1)];
                    match resnet {
                        Resnet::None => {}
                        Resnet::Identity => {
                            for i in 0..ind {
                                vo[1 + i] += vi[1 + i];
                                to[1 + i] += ti[1 + i];
                            }
                        }
                        Resnet::Doubling => {
                            for i in 0..ind {
                                vo[1 + i] += vi[1 + i];
                                vo[1 + i + ind] += vi[1 + i];
                                to[1 + i] += ti[1 + i];
                                to[1 + i + ind] += ti[1 + i];
                            }
                        }
                    }
                }
                std::mem::swap(&mut scratch.val, &mut scratch.val_next);
                std::mem::swap(&mut scratch.tan, &mut scratch.tan_next);
            }
            // Scatter the final rows (stride m1+1; column 0 is the
            // augmentation) back to entry positions.
            for (r, &k) in scratch.idx.iter().enumerate() {
                let (k, off) = (k as usize, r * (m1 + 1) + 1);
                g[k * m1..(k + 1) * m1].copy_from_slice(&scratch.val[off..off + m1]);
                dg_ds[k * m1..(k + 1) * m1].copy_from_slice(&scratch.tan[off..off + m1]);
            }
        }
        // T accumulation in entry order (the only order-sensitive reduction).
        for (k, e) in env.entries.iter().enumerate() {
            let c64 = e.coords();
            let c = [c64[0] as f32, c64[1] as f32, c64[2] as f32, c64[3] as f32];
            coords[k] = c;
            for m in 0..m1 {
                let gv = g[k * m1 + m];
                for (cc, &cv) in c.iter().enumerate() {
                    t[m * 4 + cc] += gv * cv * inv_nm;
                }
            }
        }
        AtomEmbed32 { g, dg_ds, t, coords }
    }

    /// Energy + forces at the engine's precision (forces accumulated f64).
    /// Runs on [`pool`](Self::pool); records the phase breakdown.
    pub fn energy_forces(
        &self,
        atoms: &Atoms,
        nl: &NeighborList,
        bx: &SimBox,
        forces: &mut [Vec3],
    ) -> PotentialOutput {
        if let Some(o) = &self.obs {
            let idx = match self.precision {
                Precision::Double => 0,
                Precision::Mix32 => 1,
                Precision::Mix16 => 2,
            };
            o.evals[idx].inc();
        }
        if self.precision == Precision::Double {
            let (out, phases) = self.model.energy_forces_on(self.pool(), atoms, nl, bx, forces);
            *self.last_phases.lock().unwrap() = Some(phases);
            return out;
        }
        let f16_first = self.precision == Precision::Mix16;
        let cfg = &self.model.config;
        let m1 = cfg.m1();
        let m2 = cfg.m2;
        let inv_nm = 1.0f32 / cfg.nmax as f32;
        let pool = self.pool();
        let mut phases = ForcePhases::default();

        // Pass 1: descriptor.
        let t0 = wall_now();
        let envs = build_environments_on(pool, atoms, nl, bx, cfg.rcut_smth, cfg.rcut);
        phases.descriptor_s = t0.elapsed().as_secs_f64();

        let chunks = atom_chunks(atoms.nlocal);

        // Pass 2: embedding in f32, intermediates stored per atom.
        let t0 = wall_now();
        let mut emb_parts: Vec<Vec<AtomEmbed32>> =
            chunks.iter().map(|c| Vec::with_capacity(c.len())).collect(); // dpmd-allow D5: one buffer per chunk per call, amortized over the chunk
        {
            let envs = &envs;
            pool.scope(|sc| {
                for (range, part) in chunks.iter().zip(emb_parts.iter_mut()) {
                    let range = range.clone(); // dpmd-allow D5: Range<usize> clone is a two-word copy, no heap
                    sc.spawn(move || {
                        let mut scratch = EmbScratch::default(); // dpmd-allow D5: one scratch per chunk, reused across the chunk's atoms
                        part.extend(range.map(|i| self.embed_atom32(&envs[i], &mut scratch)));
                    });
                }
            });
        }
        let embeds: Vec<AtomEmbed32> = emb_parts.into_iter().flatten().collect(); // dpmd-allow D5: per-call result storage, one entry per atom
        phases.embedding_s = t0.elapsed().as_secs_f64();

        // Pass 3: fitting + backward, one f64 force buffer per chunk,
        // merged below in chunk order (deterministic fixed-order reduction).
        let t0 = wall_now();
        struct ChunkOut {
            energy: f64,
            virial: f64,
            forces: Vec<Vec3>,
        }
        let mut outs: Vec<Option<ChunkOut>> = chunks.iter().map(|_| None).collect(); // dpmd-allow D5: one slot per chunk per call
        {
            let (envs, embeds) = (&envs, &embeds);
            let nall = atoms.len();
            let tally = self.obs.as_ref().map(|o| &o.gemm);
            pool.scope(|sc| {
                for (range, slot) in chunks.iter().zip(outs.iter_mut()) {
                    let range = range.clone(); // dpmd-allow D5: Range<usize> clone is a two-word copy, no heap
                    sc.spawn(move || {
                        let mut buf = vec![Vec3::ZERO; nall]; // dpmd-allow D5: one force buffer per chunk, amortized over the chunk's atoms
                        // D / dT scratch, reused across the chunk's atoms —
                        // the inner loop itself never allocates.
                        let mut d = vec![0.0f32; m1 * m2]; // dpmd-allow D5: per-chunk scratch, reused per atom
                        let mut dt = vec![0.0f32; m1 * 4]; // dpmd-allow D5: per-chunk scratch, reused per atom
                        let mut de_dd = Vec::default();
                        let mut fit_scratch = Fit32Scratch::default();
                        let mut energy = 0.0f64;
                        let mut virial = 0.0f64;
                        for i in range {
                            let env = &envs[i];
                            let emb = &embeds[i];
                            let ti = atoms.typ[i] as usize;
                            // D in f32 (every element overwritten below —
                            // no reset needed).
                            let t = &emb.t;
                            for a in 0..m1 {
                                for b in 0..m2 {
                                    let mut acc = 0.0f32;
                                    for c in 0..4 {
                                        acc += t[a * 4 + c] * t[b * 4 + c];
                                    }
                                    d[a * m2 + b] = acc;
                                }
                            }
                            let e_fit = self.fit32[ti].energy_and_grad_into(
                                &d,
                                f16_first,
                                tally,
                                &mut de_dd,
                                &mut fit_scratch,
                            );
                            energy += e_fit as f64 + self.model.energy_bias[ti];

                            // dT (accumulated, so reset per atom).
                            dt.fill(0.0);
                            for a in 0..m1 {
                                for b in 0..m2 {
                                    let aab = de_dd[a * m2 + b];
                                    for c in 0..4 {
                                        dt[a * 4 + c] += aab * t[b * 4 + c];
                                        dt[b * 4 + c] += aab * t[a * 4 + c];
                                    }
                                }
                            }
                            // Per-neighbour chain rule; forces in f64.
                            for (k, e) in env.entries.iter().enumerate() {
                                let c = emb.coords[k];
                                let mut de_ds = 0.0f32;
                                let mut de_drt = [0.0f32; 4];
                                for m in 0..m1 {
                                    let mut de_dg = 0.0f32;
                                    for cc in 0..4 {
                                        de_dg += dt[m * 4 + cc] * c[cc];
                                        de_drt[cc] += dt[m * 4 + cc] * emb.g[k * m1 + m];
                                    }
                                    de_ds += de_dg * inv_nm * emb.dg_ds[k * m1 + m];
                                }
                                for v in &mut de_drt {
                                    *v *= inv_nm;
                                }
                                let grads = e.coord_grads();
                                let inv_r = 1.0 / e.r;
                                let dsdd = [
                                    e.ds_dr * e.disp.x * inv_r,
                                    e.ds_dr * e.disp.y * inv_r,
                                    e.ds_dr * e.disp.z * inv_r,
                                ];
                                let mut de_dd_vec = Vec3::ZERO;
                                for axis in 0..3 {
                                    let mut v = de_ds as f64 * dsdd[axis];
                                    for cc in 0..4 {
                                        v += de_drt[cc] as f64 * grads[cc][axis];
                                    }
                                    de_dd_vec[axis] = v;
                                }
                                let j = e.j as usize;
                                buf[j] -= de_dd_vec;
                                buf[i] += de_dd_vec;
                                virial += de_dd_vec.dot(e.disp);
                            }
                        }
                        *slot = Some(ChunkOut { energy, virial, forces: buf });
                    });
                }
            });
        }
        phases.fitting_s = t0.elapsed().as_secs_f64();

        // Deterministic fixed-order reduction: merge in chunk order.
        let t0 = wall_now();
        let mut total_e = 0.0f64;
        let mut virial = 0.0f64;
        for out in outs.into_iter().flatten() {
            total_e += out.energy;
            virial += out.virial;
            for (f, b) in forces.iter_mut().zip(&out.forces) {
                *f += *b;
            }
        }
        phases.reduction_s = t0.elapsed().as_secs_f64();

        *self.last_phases.lock().unwrap() = Some(phases);
        PotentialOutput { energy: total_e, virial: -virial }
    }
}

/// [`Potential`] adapter: a mixed-precision engine drives `minimd`'s
/// simulation loop exactly like the reference model (used by the Fig. 6
/// RDF-under-three-precisions experiment).
impl Potential for DpEngine {
    fn compute(&self, atoms: &mut Atoms, nl: &NeighborList, bx: &SimBox) -> PotentialOutput {
        let mut forces = std::mem::take(&mut atoms.force);
        let out = self.energy_forces(atoms, nl, bx, &mut forces);
        atoms.force = forces;
        out
    }

    fn cutoff(&self) -> f64 {
        self.model.config.rcut
    }

    fn name(&self) -> &'static str {
        match self.precision {
            Precision::Double => "deep-potential (double)",
            Precision::Mix32 => "deep-potential (MIX-fp32)",
            Precision::Mix16 => "deep-potential (MIX-fp16)",
        }
    }

    fn phase_times(&self) -> Option<ForcePhases> {
        self.last_phases()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepPotConfig;
    use minimd::lattice::fcc_copper;
    use minimd::neighbor::ListKind;

    fn setup() -> (DeepPotModel, SimBox, Atoms, NeighborList) {
        let model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
        let (bx, mut atoms) = fcc_copper(4, 4, 4);
        // Perturb so forces are non-trivial.
        for (k, p) in atoms.pos.iter_mut().enumerate() {
            p.x += 0.05 * ((k % 7) as f64 - 3.0) / 3.0;
            p.z += 0.04 * ((k % 5) as f64 - 2.0) / 2.0;
        }
        let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
        nl.build(&atoms, &bx);
        (model, bx, atoms, nl)
    }

    #[test]
    fn double_engine_is_bit_identical_to_reference() {
        let (model, bx, atoms, nl) = setup();
        let engine = DpEngine::new(model.clone(), Precision::Double);
        let mut f_ref = vec![Vec3::ZERO; atoms.len()];
        let mut f_eng = vec![Vec3::ZERO; atoms.len()];
        let out_ref = model.energy_forces(&atoms, &nl, &bx, &mut f_ref);
        let out_eng = engine.energy_forces(&atoms, &nl, &bx, &mut f_eng);
        assert_eq!(out_ref.energy, out_eng.energy);
        assert_eq!(f_ref, f_eng);
    }

    #[test]
    fn precision_error_ordering_double_fp32_fp16() {
        let (model, bx, atoms, nl) = setup();
        let e64 = DpEngine::new(model.clone(), Precision::Double).energy(&atoms, &nl, &bx);
        let e32 = DpEngine::new(model.clone(), Precision::Mix32).energy(&atoms, &nl, &bx);
        let e16 = DpEngine::new(model.clone(), Precision::Mix16).energy(&atoms, &nl, &bx);
        let n = atoms.nlocal as f64;
        let err32 = ((e32 - e64) / n).abs();
        let err16 = ((e16 - e64) / n).abs();
        assert!(err32 > 0.0, "fp32 path must actually round");
        assert!(err16 > err32, "fp16 error must exceed fp32: {err16:.3e} vs {err32:.3e}");
        // Both should stay far below physical energy scales (eV/atom).
        assert!(err32 < 1e-3, "err32 {err32:.3e}");
        assert!(err16 < 5e-2, "err16 {err16:.3e}");
    }

    #[test]
    fn mixed_precision_forces_stay_close_to_double() {
        let (model, bx, atoms, nl) = setup();
        let mut f64p = vec![Vec3::ZERO; atoms.len()];
        let mut f32p = vec![Vec3::ZERO; atoms.len()];
        let mut f16p = vec![Vec3::ZERO; atoms.len()];
        DpEngine::new(model.clone(), Precision::Double).energy_forces(&atoms, &nl, &bx, &mut f64p);
        DpEngine::new(model.clone(), Precision::Mix32).energy_forces(&atoms, &nl, &bx, &mut f32p);
        DpEngine::new(model.clone(), Precision::Mix16).energy_forces(&atoms, &nl, &bx, &mut f16p);
        let rms = |a: &[Vec3], b: &[Vec3]| {
            (a.iter().zip(b).map(|(x, y)| (*x - *y).norm2()).sum::<f64>() / (3.0 * a.len() as f64)).sqrt()
        };
        let d32 = rms(&f64p, &f32p);
        let d16 = rms(&f64p, &f16p);
        assert!(d32 > 0.0 && d32 < 1e-4, "fp32 force deviation {d32:.3e}");
        assert!(d16 >= d32 && d16 < 1e-2, "fp16 force deviation {d16:.3e}");
    }

    #[test]
    fn mixed_precision_is_bit_identical_across_pool_widths() {
        let (model, bx, atoms, nl) = setup();
        for precision in [Precision::Mix32, Precision::Mix16] {
            let serial =
                DpEngine::new(model.clone(), precision).with_pool(Arc::new(ThreadPool::serial()));
            let mut f_ref = vec![Vec3::ZERO; atoms.len()];
            let out_ref = serial.energy_forces(&atoms, &nl, &bx, &mut f_ref);
            let phases = serial.last_phases().expect("phases recorded");
            assert!(phases.total() > 0.0);
            for threads in [3usize, 6] {
                let eng = DpEngine::new(model.clone(), precision)
                    .with_pool(Arc::new(ThreadPool::new(threads)));
                let mut f = vec![Vec3::ZERO; atoms.len()];
                let out = eng.energy_forces(&atoms, &nl, &bx, &mut f);
                assert_eq!(out_ref.energy, out.energy, "{precision:?} {threads} threads");
                assert_eq!(out_ref.virial, out.virial, "{precision:?} {threads} threads");
                assert_eq!(f_ref, f, "{precision:?} {threads} threads");
            }
        }
    }

    #[test]
    fn mixed_precision_conserves_momentum() {
        let (model, bx, atoms, nl) = setup();
        let mut f = vec![Vec3::ZERO; atoms.len()];
        DpEngine::new(model, Precision::Mix16).energy_forces(&atoms, &nl, &bx, &mut f);
        let net = f.iter().fold(Vec3::ZERO, |a, &x| a + x);
        assert!(net.norm() < 1e-8, "net force {net:?}");
    }
}
