//! The fitting net: descriptor `D_i ↦ E_i` (paper Fig. 1b).
//!
//! Three equal-width tanh layers with identity skips (240×240×240 in the
//! paper) and a final linear layer to the scalar atomic energy. One net per
//! central-atom species. The backward pass used for forces returns
//! `∂E/∂D` — at strong scaling this is exactly where the tall-and-skinny
//! GEMMs of §III-B2 live.

use nnet::activation::Activation;
use nnet::init::build_mlp;
use nnet::layers::Mlp;
use nnet::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A fitting network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FittingNet {
    /// The underlying MLP (public for the trainer).
    pub mlp: Mlp,
}

impl FittingNet {
    /// Build with hidden `widths` and a linear scalar output.
    pub fn new(descriptor_len: usize, widths: &[usize], seed: u64) -> Self {
        FittingNet { mlp: build_mlp(descriptor_len, widths, 1, Activation::Tanh, seed) }
    }

    /// Descriptor input width.
    pub fn in_dim(&self) -> usize {
        self.mlp.in_dim()
    }

    /// Atomic energy for a batch of descriptors (`batch × in_dim`).
    pub fn energy(&self, d: &Matrix<f64>) -> Vec<f64> {
        self.mlp.forward_infer(d).into_vec()
    }

    /// Energy and `∂E/∂D` for a batch of descriptors: the backward pass with
    /// unit cotangent per row.
    pub fn energy_and_grad(&self, d: &Matrix<f64>) -> (Vec<f64>, Matrix<f64>) {
        let (out, caches) = self.mlp.forward(d);
        let dout = Matrix::from_fn(d.rows(), 1, |_, _| 1.0);
        let (dd, _) = self.mlp.backward(&caches, &dout);
        (out.into_vec(), dd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_has_identity_skips() {
        use nnet::layers::Resnet;
        let f = FittingNet::new(64, &[240, 240, 240], 1);
        assert_eq!(f.mlp.layers.len(), 4);
        assert_eq!(f.mlp.layers[1].resnet, Resnet::Identity);
        assert_eq!(f.mlp.layers[2].resnet, Resnet::Identity);
        assert_eq!(f.mlp.layers[3].out_dim(), 1);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let f = FittingNet::new(6, &[10, 10], 2);
        let d = Matrix::from_fn(2, 6, |r, c| 0.1 * (r as f64 + 1.0) * ((c as f64) - 2.5));
        let (_, dd) = f.energy_and_grad(&d);
        let h = 1e-6;
        for r in 0..2 {
            for c in 0..6 {
                let mut dp = d.clone();
                dp[(r, c)] += h;
                let mut dm = d.clone();
                dm[(r, c)] -= h;
                let fd = (f.energy(&dp)[r] - f.energy(&dm)[r]) / (2.0 * h);
                assert!((fd - dd[(r, c)]).abs() < 1e-6, "({r},{c})");
            }
        }
    }

    #[test]
    fn batch_rows_are_independent() {
        let f = FittingNet::new(4, &[8, 8], 3);
        let d1 = Matrix::from_vec(1, 4, vec![0.1, 0.2, 0.3, 0.4]);
        let d2 = Matrix::from_vec(1, 4, vec![-0.3, 0.0, 0.7, 0.1]);
        let both = Matrix::from_vec(2, 4, vec![0.1, 0.2, 0.3, 0.4, -0.3, 0.0, 0.7, 0.1]);
        let e_sep = [f.energy(&d1)[0], f.energy(&d2)[0]];
        let e_batch = f.energy(&both);
        assert!((e_sep[0] - e_batch[0]).abs() < 1e-14);
        assert!((e_sep[1] - e_batch[1]).abs() < 1e-14);
    }
}
