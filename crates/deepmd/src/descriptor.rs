//! The smoothed local environment (paper Fig. 1a).
//!
//! For central atom `i` and each neighbour `j` within `r_c`, the generalized
//! coordinates are
//!
//! ```text
//! R̃_j = ( s(r),  s(r)·x/r,  s(r)·y/r,  s(r)·z/r ),   (x,y,z) = r_j − r_i
//! ```
//!
//! where `s(r)` is the smooth switching weight: `1/r` inside `r_cs`, a C²
//! polynomial taper between `r_cs` and `r_c`, zero outside. Smoothness of
//! `s` is what makes Deep Potential forces conservative across neighbour-
//! list changes.

use minimd::atoms::Atoms;
use minimd::neighbor::NeighborList;
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;

/// `s(r)` and its derivative `ds/dr`.
///
/// DeePMD-kit's smoothing: with `u = (r − r_cs)/(r_c − r_cs)`,
/// `s = 1/r` for `r < r_cs`; `s = [u³(−6u² + 15u − 10) + 1]/r` on the taper;
/// `0` beyond `r_c`.
pub fn smooth(r: f64, rcut_smth: f64, rcut: f64) -> (f64, f64) {
    debug_assert!(r > 0.0);
    if r >= rcut {
        (0.0, 0.0)
    } else if r < rcut_smth {
        (1.0 / r, -1.0 / (r * r))
    } else {
        let du_dr = 1.0 / (rcut - rcut_smth);
        let u = (r - rcut_smth) * du_dr;
        let poly = u * u * u * (-6.0 * u * u + 15.0 * u - 10.0) + 1.0;
        let dpoly_du = u * u * (-30.0 * u * u + 60.0 * u - 30.0);
        let s = poly / r;
        let ds = dpoly_du * du_dr / r - poly / (r * r);
        (s, ds)
    }
}

/// One neighbour's contribution to the environment of a central atom.
#[derive(Clone, Copy, Debug)]
pub struct EnvEntry {
    /// Index of the neighbour in the atom arrays (may be a ghost).
    pub j: u32,
    /// Species of the neighbour.
    pub typ: u32,
    /// Displacement `r_j − r_i`, Å.
    pub disp: Vec3,
    /// Distance, Å.
    pub r: f64,
    /// Switching weight `s(r)`.
    pub s: f64,
    /// `ds/dr`.
    pub ds_dr: f64,
}

impl EnvEntry {
    /// The four generalized coordinates `R̃ = (s, s·x/r, s·y/r, s·z/r)`.
    #[inline]
    pub fn coords(&self) -> [f64; 4] {
        let f = self.s / self.r;
        [self.s, f * self.disp.x, f * self.disp.y, f * self.disp.z]
    }

    /// Gradient of each generalized coordinate w.r.t. the displacement
    /// vector `d = r_j − r_i`: a 4×3 Jacobian.
    pub fn coord_grads(&self) -> [[f64; 3]; 4] {
        let d = self.disp;
        let r = self.r;
        let inv_r = 1.0 / r;
        let s = self.s;
        let ds = self.ds_dr;
        // ∂s/∂d = s'(r) · d/r
        let dsdd = [ds * d.x * inv_r, ds * d.y * inv_r, ds * d.z * inv_r];
        let mut out = [[0.0; 3]; 4];
        out[0] = dsdd;
        // c_k = s · d_k / r  (k = x,y,z)
        // ∂c_k/∂d_l = (s'·d_l/r)(d_k/r) + s·(δ_kl/r − d_k d_l/r³)
        let comps = [d.x, d.y, d.z];
        for k in 0..3 {
            for l in 0..3 {
                let delta = if k == l { 1.0 } else { 0.0 };
                out[k + 1][l] = dsdd[l] * comps[k] * inv_r
                    + s * (delta * inv_r - comps[k] * comps[l] * inv_r * inv_r * inv_r);
            }
        }
        out
    }
}

/// The environment of one central atom: its neighbours within `r_c`.
#[derive(Clone, Debug, Default)]
pub struct Environment {
    /// Entries, in neighbour-list order (or type-sorted — see `typesort`).
    pub entries: Vec<EnvEntry>,
}

/// Build environments for every local atom from the neighbour list.
///
/// Distances beyond `rcut` are filtered here (the Verlet list includes the
/// skin). Ghost-aware: displacements are direct when ghosts are present,
/// minimum-image otherwise. Runs on the global thread pool; see
/// [`build_environments_on`] for an explicit pool.
pub fn build_environments(
    atoms: &Atoms,
    nl: &NeighborList,
    bx: &SimBox,
    rcut_smth: f64,
    rcut: f64,
) -> Vec<Environment> {
    build_environments_on(dpmd_threads::ThreadPool::global(), atoms, nl, bx, rcut_smth, rcut)
}

/// [`build_environments`] on an explicit pool. Atoms are chunked by the
/// even-split policy (a function of the atom count only) and each chunk's
/// environments are concatenated in chunk order, so the output is
/// identical — entry for entry — for any pool width: each atom's
/// environment depends on that atom alone.
pub fn build_environments_on(
    pool: &dpmd_threads::ThreadPool,
    atoms: &Atoms,
    nl: &NeighborList,
    bx: &SimBox,
    rcut_smth: f64,
    rcut: f64,
) -> Vec<Environment> {
    let use_min_image = atoms.nghost() == 0;
    let rc2 = rcut * rcut;
    let env_of = |i: usize| {
        let mut entries = Vec::with_capacity(nl.neighbors(i).len()); // dpmd-allow D7: per-atom neighbour entries retained in the Environment output
        for &ju in nl.neighbors(i) {
            let j = ju as usize;
            let disp = if use_min_image {
                bx.min_image(atoms.pos[j], atoms.pos[i])
            } else {
                atoms.pos[j] - atoms.pos[i]
            };
            let r2 = disp.norm2();
            if r2 > rc2 || r2 == 0.0 {
                continue;
            }
            let r = r2.sqrt();
            let (s, ds_dr) = smooth(r, rcut_smth, rcut);
            entries.push(EnvEntry { j: ju, typ: atoms.typ[j], disp, r, s, ds_dr });
        }
        Environment { entries }
    };
    let chunks = dpmd_threads::atom_chunks(atoms.nlocal);
    let mut parts: Vec<Vec<Environment>> =
        chunks.iter().map(|c| Vec::with_capacity(c.len())).collect(); // dpmd-allow D7: O(chunks) staging per descriptor pass
    let env_of = &env_of;
    pool.scope(|sc| {
        for (range, part) in chunks.iter().zip(parts.iter_mut()) {
            let range = range.clone(); // dpmd-allow D7: Range clone is Copy-sized, no heap
            sc.spawn(move || part.extend(range.map(env_of)));
        }
    });
    parts.into_iter().flatten().collect() // dpmd-allow D7: per-pass output assembly, O(atoms) once per step
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::lattice::fcc_copper;
    use minimd::neighbor::{ListKind, NeighborList};

    #[test]
    fn smooth_is_continuous_at_both_knots() {
        let (rs, rc) = (2.0, 6.0);
        let eps = 1e-9;
        // At r_cs: s must equal 1/r from both sides.
        let (below, _) = smooth(rs - eps, rs, rc);
        let (above, _) = smooth(rs + eps, rs, rc);
        assert!((below - above).abs() < 1e-6);
        // At r_c: taper reaches exactly zero.
        let (at_rc, d_at_rc) = smooth(rc - 1e-12, rs, rc);
        assert!(at_rc.abs() < 1e-9);
        assert!(d_at_rc.abs() < 1e-6, "C1 at the cutoff");
        assert_eq!(smooth(rc + 0.1, rs, rc), (0.0, 0.0));
    }

    #[test]
    fn smooth_derivative_matches_finite_difference() {
        let (rs, rc) = (0.5, 6.0);
        let h = 1e-7;
        for &r in &[0.8, 1.5, 2.5, 4.0, 5.5, 5.99] {
            let (_, ds) = smooth(r, rs, rc);
            let (sp, _) = smooth(r + h, rs, rc);
            let (sm, _) = smooth(r - h, rs, rc);
            let fd = (sp - sm) / (2.0 * h);
            assert!((fd - ds).abs() < 1e-5, "r={r}: fd={fd}, ds={ds}");
        }
    }

    #[test]
    fn coord_grads_match_finite_difference() {
        let (rs, rc) = (0.5, 6.0);
        let base = Vec3::new(1.2, -0.7, 2.1);
        let h = 1e-7;
        let entry_at = |d: Vec3| {
            let r = d.norm();
            let (s, ds_dr) = smooth(r, rs, rc);
            EnvEntry { j: 0, typ: 0, disp: d, r, s, ds_dr }
        };
        let grads = entry_at(base).coord_grads();
        #[allow(clippy::needless_range_loop)] // comp/axis jointly index grads and coords
        for comp in 0..4 {
            for axis in 0..3 {
                let mut dp = base;
                dp[axis] += h;
                let mut dm = base;
                dm[axis] -= h;
                let fd = (entry_at(dp).coords()[comp] - entry_at(dm).coords()[comp]) / (2.0 * h);
                assert!(
                    (fd - grads[comp][axis]).abs() < 1e-6,
                    "comp {comp} axis {axis}: fd={fd} an={}",
                    grads[comp][axis]
                );
            }
        }
    }

    #[test]
    fn environments_filter_skin_pairs() {
        let (bx, atoms) = fcc_copper(5, 5, 5);
        let mut nl = NeighborList::new(6.0, 2.0, ListKind::Full);
        nl.build(&atoms, &bx);
        let envs = build_environments(&atoms, &nl, &bx, 0.5, 6.0);
        assert_eq!(envs.len(), atoms.nlocal);
        for (i, env) in envs.iter().enumerate() {
            // Every entry strictly inside the cutoff.
            assert!(env.entries.iter().all(|e| e.r <= 6.0));
            // The Verlet list over-counts (skin); the env must be smaller.
            assert!(env.entries.len() <= nl.neighbors(i).len());
            // FCC at rc=6 Å: shells at a/√2, a, a√1.5, a√2, a√2.5 hold
            // 12+6+24+12+24 = 78 neighbours.
            assert_eq!(env.entries.len(), 78, "atom {i}");
        }
    }

    #[test]
    fn environment_is_translation_invariant() {
        let (bx, mut atoms) = fcc_copper(5, 5, 5);
        let mut nl = NeighborList::new(6.0, 1.0, ListKind::Full);
        nl.build(&atoms, &bx);
        let before = build_environments(&atoms, &nl, &bx, 0.5, 6.0);
        // Rigid translation (with wrap): all environments identical.
        for p in &mut atoms.pos {
            *p = bx.wrap(*p + Vec3::new(1.37, -2.2, 0.64));
        }
        nl.build(&atoms, &bx);
        let after = build_environments(&atoms, &nl, &bx, 0.5, 6.0);
        for (a, b) in before.iter().zip(&after) {
            // Sort coordinates because neighbour order may differ.
            let mut ca: Vec<_> = a.entries.iter().map(|e| (e.r * 1e8).round() as i64).collect();
            let mut cb: Vec<_> = b.entries.iter().map(|e| (e.r * 1e8).round() as i64).collect();
            ca.sort_unstable();
            cb.sort_unstable();
            assert_eq!(ca, cb);
        }
    }
}
