//! Derive macros for the offline `serde` shim.
//!
//! The build container has no registry access, so `syn`/`quote` are not
//! available; instead the item is parsed directly from the raw
//! [`TokenStream`] (structs with named/tuple fields, enums with unit, tuple
//! and struct variants, plain generics) and the trait impls are generated as
//! source text, then re-lexed with `str::parse::<TokenStream>()`.
//!
//! Supported `#[serde(...)]` field attributes: `default`,
//! `skip_serializing_if = "path"`, `rename = "name"`. Anything else is
//! ignored rather than rejected, mirroring how far this workspace actually
//! exercises serde.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let src = match parse_item(input) {
        Ok(item) => match which {
            Which::Serialize => gen_serialize(&item),
            Which::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => return compile_error(&msg),
    };
    match src.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!("serde shim derive produced invalid code ({e}): {src}")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Item model.

struct Item {
    name: String,
    /// Raw text between the item's `<` and `>`, e.g. `T : Scalar`.
    generics_decl: String,
    /// Just the parameter names, e.g. `T` or `'a , T , N`.
    generic_args: String,
    /// Type parameter names that get `: Serialize` / `: Deserialize` bounds.
    type_params: Vec<String>,
    /// Original `where` predicates (without the keyword), or empty.
    where_preds: String,
    kind: Kind,
}

enum Kind {
    Unit,
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// JSON key: `rename` if present, else the field name.
    key: String,
    /// `#[serde(default)]`: a missing key becomes `Default::default()`.
    default: bool,
    /// `#[serde(skip_serializing_if = "pred")]`: predicate path text.
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing.

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Leading attributes and visibility.
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    if kw != "struct" && kw != "enum" {
        return Err(format!("serde shim derive: `{kw}` items are not supported"));
    }
    i += 1;

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected item name".into()),
    };
    i += 1;

    // Generics: collect the raw token text and pull out parameter names.
    let mut generics_trees: Vec<TokenTree> = Vec::new();
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            generics_trees.push(toks[i].clone());
            i += 1;
        }
        if depth != 0 {
            return Err("serde shim derive: unbalanced generics".into());
        }
    }
    let (generic_args, type_params) = generic_params(&generics_trees);
    let generics_decl = render(&generics_trees);

    // Optional `where` clause (kept verbatim in the generated impls).
    let mut where_trees: Vec<TokenTree> = Vec::new();
    if matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        i += 1;
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
                || matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ';')
            {
                break;
            }
            where_trees.push(toks[i].clone());
            i += 1;
        }
    }

    let kind = match toks.get(i) {
        None | Some(TokenTree::Punct(_)) if kw == "struct" => Kind::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kw == "struct" => {
            Kind::NamedStruct(parse_fields(&group_tokens(g))?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && kw == "struct" => {
            Kind::TupleStruct(split_top_commas(&group_tokens(g)).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kw == "enum" => {
            Kind::Enum(parse_variants(g)?)
        }
        _ => return Err(format!("serde shim derive: malformed `{kw} {name}` body")),
    };

    Ok(Item {
        name,
        generics_decl,
        generic_args,
        type_params,
        where_preds: render(&where_trees),
        kind,
    })
}

fn group_tokens(g: &Group) -> Vec<TokenTree> {
    g.stream().into_iter().collect()
}

fn render(toks: &[TokenTree]) -> String {
    toks.iter().cloned().collect::<TokenStream>().to_string()
}

/// Extract `(comma-joined parameter names, type parameter names)` from the
/// tokens between a generics `<` and `>`.
fn generic_params(toks: &[TokenTree]) -> (String, Vec<String>) {
    let mut args: Vec<String> = Vec::new();
    let mut type_params: Vec<String> = Vec::new();
    let mut depth = 0i32;
    let mut at_start = true;
    let mut j = 0;
    while j < toks.len() {
        match &toks[j] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => at_start = true,
                '\'' if depth == 0 && at_start => {
                    if let Some(TokenTree::Ident(id)) = toks.get(j + 1) {
                        args.push(format!("'{id}"));
                        j += 1;
                    }
                    at_start = false;
                }
                _ => {}
            },
            TokenTree::Ident(id) if depth == 0 && at_start => {
                let s = id.to_string();
                if s == "const" {
                    if let Some(TokenTree::Ident(n)) = toks.get(j + 1) {
                        args.push(n.to_string());
                        j += 1;
                    }
                } else {
                    type_params.push(s.clone());
                    args.push(s);
                }
                at_start = false;
            }
            _ => {}
        }
        j += 1;
    }
    (args.join(", "), type_params)
}

/// Split a token list on commas that are not nested inside `<...>`
/// (sub-groups are opaque single trees, but generic argument commas are not).
fn split_top_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(t.clone());
    }
    out.retain(|c| !c.is_empty());
    out
}

/// Consume leading attributes of a field/variant chunk, honouring the
/// supported `#[serde(...)]` arguments.
fn take_attrs(chunk: &[TokenTree], j: &mut usize) -> (bool, Option<String>, Option<String>) {
    let mut default = false;
    let mut skip_if = None;
    let mut rename = None;
    while matches!(chunk.get(*j), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(attr)) = chunk.get(*j + 1) {
            let inner = group_tokens(attr);
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
            if is_serde {
                if let Some(TokenTree::Group(argsg)) = inner.get(1) {
                    let args = group_tokens(argsg);
                    let mut k = 0;
                    while k < args.len() {
                        if let TokenTree::Ident(id) = &args[k] {
                            match id.to_string().as_str() {
                                "default" => default = true,
                                "skip_serializing_if" => {
                                    if let Some(lit) = string_lit(args.get(k + 2)) {
                                        skip_if = Some(lit);
                                        k += 2;
                                    }
                                }
                                "rename" => {
                                    if let Some(lit) = string_lit(args.get(k + 2)) {
                                        rename = Some(lit);
                                        k += 2;
                                    }
                                }
                                _ => {}
                            }
                        }
                        k += 1;
                    }
                }
            }
            *j += 2;
        } else {
            break;
        }
    }
    (default, skip_if, rename)
}

fn string_lit(t: Option<&TokenTree>) -> Option<String> {
    if let Some(TokenTree::Literal(lit)) = t {
        let s = lit.to_string();
        if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
            return Some(s[1..s.len() - 1].to_string());
        }
    }
    None
}

fn parse_fields(toks: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_commas(toks) {
        let mut j = 0;
        let (default, skip_if, rename) = take_attrs(&chunk, &mut j);
        if matches!(chunk.get(j), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            j += 1;
            if let Some(TokenTree::Group(g)) = chunk.get(j) {
                if g.delimiter() == Delimiter::Parenthesis {
                    j += 1;
                }
            }
        }
        let name = match chunk.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde shim derive: expected field name".into()),
        };
        let key = rename.unwrap_or_else(|| name.clone());
        fields.push(Field { name, key, default, skip_if });
    }
    Ok(fields)
}

fn parse_variants(g: &Group) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_commas(&group_tokens(g)) {
        let mut j = 0;
        let (_, _, rename) = take_attrs(&chunk, &mut j);
        let name = match chunk.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde shim derive: expected variant name".into()),
        };
        if rename.is_some() {
            return Err("serde shim derive: variant rename is not supported".into());
        }
        j += 1;
        let fields = match chunk.get(j) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                VariantFields::Tuple(split_top_commas(&group_tokens(vg)).len())
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                VariantFields::Named(parse_fields(&group_tokens(vg))?)
            }
            // Unit variant; a `= discriminant` tail is ignored.
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation.

fn impl_header(item: &Item, trait_path: &str) -> String {
    let mut s = String::from("impl");
    if !item.generics_decl.is_empty() {
        s.push_str(&format!("<{}>", item.generics_decl));
    }
    s.push_str(&format!(" {trait_path} for {}", item.name));
    if !item.generic_args.is_empty() {
        s.push_str(&format!("<{}>", item.generic_args));
    }
    let mut preds: Vec<String> = Vec::new();
    let orig = item.where_preds.trim().trim_end_matches(',').trim();
    if !orig.is_empty() {
        preds.push(orig.to_string());
    }
    for p in &item.type_params {
        preds.push(format!("{p}: {trait_path}"));
    }
    if !preds.is_empty() {
        s.push_str(&format!(" where {}", preds.join(", ")));
    }
    s
}

fn gen_serialize(item: &Item) -> String {
    let header = impl_header(item, "::serde::Serialize");
    let body = match &item.kind {
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let push = format!(
                    "__fields.push((::std::string::String::from({key:?}), \
                     ::serde::Serialize::to_value(&self.{name})));",
                    key = f.key,
                    name = f.name
                );
                if let Some(pred) = &f.skip_if {
                    pushes.push_str(&format!("if !(({pred})(&self.{})) {{ {push} }}\n", f.name));
                } else {
                    pushes.push_str(&push);
                    pushes.push('\n');
                }
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!(
                "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let name = &item.name;
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                    )),
                    VariantFields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec::Vec::from([(\
                         ::std::string::String::from({vn:?}), \
                         ::serde::Serialize::to_value(__f0))])),\n"
                    )),
                    VariantFields::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec::Vec::from([(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(::std::vec::Vec::from([{}])))])),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            let push = format!(
                                "__inner.push((::std::string::String::from({:?}), \
                                 ::serde::Serialize::to_value({})));",
                                f.key, f.name
                            );
                            if let Some(pred) = &f.skip_if {
                                pushes.push_str(&format!(
                                    "if !(({pred})({})) {{ {push} }}\n",
                                    f.name
                                ));
                            } else {
                                pushes.push_str(&push);
                                pushes.push('\n');
                            }
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut __inner: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n{pushes}\
                             ::serde::Value::Object(::std::vec::Vec::from([(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(__inner))]))\n}},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{header} {{\n    fn to_value(&self) -> ::serde::Value {{\n{body}\n    }}\n}}\n"
    )
}

fn field_init(f: &Field, source: &str) -> String {
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!("::serde::missing_field({:?})?", f.key)
    };
    format!(
        "{name}: match {source}.get({key:?}) {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
         ::std::option::Option::None => {missing},\n}},\n",
        name = f.name,
        key = f.key
    )
}

fn gen_deserialize(item: &Item) -> String {
    let header = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => format!("let _ = __v;\n::std::result::Result::Ok({name})"),
        Kind::NamedStruct(fields) => {
            let inits: String = fields.iter().map(|f| field_init(f, "__v")).collect();
            format!(
                "if __v.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected object for `{name}`\"));\n}}\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected array of length {n} for `{name}`\")),\n}}",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantFields::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__val)?)),\n"
                    )),
                    VariantFields::Tuple(k) => {
                        let items: Vec<String> = (0..*k)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => match __val {{\n\
                             ::serde::Value::Array(__items) if __items.len() == {k} => \
                             ::std::result::Result::Ok({name}::{vn}({})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                             \"expected array of length {k} for variant `{vn}`\")),\n}},\n",
                            items.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let inits: String = fields.iter().map(|f| field_init(f, "__val")).collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             if __val.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"expected object for variant `{vn}`\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n}},\n\
                 ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                 let (__k, __val) = &__fields[0];\n\
                 match __k.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for `{name}`\")),\n}}"
            )
        }
    };
    format!(
        "{header} {{\n    fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n    }}\n}}\n"
    )
}
