//! Offline stand-in for `serde`.
//!
//! The build container has no registry access, so the real `serde` cannot be
//! fetched. This shim keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` + `serde_json::{to_string, from_str}` workflow working by
//! defining the two traits over an owned JSON [`Value`] tree; the bundled
//! `serde_derive` proc-macro crate generates impls for structs and enums.
//!
//! The data model is intentionally narrow: exactly what a JSON round trip
//! of this workspace's model/config/machine types needs, with lossless
//! numbers (numbers are kept as their literal text until a concrete type
//! parses them — `u64::MAX` and every finite `f64` survive exactly).

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Owned JSON tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as its literal text for lossless round trips.
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|f| f.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error (also re-exported as
/// `serde_json::Error`).
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Convert `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls.

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(s) => {
                        // Integer targets must also accept "1.0"-style floats
                        // only when exact; keep it strict: direct parse first,
                        // then a lossless float fallback for e.g. "1e3".
                        if let Ok(x) = s.parse::<$t>() {
                            return Ok(x);
                        }
                        let f: f64 = s
                            .parse()
                            .map_err(|_| Error::custom(format!("invalid number `{s}`")))?;
                        let back = f as $t;
                        if back as f64 == f {
                            Ok(back)
                        } else {
                            Err(Error::custom(format!(
                                "number `{s}` out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::custom(format!("expected array of length {N}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::custom("expected tuple array")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Deserialize a missing struct field: succeeds only for types whose
/// `from_value(Null)` succeeds (e.g. `Option`), matching serde's behaviour
/// for `#[serde(default)]` optional fields.
pub fn missing_field<T: Deserialize>(name: &str) -> Result<T, Error> {
    T::from_value(&Value::Null).map_err(|_| Error::custom(format!("missing field `{name}`")))
}
