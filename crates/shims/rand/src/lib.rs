//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! external `rand` dependency can never be fetched. This shim provides the
//! exact API surface the workspace uses — `rngs::StdRng`, [`SeedableRng`]
//! and [`RngExt::random_range`] — over a small, fully deterministic PRNG
//! (xoshiro256++ seeded through SplitMix64, the same construction the real
//! `rand` uses for seeding).
//!
//! Determinism is load-bearing: model initialization, dataset generation,
//! Langevin noise and the Maxwell–Boltzmann draw all stream from
//! `StdRng::seed_from_u64`, and the reproduction's trajectory-equality
//! tests assert bit-identical results for equal seeds.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

use std::ops::Range;

/// Seeding constructors (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a single `u64` (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// The range-sampling extension trait the workspace imports as
/// `rand::RngExt` (the shape of `rand 0.9+`'s `Rng::random_range`).
pub trait RngExt {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }
}

/// Types [`RngExt::random_range`] can sample.
pub trait SampleRange: PartialOrd + Copy {
    /// Map 64 uniform bits into `range`.
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! sample_float {
    ($t:ty) => {
        impl SampleRange for $t {
            #[inline]
            fn sample(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                // 53 uniform mantissa bits -> u in [0, 1).
                let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let lo = range.start as f64;
                let hi = range.end as f64;
                let v = lo + (hi - lo) * u;
                // Guard the open upper bound against rounding.
                let v = if v >= hi { lo.max(hi - (hi - lo) * f64::EPSILON) } else { v };
                v as $t
            }
        }
    };
}

sample_float!(f64);
sample_float!(f32);

macro_rules! sample_uint {
    ($t:ty) => {
        impl SampleRange for $t {
            #[inline]
            fn sample(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift reduction: unbiased enough for simulation
                // seeding (span << 2^64 here), and branch-free.
                let hi = ((bits as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    };
}

sample_uint!(u64);
sample_uint!(u32);
sample_uint!(usize);
sample_uint!(u16);
sample_uint!(u8);

macro_rules! sample_int {
    ($t:ty, $u:ty) => {
        impl SampleRange for $t {
            #[inline]
            fn sample(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = range.end.abs_diff(range.start) as u64;
                let hi = ((bits as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    };
}

sample_int!(i64, u64);
sample_int!(i32, u32);

/// RNG implementations.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// ChaCha12-based `StdRng`; same trait surface, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (k, chunk) in seed.chunks_exact(8).enumerate() {
                s[k] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut key = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut key);
            }
            StdRng { s }
        }
    }

    impl RngExt for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_are_contained_and_spread() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            if x < 0.5 {
                lo_half += 1;
            }
        }
        // Mean of the indicator is 1/2; allow generous slack.
        assert!((4_000..6_000).contains(&lo_half), "{lo_half}");
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn min_positive_range_never_returns_zero() {
        // integrate.rs draws `random_range(f64::MIN_POSITIVE..1.0)` and
        // takes a logarithm — zero would be -inf.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
