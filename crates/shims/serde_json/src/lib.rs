//! Offline stand-in for `serde_json`.
//!
//! Implements JSON text <-> [`serde::Value`] with a recursive-descent parser
//! and a compact printer. Numbers are carried as their literal text inside
//! `Value::Number`, so `to_string`/`from_str` round trips are lossless for
//! every finite float (Rust's float `Display` is shortest-round-trip) and
//! for the full `u64`/`i64` ranges — the `float_roundtrip` behaviour of the
//! real crate, always on.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printer.

fn print_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(text) => out.push_str(text),
        Value::String(s) => print_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_string(key, out);
                out.push(':');
                print_value(val, out);
            }
            out.push('}');
        }
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::String),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(b);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at byte {start}")));
        }
        Ok(Value::Number(text.to_string()))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "1e-7", "\"hi\\nthere\""] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            print_value(&v, &mut out);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn round_trips_extreme_numbers() {
        let cases = [
            u64::MAX.to_string(),
            i64::MIN.to_string(),
            f64::MAX.to_string(),
            f64::MIN_POSITIVE.to_string(),
            (1.0f64 / 3.0).to_string(),
        ];
        for text in &cases {
            let v = parse(text).unwrap();
            assert_eq!(v, Value::Number(text.clone()));
        }
        // And through typed endpoints: every bit pattern survives.
        let x = 1.0f64 / 3.0;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
        let u = u64::MAX;
        let s = to_string(&u).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, u);
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, {"b": null}], "c": "x", "d": true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::String("x".into())));
        match v.get("a") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b"), Some(&Value::Null));
            }
            other => panic!("bad array: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\":}", "01x", "tru", "1 2"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let s = "line1\nline2\tx\u{0001}".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(text, "\"line1\\nline2\\tx\\u0001\"");
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let back: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
    }
}
