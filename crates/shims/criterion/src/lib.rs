//! Offline stand-in for `criterion`.
//!
//! The build container has no registry access, so the real `criterion`
//! cannot be fetched. This shim keeps the `criterion_group!` /
//! `criterion_main!` / `benchmark_group` / `bench_function` surface
//! compiling and performs honest wall-clock measurement: each benchmark is
//! calibrated, then timed over `sample_size` samples, and the median
//! ns/iteration is reported. No statistical regression analysis, no HTML
//! reports — numbers on stdout.
//!
//! Command-line arguments that do not start with `-` (cargo passes
//! `--bench` itself) are treated as substring filters on `group/name` ids,
//! matching `cargo bench <filter>` usage.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark measurement.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark id (`group/name` or bare name).
    pub id: String,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Mean time per iteration, in nanoseconds.
    pub mean_ns: f64,
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filters: Vec<String>,
    results: Vec<Sample>,
}


impl Criterion {
    /// Build from command-line arguments (non-flag args are name filters).
    pub fn from_args() -> Self {
        let filters =
            std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect::<Vec<_>>();
        Criterion { filters, results: Vec::new() }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name.to_string(), DEFAULT_SAMPLE_SIZE, f);
        self
    }

    fn run<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(&id) {
            return;
        }
        let mut bencher = Bencher { sample_size, samples_ns: Vec::new() };
        f(&mut bencher);
        let mut ns = bencher.samples_ns;
        if ns.is_empty() {
            return;
        }
        ns.sort_by(|a, b| a.total_cmp(b));
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        println!("{id:<52} time: [median {} mean {}]", fmt_ns(median), fmt_ns(mean));
        self.results.push(Sample { id, median_ns: median, mean_ns: mean });
    }

    /// All results measured so far (used by programmatic callers).
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Print the closing line `criterion_main!` ends with.
    pub fn final_summary(&self) {
        println!("benchmarks complete: {} measured", self.results.len());
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        self.criterion.run(id, self.sample_size, f);
        self
    }

    /// Finish the group (consumes it; all reporting already happened).
    pub fn finish(self) {}
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

/// Per-sample time budget: long enough to swamp `Instant` overhead, short
/// enough that a full suite stays interactive.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

impl Bencher {
    /// Measure `f`, called repeatedly; the return value is sunk through
    /// [`black_box`] so the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count worth ~one sample budget.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = start.elapsed();
            if dt >= TARGET_SAMPLE / 4 || iters >= 1 << 24 {
                break dt.as_secs_f64() / iters as f64;
            }
            iters = iters.saturating_mul(4);
        };
        let sample_iters =
            ((TARGET_SAMPLE.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..sample_iters {
                black_box(f());
            }
            let dt = start.elapsed();
            self.samples_ns.push(dt.as_secs_f64() * 1e9 / sample_iters as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_orders_cheap_vs_expensive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("cheap", |b| b.iter(|| black_box(1u64).wrapping_mul(3)));
        group.bench_function("expensive", |b| {
            b.iter(|| (0..black_box(20_000u64)).fold(0u64, |a, x| a.wrapping_add(x * x)))
        });
        group.finish();
        let r = c.results();
        assert_eq!(r.len(), 2);
        assert!(r[0].median_ns > 0.0);
        assert!(
            r[1].median_ns > r[0].median_ns,
            "expensive {} !> cheap {}",
            r[1].median_ns,
            r[0].median_ns
        );
    }

    #[test]
    fn filters_skip_benchmarks() {
        let mut c = Criterion { filters: vec!["only_this".into()], results: Vec::new() };
        c.bench_function("other", |b| b.iter(|| 1));
        assert!(c.results().is_empty());
        c.bench_function("only_this_one", |b| b.iter(|| 1));
        assert_eq!(c.results().len(), 1);
    }
}
