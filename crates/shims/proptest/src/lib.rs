//! Offline stand-in for `proptest`.
//!
//! The build container has no registry access, so the real `proptest`
//! cannot be fetched. This shim drives each `proptest!` test as a loop of
//! deterministic random cases (seeded from the test's name, so failures
//! reproduce run-to-run) and implements the strategy surface this workspace
//! uses: ranges, `any::<T>()`, tuples, `prop_map`, `prop_filter`,
//! `collection::vec`, plus the `prop_assert*`/`prop_assume!` macros.
//!
//! No shrinking: a failing case reports its arguments' source expressions
//! and the assertion message, not a minimized counterexample.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

use rand::{RngExt, SeedableRng};

/// The RNG driving case generation.
pub type TestRng = rand::rngs::StdRng;

/// Deterministic per-test RNG (FNV-1a of the test name as the seed).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Why a test case did not complete.
pub enum TestCaseError {
    /// The case was rejected (`prop_assume!` failed); it is skipped and
    /// does not count toward the case budget.
    Reject(String),
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

/// A strategy could not produce a value (e.g. `prop_filter` exhausted its
/// retry budget).
pub struct Rejected(pub String);

/// Runner configuration (`cases` is the only knob implemented).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; this substrate's cases are heavy
        // (lattice builds, NN evaluations), so default lower — tests that
        // care set `with_cases` explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy for an [`Arbitrary`] type.
pub struct Any<A>(std::marker::PhantomData<A>);

/// `any::<T>()`: the full-range strategy for `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::{Any, Arbitrary, Rejected, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// A recipe for generating test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value (or reject, e.g. a filter that never passed).
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected>;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `pred`; `reason` labels rejections.
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason, pred }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> Result<O, Rejected> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejected> {
            for _ in 0..1000 {
                let v = self.inner.generate(rng)?;
                if (self.pred)(&v) {
                    return Ok(v);
                }
            }
            Err(Rejected(format!("filter never passed: {}", self.reason)))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                    Ok(rng.random_range(self.clone()))
                }
            }
        )*};
    }

    range_strategy!(f64, f32, u8, u16, u32, u64, usize, i32, i64);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> Result<A, Rejected> {
            Ok(A::arbitrary(rng))
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+),)*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
                    let ($($s,)+) = self;
                    Ok(($($s.generate(rng)?,)+))
                }
            }
        )*};
    }

    tuple_strategy! {
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H),
        (A, B, C, D, E, F, G, H, I),
        (A, B, C, D, E, F, G, H, I, J),
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::{Rejected, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for `Vec`s with a random length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejected> {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import used by test files.

    pub use crate::strategy::Strategy;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        TestCaseError,
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a loop over `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            let mut __done: u32 = 0;
            let mut __attempts: u32 = 0;
            while __done < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(16).saturating_add(1000),
                    "proptest {}: too many rejected cases",
                    stringify!($name),
                );
                let __strat = ($($strat,)+);
                let ($($arg,)+) =
                    match $crate::strategy::Strategy::generate(&__strat, &mut __rng) {
                        ::std::result::Result::Ok(v) => v,
                        ::std::result::Result::Err(_) => continue,
                    };
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => {
                        __done += 1;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => panic!(
                        "proptest {} failed on case {} (args: {}): {}",
                        stringify!($name),
                        __done,
                        stringify!($($arg in $strat),+),
                        __msg,
                    ),
                }
            }
        }
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // The negation is structural (the macro can't rewrite `$cond` into
        // its complement), so silence the partial-ord style lint at the
        // expansion site.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner. Operands only
/// need `PartialEq` (no `Debug`); the message shows their source text.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {}",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {}: {}",
                stringify!($a),
                stringify!($b),
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(::std::format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn unit() -> impl Strategy<Value = f64> {
        0.0f64..1.0
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Range strategies stay in range; maps and filters apply.
        #[test]
        fn combinators_work(
            x in unit(),
            n in 1usize..10,
            v in crate::collection::vec((0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b), 1..5),
            bits in any::<u16>(),
        ) {
            prop_assume!(bits != 1);
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n), "n = {n}");
            prop_assert!(!v.is_empty() && v.len() < 5);
            for s in &v {
                prop_assert!((0.0..2.0).contains(s));
            }
            prop_assert_eq!(bits, bits);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        use rand::RngExt;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_panic() {
        proptest! {
            fn inner(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x = {x}");
            }
        }
        inner();
    }
}
