//! Offline stand-in for `rayon`.
//!
//! The build container has no registry access, so the real `rayon` cannot be
//! fetched. This shim keeps the `par_iter().map(..).reduce(id, op)` call
//! sites compiling — but executes them **sequentially, in order**.
//!
//! That is deliberate, not just a fallback: training reduces per-frame
//! gradients with floating-point addition, and a sequential fixed-order
//! reduction makes the trained model (and therefore every downstream
//! trajectory) bit-identical regardless of available cores. The hot
//! force-evaluation path does not use this shim at all — it runs on the
//! deterministic work-stealing pool in `dpmd-threads`, which gets its
//! bit-reproducibility from fixed chunking rather than from being serial.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod prelude {
    /// Borrowing "parallel" iterator over a slice (sequential here).
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    /// Mapped iterator adapter.
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    /// `rayon::prelude::IntoParallelRefIterator`: provides `.par_iter()`.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type yielded by reference.
        type Item: 'a;

        /// A by-reference iterator over the collection.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T> ParIter<'a, T> {
        /// Map each element.
        pub fn map<R, F: FnMut(&'a T) -> R>(self, f: F) -> ParMap<'a, T, F> {
            ParMap { items: self.items, f }
        }
    }

    impl<'a, T, R, F: FnMut(&'a T) -> R> ParMap<'a, T, F> {
        /// Fold all mapped values into one, starting from `identity()`.
        /// Sequential and in slice order, so the result is deterministic.
        pub fn reduce<ID, OP>(mut self, identity: ID, op: OP) -> R
        where
            ID: Fn() -> R,
            OP: Fn(R, R) -> R,
        {
            self.items.iter().map(&mut self.f).fold(identity(), op)
        }

        /// Collect mapped values in order.
        pub fn collect<C: FromIterator<R>>(mut self) -> C {
            self.items.iter().map(&mut self.f).collect()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::IntoParallelRefIterator;

        #[test]
        fn map_reduce_matches_serial_fold() {
            let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
            let par = xs.par_iter().map(|x| x * 2.0).reduce(|| 0.0, |a, b| a + b);
            let ser = xs.iter().map(|x| x * 2.0).fold(0.0, |a, b| a + b);
            assert_eq!(par.to_bits(), ser.to_bits());
        }
    }
}
