//! `dpmd` — regenerate any table or figure of the paper from the terminal.
//!
//! ```sh
//! dpmd list                 # what can be regenerated
//! dpmd fig7                 # one experiment
//! dpmd fig11 --points 3     # strong scaling, first 3 topologies
//! dpmd all                  # everything (slow: full 12,000-node sweeps)
//! ```

use std::process::ExitCode;

use dpmd_scaling::experiments::{ablations, fig10, fig11, fig6, fig7, fig8, fig9, portability, table1, table2, table3, weak_scaling};
use dpmd_scaling::systems::SystemSpec;
use fugaku::machine::MachineConfig;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "NNMD package survey incl. the two 'This work' rows"),
    ("table2", "energy/force error under Double / MIX-fp32 / MIX-fp16"),
    ("table3", "pair time and atom counts across ranks, lb vs nolb"),
    ("fig6", "water O-O RDF under three precisions"),
    ("fig7", "step-by-step communication on 96 nodes"),
    ("fig8", "RDMA memory pool vs per-neighbor registration"),
    ("fig9", "step-by-step computation ladder on 96 nodes"),
    ("fig10", "pair-time distributions, lb vs nolb"),
    ("fig11", "strong scaling 768 -> 12,000 nodes"),
    ("ablations", "design-choice sensitivity sweeps"),
    ("portability", "node scheme on Frontier-like / Sunway-like machines (paper §V)"),
    ("weak", "weak scaling at fixed atoms/core (complement to fig11)"),
];

fn usage() {
    println!("usage: dpmd <experiment|list|all> [--points N] [--iters N]\n");
    println!("experiments:");
    for (name, desc) in EXPERIMENTS {
        println!("  {name:10} {desc}");
    }
}

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_one(name: &str, points: usize, iters: usize) -> bool {
    let machine = MachineConfig::default();
    match name {
        "table1" => println!("{}", table1::table(points).render()),
        "table2" => {
            let rows = table2::run(table2::Table2Config::default());
            println!("{}", table2::table(&rows).render());
        }
        "table3" => {
            let rows = table3::run(2024);
            println!("{}", table3::table(&rows).render());
            println!(
                "atomic dispersion reduction: {:.1}% (paper: 79.7%)",
                table3::dispersion_reduction(&rows) * 100.0
            );
        }
        "fig6" => {
            let curves = fig6::run(fig6::Fig6Config::default());
            println!("{}", fig6::table(&curves).render());
            println!(
                "max |dg| vs Double: MIX-fp32 {:.3}, MIX-fp16 {:.3}",
                fig6::max_deviation(&curves[0], &curves[1]),
                fig6::max_deviation(&curves[0], &curves[2])
            );
        }
        "fig7" => {
            let rows = fig7::run(&machine);
            println!("{}", fig7::table(&rows).render());
        }
        "fig8" => {
            let pts = fig8::run(&machine, iters);
            println!("{}", fig8::table(&pts).render());
            if let Some(k) = fig8::knee(&pts) {
                println!("knee at {k} neighbors (paper: 44)");
            }
        }
        "fig9" => {
            let rows = fig9::run();
            println!("{}", fig9::table(&rows).render());
        }
        "fig10" => {
            let series = fig10::run(2024);
            println!("{}", fig10::table(&series).render());
        }
        "fig11" => {
            for spec in [SystemSpec::copper(), SystemSpec::water()] {
                let curve = fig11::run(spec, points);
                println!("{}", fig11::table(&curve).render());
            }
        }
        "ablations" => println!("{}", ablations::table().render()),
        "portability" => println!("{}", portability::table(&portability::run()).render()),
        "weak" => {
            let grids = [[2usize, 3, 2], [4, 3, 4], [4, 6, 4], [8, 6, 8], [8, 12, 8]];
            let pts = weak_scaling::run(SystemSpec::copper(), 2, &grids);
            println!("{}", weak_scaling::table(&pts).render());
        }
        _ => return false,
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
        return ExitCode::FAILURE;
    };
    let points = parse_flag(&args, "--points", 5);
    let iters = parse_flag(&args, "--iters", 10_000);
    match cmd.as_str() {
        "list" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        "all" => {
            for (name, _) in EXPERIMENTS {
                println!("\n########## {name} ##########");
                run_one(name, points, iters);
            }
            ExitCode::SUCCESS
        }
        other => {
            if run_one(other, points, iters) {
                ExitCode::SUCCESS
            } else {
                eprintln!("unknown experiment '{other}'\n");
                usage();
                ExitCode::FAILURE
            }
        }
    }
}
