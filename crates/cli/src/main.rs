//! `dpmd` — regenerate any table or figure of the paper from the terminal,
//! or run functional MD with the Deep Potential engine.
//!
//! ```sh
//! dpmd list                 # what can be regenerated
//! dpmd fig7                 # one experiment
//! dpmd fig11 --points 3     # strong scaling, first 3 topologies
//! dpmd all                  # everything (slow: full 12,000-node sweeps)
//! dpmd md --steps 20 --timing   # MD run with per-step phase breakdown
//! ```

use std::process::ExitCode;

use dpmd_core::prelude::*;

use dpmd_scaling::experiments::{ablations, fig10, fig11, fig6, fig7, fig8, fig9, portability, table1, table2, table3, weak_scaling};
use dpmd_scaling::systems::SystemSpec;
use fugaku::machine::MachineConfig;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "NNMD package survey incl. the two 'This work' rows"),
    ("table2", "energy/force error under Double / MIX-fp32 / MIX-fp16"),
    ("table3", "pair time and atom counts across ranks, lb vs nolb"),
    ("fig6", "water O-O RDF under three precisions"),
    ("fig7", "step-by-step communication on 96 nodes"),
    ("fig8", "RDMA memory pool vs per-neighbor registration"),
    ("fig9", "step-by-step computation ladder on 96 nodes"),
    ("fig10", "pair-time distributions, lb vs nolb"),
    ("fig11", "strong scaling 768 -> 12,000 nodes"),
    ("ablations", "design-choice sensitivity sweeps"),
    ("portability", "node scheme on Frontier-like / Sunway-like machines (paper §V)"),
    ("weak", "weak scaling at fixed atoms/core (complement to fig11)"),
];

fn usage() {
    println!("usage: dpmd <experiment|list|all> [--points N] [--iters N]");
    println!("       dpmd md [--water] [--cells N] [--steps N] [--threads N] [--timing]");
    println!("               [--profile FILE] [--trace FILE]");
    println!("       dpmd md batch --replicas N --steps S [--cells N] [--water]");
    println!("               [--precision P] [--in-flight K|all] [--sequential] [--profile FILE]");
    println!("       dpmd md serve --script SPEC [--cells N] [--water] [--precision P]");
    println!("               [--in-flight K|all] [--threads N] [--profile FILE]");
    println!("       dpmd validate-obs <profile.json> [trace.json]");
    println!("       dpmd analyze [--deny] [--baseline PATH] [--config PATH] [--root DIR]");
    println!("               [--json PATH] [--bless] [--graph PATH] [--emit-stats PATH]");
    println!("               [--min-resolution PCT]\n");
    println!("experiments:");
    for (name, desc) in EXPERIMENTS {
        println!("  {name:10} {desc}");
    }
    println!("\nmd: functional MD with the Deep Potential engine");
    println!("  --water      water box instead of FCC copper");
    println!("  --cells N    cells per box edge (default 3)");
    println!("  --steps N    steps to run (default 20)");
    println!("  --threads N  force-evaluation threads (default: all cores)");
    println!("  --timing     per-step phase breakdown (neighbor/descriptor/");
    println!("               embedding/fitting/integrate)");
    println!("  --precision P  inference precision: double (default) | fp32 | fp16");
    println!("  --faults SPEC  run the distributed driver under an injected");
    println!("               fault scenario with recovery, and verify the");
    println!("               trajectory stays bit-identical to the clean run.");
    println!("               SPEC: ';'-separated clauses, e.g.");
    println!("               \"seed=7;drop=0.15;dup=0.1;reorder=0.3;stall-leader=0@3+4\"");
    println!("               (also: delay=P:R, retries=N, backoff=NS, pool=BYTES,");
    println!("               stall-tni=T@S+N)");
    println!("  --scheme S   exchange scheme for --faults: node (default) | p2p");
    println!("  --profile F  write the deterministic metrics snapshot (JSON) to F");
    println!("  --trace F    write the per-step span tree as a Chrome trace to F");
    println!("               (load in chrome://tracing or https://ui.perfetto.dev)");
    println!("\nmd batch: many replicas stepped through one engine with fused");
    println!("          (batched) force evaluation; bit-identical to solo runs");
    println!("  --replicas N   independent trajectories (default 4)");
    println!("  --steps S      steps per replica (default 10)");
    println!("  --in-flight K  admit at most K replicas per round; a positive");
    println!("                 count or 'all' (default). 0 is rejected: it used");
    println!("                 to silently mean unlimited");
    println!("  --sequential   step replicas one at a time (the baseline path)");
    println!("  --precision P  double | fp32 (default) | fp16 — fusion needs a");
    println!("                 mixed-precision path; double falls back to solo");
    println!("\nmd serve: continuous-batching multi-tenant service; tenants");
    println!("          attach/detach mid-flight via a deterministic arrival");
    println!("          script (logical rounds, no wall clocks). Trajectories");
    println!("          stay bit-identical to solo runs regardless of schedule");
    println!("  --script SPEC  ';'-separated clauses: seed=S tenants=N steps=K");
    println!("                 window=W queue=N at=ID@R prio=ID:class");
    println!("                 deadline=ID@R pause=ID@R+K  (class: interactive |");
    println!("                 standard | batch; queue full => typed rejection)");
    println!("\nvalidate-obs: check --profile/--trace outputs against the schema");
    println!("\nanalyze: determinism & safety linter over the workspace sources");
    println!("  (rules D1-D6: hash-order, float reductions, SAFETY comments,");
    println!("  wall clocks, hot-path allocation, lock order; D7-D10 run as");
    println!("  reachability/taint queries over the workspace call graph:");
    println!("  transitive hot-path allocation, wall-clock taint, unsafe-island");
    println!("  escapes, interprocedural lock order); --deny fails on any");
    println!("  finding not covered by the committed baseline");
    println!("  --graph F           export the resolved call graph as JSON");
    println!("  --emit-stats F      write resolution statistics (JSON) to F");
    println!("  --min-resolution P  fail unless at least P% of call edges");
    println!("                      resolve (unresolved sites are listed)");
}

/// Parse `--in-flight` into a typed cap. The old path fed the value through
/// a default-0 integer parse, so `--in-flight 0`, `--in-flight -3`, and
/// `--in-flight lots` all silently meant "unlimited"; now anything that
/// isn't a positive count or `all` is a hard, explained error.
fn parse_in_flight(args: &[String]) -> Result<dpmd_serve::InFlightCap, String> {
    match flag_value(args, "--in-flight") {
        None => Ok(dpmd_serve::InFlightCap::All),
        Some(v) => v.parse().map_err(|e| format!("--in-flight: {e}")),
    }
}

/// `dpmd md batch`: the multi-replica batch scheduler surface.
/// One-line precision/kernel banner for the `md` surfaces: which dispatch
/// class the process's f32 GEMM hot path selected (scalar / avx2 / neon —
/// the `double` path never touches it; `DPMD_FORCE_SCALAR=1` pins scalar).
fn print_dispatch_class(precision: &str) {
    println!(
        "precision: {precision}, fp32-gemm dispatch class: {}",
        nnet::gemm::dispatch::active_class().tag()
    );
}

fn run_md_batch(args: &[String]) -> bool {
    let replicas = parse_flag(args, "--replicas", 4);
    let steps = parse_flag(args, "--steps", 10) as u64;
    let cells = parse_flag(args, "--cells", 2);
    let in_flight = match parse_in_flight(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return false;
        }
    };
    let water = args.iter().any(|a| a == "--water");
    let sequential = args.iter().any(|a| a == "--sequential");
    let profile_path = flag_value(args, "--profile");

    let registry = dpmd_obs::MetricsRegistry::new();
    let tracebuf = dpmd_obs::TraceBuffer::new();
    let mut builder = Engine::builder().seed(2024);
    if profile_path.is_some() {
        builder = builder.observe(registry.clone(), tracebuf.clone());
    }
    builder = if water { builder.water_cells(cells) } else { builder.copper_cells(cells) };
    builder = match flag_value(args, "--precision").map(String::as_str) {
        Some("fp32") | None => builder.precision(Precision::Mix32),
        Some("fp16") => builder.precision(Precision::Mix16),
        Some("double") => builder.precision(Precision::Double),
        Some(other) => {
            eprintln!("unknown --precision '{other}' (use double | fp32 | fp16)");
            return false;
        }
    };
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        if let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) {
            builder = builder.threads(n);
        }
    }
    print_dispatch_class(flag_value(args, "--precision").map(String::as_str).unwrap_or("fp32"));
    let ntypes = if water { 2 } else { 1 };
    let parts =
        builder.with_model(DeepPotModel::new(DeepPotConfig::tiny(ntypes, 6.0))).build_parts();
    let mut sched =
        dpmd_serve::BatchScheduler::new(parts, replicas, steps).in_flight_cap(in_flight);

    let t0 = dpmd_obs::clock::wall_now();
    let (mode, rounds) = if sequential {
        ("sequential", sched.run_sequential())
    } else {
        ("batched", sched.run())
    };
    let wall = t0.elapsed().as_secs_f64();

    let natoms: usize = sched.replicas().iter().map(|r| r.sim.atoms.nlocal).sum();
    println!(
        "{mode}: {replicas} replicas x {steps} steps ({natoms} atoms total) in {wall:.3} s ({rounds} rounds)",
    );
    for r in sched.replicas() {
        let th = r.sim.thermo();
        println!(
            "replica {:>3} (seed {:>6})  pe {:>12.4}  etot {:>12.4}  T {:>8.2} K",
            r.id, r.seed, th.pe, th.etotal, th.temperature
        );
    }
    if let Some(path) = profile_path {
        let snap = registry.snapshot_deterministic();
        let n = snap.counters.len() + snap.gauges.len() + snap.histograms.len();
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("--profile {path}: {e}");
            return false;
        }
        println!("profile: wrote {n} metrics to {path}");
    }
    true
}

/// `dpmd md serve`: the continuous-batching multi-tenant service, driven by
/// a deterministic arrival script (wall clocks are banned on deterministic
/// paths, so "when tenants show up" is derived from a seed).
fn run_md_serve(args: &[String]) -> bool {
    let Some(spec) = flag_value(args, "--script") else {
        eprintln!("md serve requires --script SPEC (try --script \"tenants=4;steps=10;window=3\")");
        return false;
    };
    let script = match dpmd_serve::ArrivalScript::parse(spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad --script spec: {e}");
            return false;
        }
    };
    let cells = parse_flag(args, "--cells", 2);
    let in_flight = match parse_in_flight(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return false;
        }
    };
    let water = args.iter().any(|a| a == "--water");
    let profile_path = flag_value(args, "--profile");

    let registry = dpmd_obs::MetricsRegistry::new();
    let tracebuf = dpmd_obs::TraceBuffer::new();
    let mut builder = Engine::builder().seed(2024);
    if profile_path.is_some() {
        builder = builder.observe(registry.clone(), tracebuf.clone());
    }
    builder = if water { builder.water_cells(cells) } else { builder.copper_cells(cells) };
    builder = match flag_value(args, "--precision").map(String::as_str) {
        Some("fp32") | None => builder.precision(Precision::Mix32),
        Some("fp16") => builder.precision(Precision::Mix16),
        Some("double") => builder.precision(Precision::Double),
        Some(other) => {
            eprintln!("unknown --precision '{other}' (use double | fp32 | fp16)");
            return false;
        }
    };
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        if let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) {
            builder = builder.threads(n);
        }
    }
    print_dispatch_class(flag_value(args, "--precision").map(String::as_str).unwrap_or("fp32"));
    let ntypes = if water { 2 } else { 1 };
    let parts =
        builder.with_model(DeepPotModel::new(DeepPotConfig::tiny(ntypes, 6.0))).build_parts();

    let mut served =
        dpmd_serve::ContinuousScheduler::new(parts, in_flight, script.queue_capacity);
    let t0 = dpmd_obs::clock::wall_now();
    let outcome = served.run_script(&script);
    let wall = t0.elapsed().as_secs_f64();

    let done: u64 = served.tenants().iter().map(|t| t.done_steps()).sum();
    println!(
        "continuous: {} tenants, {} steps total in {} rounds, cap {in_flight} ({wall:.3} s)",
        served.tenants().len(),
        done,
        outcome.rounds,
    );
    if !outcome.rejected.is_empty() {
        println!("rejected by queue backpressure (queue={}): tenants {:?}", script.queue_capacity, outcome.rejected);
    }
    println!(
        "{:>6} {:>12} {:>8} {:>9} {:>6} {:>9} {:>9} {:>12}",
        "tenant", "class", "arrived", "admitted", "wait", "steps", "finished", "pe"
    );
    for t in served.tenants() {
        let (finished, deadline_note) = match t.state {
            dpmd_serve::TenantState::Finished { round } => (
                round.to_string(),
                if t.missed_deadline() { " (deadline missed)" } else { "" },
            ),
            _ => ("-".to_string(), ""),
        };
        println!(
            "{:>6} {:>12} {:>8} {:>9} {:>6} {:>9} {:>9} {:>12.4}{}",
            t.id,
            t.priority.to_string(),
            t.arrival_round,
            t.admitted_round.map_or("-".to_string(), |r| r.to_string()),
            t.queue_wait_rounds,
            t.done_steps(),
            finished,
            t.sim.thermo().pe,
            deadline_note,
        );
    }
    if let Some(path) = profile_path {
        let snap = registry.snapshot_deterministic();
        let n = snap.counters.len() + snap.gauges.len() + snap.histograms.len();
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("--profile {path}: {e}");
            return false;
        }
        println!("profile: wrote {n} metrics to {path}");
    }
    true
}

/// `dpmd validate-obs <profile.json> [trace.json]`: schema-check the files
/// written by `md --profile`/`--trace` (the CI profile-smoke gate).
fn validate_obs(args: &[String]) -> bool {
    let Some(profile) = args.get(1) else {
        eprintln!("usage: dpmd validate-obs <profile.json> [trace.json]");
        return false;
    };
    let text = match std::fs::read_to_string(profile) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{profile}: {e}");
            return false;
        }
    };
    if let Err(e) = dpmd_obs::schema::validate_profile_json(&text) {
        eprintln!("{profile}: {e}");
        return false;
    }
    println!("{profile}: valid metrics snapshot");
    if let Some(trace) = args.get(2) {
        let text = match std::fs::read_to_string(trace) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{trace}: {e}");
                return false;
            }
        };
        if let Err(e) = dpmd_obs::schema::validate_trace_json(&text) {
            eprintln!("{trace}: {e}");
            return false;
        }
        println!("{trace}: valid Chrome trace");
    }
    true
}

/// `dpmd md --faults <spec>`: the fault-injection surface. Runs the
/// distributed LJ driver clean and faulted side by side and reports the
/// fault/recovery counters plus the bitwise verdict.
fn run_faulted(args: &[String], spec: &str) -> bool {
    let plan = match FaultPlan::parse(spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bad --faults spec: {e}");
            return false;
        }
    };
    let cells = parse_flag(args, "--cells", 6);
    let steps = parse_flag(args, "--steps", 12) as u64;
    let scheme = match args
        .iter()
        .position(|a| a == "--scheme")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("p2p") => ExchangeScheme::RankP2p,
        Some("node") | None => ExchangeScheme::NodeBased,
        Some(other) => {
            eprintln!("unknown --scheme '{other}' (use node | p2p)");
            return false;
        }
    };
    println!("fault plan: {plan:?}");
    println!("scheme: {scheme:?}, {steps} steps, {cells} cells/edge\n");
    let report = run_faulted_md(cells, steps, scheme, plan);
    println!("{}", report.stats);
    println!(
        "\ntrajectory vs fault-free run: {}",
        if report.bitwise_identical {
            "BIT-IDENTICAL (recovery hid every fault)".to_string()
        } else {
            format!("DIVERGED (max drift {:.3e} A)", report.max_drift)
        }
    );
    report.bitwise_identical
}

/// `dpmd md`: run functional MD, optionally printing the per-step
/// phase-timing breakdown the threaded force pipeline records.
fn run_md(args: &[String]) -> bool {
    if args.get(1).map(String::as_str) == Some("batch") {
        return run_md_batch(args);
    }
    if args.get(1).map(String::as_str) == Some("serve") {
        return run_md_serve(args);
    }
    if let Some(spec) =
        args.iter().position(|a| a == "--faults").and_then(|i| args.get(i + 1))
    {
        return run_faulted(args, &spec.clone());
    }
    let cells = parse_flag(args, "--cells", 3);
    let steps = parse_flag(args, "--steps", 20) as u64;
    let water = args.iter().any(|a| a == "--water");
    let timing = args.iter().any(|a| a == "--timing");
    let profile_path = flag_value(args, "--profile");
    let trace_path = flag_value(args, "--trace");

    let registry = dpmd_obs::MetricsRegistry::new();
    let tracebuf = dpmd_obs::TraceBuffer::new();
    let mut builder = Engine::builder().seed(2024);
    if profile_path.is_some() || trace_path.is_some() {
        builder = builder.observe(registry.clone(), tracebuf.clone());
    }
    builder = if water { builder.water_cells(cells) } else { builder.copper_cells(cells) };
    match flag_value(args, "--precision").map(String::as_str) {
        Some("double") | None => {}
        Some("fp32") => builder = builder.precision(Precision::Mix32),
        Some("fp16") => builder = builder.precision(Precision::Mix16),
        Some(other) => {
            eprintln!("unknown --precision '{other}' (use double | fp32 | fp16)");
            return false;
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        if let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) {
            builder = builder.threads(n);
        }
    }
    // An untrained model evaluates the full pipeline at realistic cost; the
    // CLI run is about dynamics and timing, not accuracy.
    let ntypes = if water { 2 } else { 1 };
    let mut engine = builder.with_model(DeepPotModel::new(DeepPotConfig::tiny(ntypes, 6.0))).build();
    let natoms = engine.simulation().atoms.nlocal;
    println!(
        "system: {} ({natoms} atoms), dt = {} fs, {steps} steps",
        if water { "water" } else { "copper" },
        engine.timestep_fs(),
    );
    print_dispatch_class(flag_value(args, "--precision").map(String::as_str).unwrap_or("double"));

    if timing {
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}",
            "step", "neigh ms", "desc ms", "embed ms", "fit ms", "integ ms", "total ms", "sum%"
        );
    }
    let mut sums = (0.0f64, 0.0f64); // (attributed, total)
    for _ in 0..steps {
        let th = engine.simulation_mut().step();
        let t = engine.timing();
        if timing {
            let attributed = t.neighbor_s + t.phases.total() + t.integrate_s;
            sums.0 += attributed;
            sums.1 += t.total_s;
            let ms = |s: f64| s * 1e3;
            println!(
                "{:>5} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>5.1}%",
                t.step,
                ms(t.neighbor_s),
                ms(t.phases.descriptor_s),
                ms(t.phases.embedding_s),
                ms(t.phases.fitting_s + t.phases.reduction_s),
                ms(t.integrate_s),
                ms(t.total_s),
                100.0 * attributed / t.total_s.max(1e-12),
            );
        } else if th.step.is_multiple_of(10) || th.step == steps {
            println!(
                "step {:>5}  pe {:>12.4}  etot {:>12.4}  T {:>8.2} K  P {:>10.2} bar",
                th.step, th.pe, th.etotal, th.temperature, th.pressure
            );
        }
    }
    if timing && sums.1 > 0.0 {
        println!(
            "phase coverage: attributed phases sum to {:.1}% of wall time",
            100.0 * sums.0 / sums.1
        );
    }
    if let Some(path) = profile_path {
        let snap = registry.snapshot_deterministic();
        let n = snap.counters.len() + snap.gauges.len() + snap.histograms.len();
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("--profile {path}: {e}");
            return false;
        }
        println!("profile: wrote {n} metrics to {path}");
    }
    if let Some(path) = trace_path {
        if let Err(e) = std::fs::write(path, tracebuf.to_chrome_json()) {
            eprintln!("--trace {path}: {e}");
            return false;
        }
        println!("trace: wrote {} events to {path}", tracebuf.len());
    }
    true
}

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))
}

fn run_one(name: &str, points: usize, iters: usize) -> bool {
    let machine = MachineConfig::default();
    match name {
        "table1" => println!("{}", table1::table(points).render()),
        "table2" => {
            let rows = table2::run(table2::Table2Config::default());
            println!("{}", table2::table(&rows).render());
        }
        "table3" => {
            let rows = table3::run(2024);
            println!("{}", table3::table(&rows).render());
            println!(
                "atomic dispersion reduction: {:.1}% (paper: 79.7%)",
                table3::dispersion_reduction(&rows) * 100.0
            );
        }
        "fig6" => {
            let curves = fig6::run(fig6::Fig6Config::default());
            println!("{}", fig6::table(&curves).render());
            println!(
                "max |dg| vs Double: MIX-fp32 {:.3}, MIX-fp16 {:.3}",
                fig6::max_deviation(&curves[0], &curves[1]),
                fig6::max_deviation(&curves[0], &curves[2])
            );
        }
        "fig7" => {
            let rows = fig7::run(&machine);
            println!("{}", fig7::table(&rows).render());
        }
        "fig8" => {
            let pts = fig8::run(&machine, iters);
            println!("{}", fig8::table(&pts).render());
            if let Some(k) = fig8::knee(&pts) {
                println!("knee at {k} neighbors (paper: 44)");
            }
        }
        "fig9" => {
            let rows = fig9::run();
            println!("{}", fig9::table(&rows).render());
        }
        "fig10" => {
            let series = fig10::run(2024);
            println!("{}", fig10::table(&series).render());
        }
        "fig11" => {
            for spec in [SystemSpec::copper(), SystemSpec::water()] {
                let curve = fig11::run(spec, points);
                println!("{}", fig11::table(&curve).render());
            }
        }
        "ablations" => println!("{}", ablations::table().render()),
        "portability" => println!("{}", portability::table(&portability::run()).render()),
        "weak" => {
            let grids = [[2usize, 3, 2], [4, 3, 4], [4, 6, 4], [8, 6, 8], [8, 12, 8]];
            let pts = weak_scaling::run(SystemSpec::copper(), 2, &grids);
            println!("{}", weak_scaling::table(&pts).render());
        }
        _ => return false,
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
        return ExitCode::FAILURE;
    };
    let points = parse_flag(&args, "--points", 5);
    let iters = parse_flag(&args, "--iters", 10_000);
    match cmd.as_str() {
        "list" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        "md" => {
            if run_md(&args) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "validate-obs" => {
            if validate_obs(&args) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "analyze" => {
            // Shared driver with the standalone `dpmd-analyze` binary.
            let code = dpmd_analyze::run_cli(&args[1..]);
            if code == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(code as u8)
            }
        }
        "all" => {
            for (name, _) in EXPERIMENTS {
                println!("\n########## {name} ##########");
                run_one(name, points, iters);
            }
            ExitCode::SUCCESS
        }
        other => {
            if run_one(other, points, iters) {
                ExitCode::SUCCESS
            } else {
                eprintln!("unknown experiment '{other}'\n");
                usage();
                ExitCode::FAILURE
            }
        }
    }
}
