//! Work-stealing thread pool for the force-evaluation hot path.
//!
//! The paper's single-node baseline (§IV) keeps every core of the A64FX busy
//! on the per-atom pipeline — neighbor binning, descriptor assembly,
//! embedding-net inference, fitting-net inference. This crate provides the
//! pool those loops run on:
//!
//! * **std-only** — the build environment is offline, so no crossbeam/rayon;
//!   workers are plain `std::thread`s with per-worker `VecDeque`s and
//!   lock-based stealing.
//! * **scoped** — [`ThreadPool::scope`] lets tasks borrow stack data
//!   (chunked slices of atom arrays) without `'static` gymnastics; the
//!   scope blocks until every spawned task finished, and the scoping thread
//!   itself executes tasks while it waits.
//! * **deterministic by construction** — the pool schedules *which thread*
//!   runs a task, never *what* a task computes or *where* it writes.
//!   Callers split work into a chunk count that is a function of the
//!   problem size only (see `dpmd_balance::assign::even_chunks`) and give
//!   each chunk its own output buffer, merged in chunk order afterwards.
//!   Results are then bit-identical for any worker count, including 1.
//!
//! The global pool is sized by the `DPMD_THREADS` environment variable when
//! set (a positive integer), else by `std::thread::available_parallelism`.

// The one crate with unsafe code (the scope lifetime erasure); every
// unsafe operation must sit in an explicit block with its own SAFETY.
#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Split `0..total` into `parts` contiguous ranges whose lengths differ by
/// at most one; the first `total % parts` ranges carry the extra element.
/// Empty ranges are never produced: with `total < parts` only `total`
/// one-element ranges come back.
///
/// This is the even-split policy every parallel per-atom loop uses (also
/// re-exported as `dpmd_balance::assign::even_chunks`, where it doubles as
/// the intra-node atom split of the paper's load balancer). Chunk
/// boundaries depend on `total` and `parts` only — never on the worker
/// count — which is what makes chunk-ordered reductions bit-identical
/// across pool sizes.
pub fn even_chunks(total: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(total.max(1));
    if total == 0 {
        return Vec::new(); // dpmd-allow D7: Vec::new is capacity 0, no heap
    }
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts); // dpmd-allow D7: O(workers) chunk descriptors per scope
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, total);
    out
}

/// The chunk count used for per-atom loops: fine enough that stealing can
/// balance uneven chunks (≈8 atoms per chunk), capped so per-chunk buffers
/// stay cheap. A function of the atom count ONLY — deliberately independent
/// of the pool width, so the same system always produces the same chunk
/// structure and therefore (with chunk-ordered merges) the same bits.
pub fn atom_chunks(total: usize) -> Vec<Range<usize>> {
    even_chunks(total, total.div_ceil(8).clamp(1, 64))
}

/// A fixed-size pool of worker threads with per-worker queues and stealing.
pub struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

struct Inner {
    /// One queue per executing thread slot (workers + the scoping caller).
    /// Any thread may steal from any queue; locks are held only to
    /// push/pop, and tasks are coarse (whole atom chunks), so contention is
    /// negligible next to task runtime.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Push-generation counter guarded by `sleep`; bumped on every push so
    /// a worker that saw empty queues before the bump never sleeps through
    /// the wakeup.
    sleep: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
    next_queue: AtomicUsize,
}

impl Inner {
    fn push(&self, job: Job) {
        let idx = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[idx].lock().unwrap().push_back(job);
        *self.sleep.lock().unwrap() += 1;
        self.wake.notify_all();
    }

    /// Pop from `home` first (front: FIFO for cache-friendly chunk order),
    /// then steal from the back of the other queues.
    fn pop(&self, home: usize) -> Option<Job> {
        let n = self.queues.len();
        if let Some(job) = self.queues[home % n].lock().unwrap().pop_front() {
            return Some(job);
        }
        for off in 1..n {
            let q = (home + off) % n;
            if let Some(job) = self.queues[q].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn worker_loop(&self, home: usize) {
        loop {
            // Snapshot the push generation *before* scanning, so a push that
            // lands mid-scan changes the generation and skips the sleep.
            let gen = *self.sleep.lock().unwrap();
            if let Some(job) = self.pop(home) {
                job();
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let mut g = self.sleep.lock().unwrap();
            while *g == gen && !self.shutdown.load(Ordering::Acquire) {
                g = self.wake.wait(g).unwrap();
            }
        }
    }
}

impl ThreadPool {
    /// A pool executing on `threads` threads total: `threads - 1` workers
    /// plus the thread that calls [`scope`](Self::scope). `new(1)` spawns
    /// nothing and runs every task inline on the caller.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(), // dpmd-allow D7: one-time pool construction
            sleep: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_queue: AtomicUsize::new(0),
        });
        let workers = (1..threads)
            .map(|home| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dpmd-worker-{home}")) // dpmd-allow D7: one-time pool construction
                    .spawn(move || inner.worker_loop(home))
                    .expect("spawn pool worker")
            })
            .collect(); // dpmd-allow D7: one-time pool construction
        ThreadPool { inner, workers, threads }
    }

    /// A single-thread pool: every task runs inline on the caller, in spawn
    /// order. The parallel call sites run *the same code* through this pool
    /// to produce their serial reference behaviour.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Total executing threads (workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The process-wide shared pool, sized by `DPMD_THREADS` (positive
    /// integer) when set, else by `available_parallelism`.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
    }

    /// Run `f`, allowing it to spawn borrowing tasks; returns once every
    /// spawned task completed. Panics from tasks are re-raised here after
    /// all tasks finish.
    pub fn scope<'scope, F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, '_>),
    {
        let latch = Arc::new(Latch {
            count: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let scope = Scope { pool: self, latch: Arc::clone(&latch), _borrow: PhantomData };
        f(&scope);
        // Help execute until this scope's tasks have all finished. Tasks
        // picked up here may belong to another concurrent scope — they are
        // self-contained closures that settle their own latch, so running
        // them is always sound.
        loop {
            while let Some(job) = self.inner.pop(0) {
                job();
            }
            let g = self.latch_wait(&latch);
            if g {
                break;
            }
        }
        if latch.panicked.load(Ordering::Acquire) {
            panic!("a task spawned in ThreadPool::scope panicked");
        }
    }

    /// Wait briefly for the latch; true when it reached zero. The timeout
    /// covers the race where a task is pushed (by a nested spawn) after the
    /// help loop saw empty queues.
    fn latch_wait(&self, latch: &Latch) -> bool {
        let g = latch.count.lock().unwrap();
        if *g == 0 {
            return true;
        }
        let (g, _timeout) = latch.done.wait_timeout(g, Duration::from_micros(200)).unwrap();
        *g == 0
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.sleep.lock().unwrap();
        }
        self.inner.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("DPMD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid DPMD_THREADS={v:?} (want a positive integer)");
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

struct Latch {
    count: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn increment(&self) {
        *self.count.lock().unwrap() += 1;
    }

    fn decrement(&self) {
        let mut g = self.count.lock().unwrap();
        *g -= 1;
        if *g == 0 {
            self.done.notify_all();
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]; tasks may
/// borrow anything that outlives `'scope`.
pub struct Scope<'scope, 'pool> {
    pool: &'pool ThreadPool,
    latch: Arc<Latch>,
    /// Invariant over `'scope`, as for `std::thread::scope`.
    _borrow: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Queue a task. On a 1-thread pool this runs the task inline,
    /// immediately, preserving spawn order exactly.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.pool.threads == 1 {
            f();
            return;
        }
        self.latch.increment();
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || { // dpmd-allow D7: boxed job is the scoped-pool ABI, one per spawned chunk
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                latch.panicked.store(true, Ordering::Release);
            }
            latch.decrement();
        });
        // SAFETY: `scope` does not return until the latch — incremented
        // above, decremented only after the closure ran — reaches zero, so
        // every borrow inside the task outlives its execution. Identical
        // layout: only the trait object's lifetime bound is erased.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.inner.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_task() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for i in 0..100u64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn tasks_borrow_and_write_disjoint_slices() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u64; 1024];
        pool.scope(|s| {
            for (k, chunk) in data.chunks_mut(100).enumerate() {
                s.spawn(move || {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = (k * 100 + j) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = ThreadPool::serial();
        assert_eq!(pool.threads(), 1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..10 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    // Miri's deterministic scheduler can legally run every task on one
    // worker (virtual time, rare preemption), so this liveness check only
    // means something on real threads.
    #[cfg_attr(miri, ignore)]
    fn work_actually_distributes_across_threads() {
        let pool = ThreadPool::new(4);
        let ids = Mutex::new(HashSet::new());
        pool.scope(|s| {
            for _ in 0..64 {
                let ids = &ids;
                s.spawn(move || {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    // Enough work that a single thread cannot race through
                    // the whole queue before the others wake.
                    std::thread::sleep(Duration::from_millis(2));
                });
            }
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "64 sleeping tasks ran on a single thread of a 4-thread pool"
        );
    }

    #[test]
    fn scope_reuse_and_nesting() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.scope(|s| {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(1, Ordering::Relaxed);
                });
                s.spawn(move || {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[should_panic(expected = "task spawned in ThreadPool::scope panicked")]
    fn task_panics_propagate_to_scope() {
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            s.spawn(|| panic!("boom"));
        });
    }

    #[test]
    fn empty_scope_returns() {
        let pool = ThreadPool::new(4);
        pool.scope(|_| {});
    }

    #[test]
    fn even_chunks_cover_exactly_with_balanced_lengths() {
        for total in [0usize, 1, 7, 8, 9, 100, 256, 1023] {
            for parts in [1usize, 2, 3, 7, 16, 64, 2000] {
                let chunks = even_chunks(total, parts);
                // Exact cover, in order, no empties.
                let mut next = 0;
                for c in &chunks {
                    assert_eq!(c.start, next, "total {total} parts {parts}");
                    assert!(!c.is_empty(), "total {total} parts {parts}");
                    next = c.end;
                }
                assert_eq!(next, total, "total {total} parts {parts}");
                // Lengths differ by at most one.
                if let (Some(min), Some(max)) = (
                    chunks.iter().map(|c| c.len()).min(),
                    chunks.iter().map(|c| c.len()).max(),
                ) {
                    assert!(max - min <= 1, "total {total} parts {parts}: {min}..{max}");
                }
            }
        }
    }

    #[test]
    fn atom_chunks_depend_on_size_only() {
        // The policy must be a pure function of the atom count: same input,
        // same boundaries, regardless of environment or pool width.
        assert_eq!(atom_chunks(0).len(), 0);
        assert_eq!(atom_chunks(1).len(), 1);
        assert_eq!(atom_chunks(256).len(), 32);
        assert_eq!(atom_chunks(100_000).len(), 64);
        assert_eq!(atom_chunks(256), atom_chunks(256));
    }
}
