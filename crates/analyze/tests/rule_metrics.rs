//! Rule hit-counts flow through dpmd-obs: `record_metrics` must register
//! per-rule counters plus scan/suppression totals. Built with the obs
//! `capture` feature (dev-dependency), so the counters are live here even
//! though library consumers get no-op handles by default.

use dpmd_analyze::diag::{Finding, RuleId};
use dpmd_analyze::record_metrics;
use dpmd_obs::MetricsRegistry;

fn finding(rule: RuleId, line: u32) -> Finding {
    Finding {
        rule,
        path: "crates/fixture/src/lib.rs".to_string(),
        line,
        message: "test finding".to_string(),
        snippet: String::new(),
    }
}

#[test]
fn record_metrics_counts_rules_and_suppressions() {
    let reg = MetricsRegistry::new();
    let fresh = vec![finding(RuleId::D1, 1), finding(RuleId::D1, 2), finding(RuleId::D4, 3)];
    let baselined = vec![finding(RuleId::D5, 4)];
    record_metrics(&reg, &fresh, &baselined, 157);

    let snap = reg.snapshot();
    assert_eq!(snap.counter("analyze.files_scanned"), Some(157));
    assert_eq!(snap.counter("analyze.findings.total"), Some(3 + 1));
    assert_eq!(snap.counter("analyze.findings.suppressed"), Some(1));
    assert_eq!(snap.counter("analyze.rule.d1"), Some(2));
    assert_eq!(snap.counter("analyze.rule.d4"), Some(1));
    assert_eq!(snap.counter("analyze.rule.d5"), Some(1));
    assert_eq!(snap.counter("analyze.rule.d2"), None, "unhit rules register no counter");
}

#[test]
fn record_graph_metrics_counts_nodes_edges_and_resolution() {
    use dpmd_analyze::graph::CallGraph;
    use dpmd_analyze::parser::parse_file;
    use dpmd_analyze::record_graph_metrics;
    use std::collections::BTreeMap;

    let files = vec![parse_file(
        "crates/demo/src/lib.rs",
        "pub fn leaf() {}\npub fn root() { leaf(); std::process::id(); }\n",
    )];
    let g = CallGraph::build(&files, &BTreeMap::new());

    let reg = MetricsRegistry::new();
    record_graph_metrics(&reg, &g);
    let snap = reg.snapshot();
    assert_eq!(snap.counter("analyze.graph.nodes"), Some(2));
    assert_eq!(snap.counter("analyze.graph.edges"), Some(1));
    assert_eq!(snap.counter("analyze.graph.call_sites"), Some(g.stats.sites));
    assert_eq!(snap.counter("analyze.graph.resolved"), Some(1));
    assert_eq!(snap.counter("analyze.graph.external"), Some(g.stats.external));
    assert_eq!(snap.counter("analyze.graph.unresolved"), Some(0));
}
