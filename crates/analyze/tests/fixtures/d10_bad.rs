//! D10 fixture: opposite-order lock chains that only deadlock across
//! function boundaries — each body on its own is acyclic, so D6 is
//! silent; the interprocedural lock-set query sees the cycle.

use std::sync::Mutex;

pub struct Pair {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let a = self.a.lock().unwrap();
        *a + self.grab_b()
    }

    fn grab_b(&self) -> u64 {
        *self.b.lock().unwrap()
    }

    pub fn backward(&self) -> u64 {
        let b = self.b.lock().unwrap();
        *b + self.grab_a()
    }

    fn grab_a(&self) -> u64 {
        *self.a.lock().unwrap()
    }
}
