//! D8 fixture: a `wall_now` clock behind the blessed name, read by a
//! function that is not an enumerated clock reader. D4 stays silent (no
//! raw `Instant::now` shape); the taint query flags the reader.

mod clock {
    pub fn wall_now() -> u64 {
        7
    }
}

pub fn step_time() -> u64 {
    clock::wall_now()
}
