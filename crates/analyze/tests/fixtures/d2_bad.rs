// D2 fixture: a float accumulator captured into a spawn region. Exactly
// one finding: the `*total += …` inside the spawned closure.

pub fn reduce(pool: &Pool, chunks: &[Vec<f64>], total: &mut f64) {
    pool.scope(|s| {
        for chunk in chunks {
            s.spawn(move || {
                for x in chunk {
                    *total += *x;
                }
            });
        }
    });
}
