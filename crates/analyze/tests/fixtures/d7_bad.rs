//! D7 fixture: the registered hot path itself is allocation-free (D5 is
//! silent), but a helper it calls allocates — only the transitive
//! reachability query sees it.

pub fn hot_entry(xs: &[u64]) -> u64 {
    let mut acc = 0u64;
    for x in xs {
        acc += *x;
    }
    acc + helper_total(xs)
}

fn helper_total(xs: &[u64]) -> u64 {
    let mut buf = Vec::with_capacity(xs.len());
    for x in xs {
        buf.push(*x * 2);
    }
    buf.iter().copied().max().unwrap_or(0)
}
