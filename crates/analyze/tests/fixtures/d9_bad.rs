//! D9 fixture: a perfectly justified unsafe block (D3 is silent) that
//! still lives outside the audited unsafe islands.

pub fn first_byte(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees at least one element.
    unsafe { *bytes.as_ptr() }
}
