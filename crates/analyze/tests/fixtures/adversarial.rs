//! Lexer/parser stress fixture: every rule trigger below is a decoy
//! hidden where only a broken lexer would see it — string literals,
//! nested block comments, raw strings, macro-quoted text. The analyzer
//! must report nothing.

pub fn decoys() -> usize {
    // Raw string: its contents must be invisible to every rule.
    let s = r#"unsafe { HashMap::new() } and Instant::now() and Mutex::lock()"#;
    // Hash-quoted raw string containing a quote.
    let r = r##"a "quoted" for x in map.values() { total += x }"##;
    // Plain string with escapes that would desynchronize a naive scanner.
    let t = "for \"x\" in map.values() { total += x } \\";
    /* Nested /* block comment: unsafe, Mutex::lock(), SystemTime::now()
       all live here */ and the outer level continues past the nesting */
    let apostrophe = '\'';
    let backslash = '\\';
    let brace = '{';
    s.len() + r.len() + t.len() + (apostrophe as usize) + (backslash as usize) + (brace as usize)
}

/// Lifetimes must lex as lifetimes, not unterminated char literals.
pub struct Holder<'a> {
    slice: &'a [u8],
}

impl<'a> Holder<'a> {
    pub fn head(&self) -> Option<&'a u8> {
        self.slice.first()
    }

    pub fn tail(&self) -> &'a [u8] {
        &self.slice[1..]
    }
}

macro_rules! quoted {
    () => {
        "Instant::now() quoted inside a macro body"
    };
}

pub fn via_macro() -> &'static str {
    quoted!()
}
