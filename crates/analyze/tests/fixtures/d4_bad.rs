// D4 fixture: a raw wall-clock read outside the observability allowlist.
// Exactly one finding: the `Instant::now()` call.
use std::time::Instant;

pub fn step_timed(work: impl FnOnce()) -> u128 {
    let t0 = Instant::now();
    work();
    t0.elapsed().as_nanos()
}
