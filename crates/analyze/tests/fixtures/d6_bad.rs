// D6 fixture: two let-bound guards taken in opposite orders in two
// functions — a classic AB/BA deadlock. Exactly one finding (one
// canonical cycle, however many edges feed it).
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u64 {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        *a + *b
    }
}
