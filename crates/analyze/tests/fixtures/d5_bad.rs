// D5 fixture: an allocation inside a registered hot-path function.
// Exactly one finding (`Vec::new`), under a config that registers
// `hot_inner` as a hot path.

pub fn hot_inner(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    for x in xs {
        out.push(*x * 2.0);
    }
    out
}
