// D1 fixture: hash-order iteration feeding a float sum. Exactly one
// finding: the `.values().sum()` chain below. (Never compiled — this
// directory is excluded from the workspace scan and from cargo.)
use std::collections::HashMap;

pub fn total_energy(per_atom: &HashMap<usize, f64>) -> f64 {
    per_atom.values().sum()
}
