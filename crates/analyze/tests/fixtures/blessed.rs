// Blessed-pattern fixture: every construct here is the sanctioned version
// of something a rule polices. The analyzer must stay silent on all of it.
use std::collections::HashMap;
use std::sync::Mutex;

/// D2's blessed shape: per-chunk buffers merged in chunk index order.
/// Deterministic at any thread count because the merge order is the chunk
/// order, never the completion order.
pub fn chunk_ordered_sum(chunks: &[Vec<f64>]) -> f64 {
    let mut partials = vec![0.0f64; chunks.len()];
    for (slot, chunk) in partials.iter_mut().zip(chunks) {
        for x in chunk {
            *slot += *x;
        }
    }
    let mut total = 0.0;
    for p in &partials {
        total += *p;
    }
    total
}

/// D1's blessed shape: collect-then-sort. The hash iteration exists, but
/// the very next statement restores a deterministic order.
pub fn sorted_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

/// D1's inline escape hatch: an order-independent reduction over hash
/// iteration, justified in place.
pub fn checksum(m: &HashMap<u32, u32>) -> u32 {
    // dpmd-allow D1: wrapping add is commutative and associative, so hash order is harmless
    m.values().fold(0u32, |a, b| a.wrapping_add(*b))
}

/// D3's escape hatch is the justification itself.
pub fn first_or_zero(bytes: &[u8]) -> u8 {
    if bytes.is_empty() {
        return 0;
    }
    // SAFETY: emptiness was checked above, so index 0 is in bounds and
    // the pointer read is within the slice's allocation.
    unsafe { *bytes.as_ptr() }
}

/// D6 stays quiet when every function agrees on one acquisition order.
pub struct State {
    first: Mutex<u64>,
    second: Mutex<u64>,
}

impl State {
    pub fn sum(&self) -> u64 {
        let a = self.first.lock().unwrap();
        let b = self.second.lock().unwrap();
        *a + *b
    }

    pub fn product(&self) -> u64 {
        let a = self.first.lock().unwrap();
        let b = self.second.lock().unwrap();
        *a * *b
    }
}
