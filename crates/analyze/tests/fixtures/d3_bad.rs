// D3 fixture: an unsafe block with no justification comment attached.
// Exactly one finding.

pub fn first_byte(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
