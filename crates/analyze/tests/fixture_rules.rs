//! Fixture-driven rule tests: each `d<n>_bad.rs` fixture fires its rule
//! exactly once; the blessed and adversarial fixtures stay silent.
//!
//! Fixtures are analyzed under **synthetic** `crates/fixture/src/…` paths:
//! the parser treats real `tests/` paths as test-like (rules are relaxed
//! there), which would defeat the point of the fixtures.

use dpmd_analyze::analyze_source;
use dpmd_analyze::config::{Config, HotPath};
use dpmd_analyze::diag::{Finding, RuleId};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Analyze fixture `name` under a synthetic production path.
fn run(name: &str, cfg: &Config) -> Vec<Finding> {
    analyze_source(&format!("crates/fixture/src/{name}"), &fixture(name), cfg)
}

/// The config fixtures run under: default rules plus the D5/D7 fixtures'
/// hot-path registrations, and D9 island entries for the fixtures whose
/// unsafe blocks are someone else's subject (blessed, D3).
fn fixture_config() -> Config {
    let mut cfg = Config::default();
    cfg.hotpaths.push(HotPath {
        path_suffix: "crates/fixture/src/d5_bad.rs".to_string(),
        fn_name: "hot_inner".to_string(),
    });
    cfg.hotpaths.push(HotPath {
        path_suffix: "crates/fixture/src/d7_bad.rs".to_string(),
        fn_name: "hot_entry".to_string(),
    });
    cfg.d9_islands.push("crates/fixture/src/blessed.rs".to_string());
    cfg.d9_islands.push("crates/fixture/src/d3_bad.rs".to_string());
    cfg
}

fn assert_fires_once(name: &str, rule: RuleId) {
    let findings = run(name, &fixture_config());
    assert_eq!(
        findings.len(),
        1,
        "{name} must produce exactly one finding, got {findings:?}"
    );
    assert_eq!(findings[0].rule, rule, "{name} fired the wrong rule: {findings:?}");
    assert!(findings[0].line > 0, "{name} finding must carry a line");
}

#[test]
fn d1_bad_fires_exactly_once() {
    assert_fires_once("d1_bad.rs", RuleId::D1);
}

#[test]
fn d2_bad_fires_exactly_once() {
    assert_fires_once("d2_bad.rs", RuleId::D2);
}

#[test]
fn d3_bad_fires_exactly_once() {
    assert_fires_once("d3_bad.rs", RuleId::D3);
}

#[test]
fn d4_bad_fires_exactly_once() {
    assert_fires_once("d4_bad.rs", RuleId::D4);
}

#[test]
fn d5_bad_fires_exactly_once() {
    assert_fires_once("d5_bad.rs", RuleId::D5);
}

#[test]
fn d6_bad_fires_exactly_once() {
    assert_fires_once("d6_bad.rs", RuleId::D6);
}

#[test]
fn d7_bad_fires_exactly_once() {
    assert_fires_once("d7_bad.rs", RuleId::D7);
}

#[test]
fn d8_bad_fires_exactly_once() {
    assert_fires_once("d8_bad.rs", RuleId::D8);
}

#[test]
fn d9_bad_fires_exactly_once() {
    assert_fires_once("d9_bad.rs", RuleId::D9);
}

#[test]
fn d10_bad_fires_exactly_once() {
    assert_fires_once("d10_bad.rs", RuleId::D10);
}

#[test]
fn d7_fixture_is_quiet_without_registration() {
    // Reachability starts at the hot-path manifest: with no roots, the
    // allocating helper is unreachable by definition.
    let findings = run("d7_bad.rs", &Config::default());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d8_fixture_is_quiet_with_an_enumerated_reader() {
    let mut cfg = fixture_config();
    cfg.d8_clock_allow.push(HotPath {
        path_suffix: "crates/fixture/src/d8_bad.rs".to_string(),
        fn_name: "step_time".to_string(),
    });
    let findings = run("d8_bad.rs", &cfg);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d9_fixture_is_quiet_inside_an_island() {
    let mut cfg = fixture_config();
    cfg.d9_islands.push("crates/fixture/src/d9_bad.rs".to_string());
    let findings = run("d9_bad.rs", &cfg);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d10_fixture_is_quiet_with_blessed_edges() {
    let mut cfg = fixture_config();
    cfg.d10_blessed_edges.push(("fixture::a".to_string(), "fixture::b".to_string()));
    cfg.d10_blessed_edges.push(("fixture::b".to_string(), "fixture::a".to_string()));
    let findings = run("d10_bad.rs", &cfg);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn blessed_patterns_stay_silent() {
    let findings = run("blessed.rs", &fixture_config());
    assert!(findings.is_empty(), "blessed fixture must be clean: {findings:?}");
}

#[test]
fn adversarial_decoys_stay_silent() {
    let findings = run("adversarial.rs", &fixture_config());
    assert!(findings.is_empty(), "adversarial fixture must be clean: {findings:?}");
}

#[test]
fn d4_fixture_is_quiet_on_an_allowlisted_path() {
    // The same source that fires under a production path is fine inside
    // the observability crate.
    let findings = analyze_source(
        "crates/obs/src/anything.rs",
        &fixture("d4_bad.rs"),
        &fixture_config(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d5_fixture_is_quiet_without_registration() {
    // The hot-path manifest is opt-in: the same allocation is legal in an
    // unregistered function.
    let findings = run("d5_bad.rs", &Config::default());
    assert!(findings.is_empty(), "{findings:?}");
}
