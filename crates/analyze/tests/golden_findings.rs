//! Golden JSON snapshot of the fixture findings.
//!
//! The report serialization (`diag::to_json`) must be bit-stable:
//! canonically sorted, no timestamps, no map-order dependence. This test
//! runs the full fixture set twice, requires the two serializations to be
//! byte-identical, and compares against the committed golden file.
//!
//! Refresh after an intentional rule/message change with:
//! `DPMD_BLESS=1 cargo test -p dpmd-analyze --test golden_findings`

use dpmd_analyze::analyze_source;
use dpmd_analyze::config::{Config, HotPath};
use dpmd_analyze::diag::{self, Finding};

const BAD_FIXTURES: &[&str] = &[
    "d1_bad.rs",
    "d2_bad.rs",
    "d3_bad.rs",
    "d4_bad.rs",
    "d5_bad.rs",
    "d6_bad.rs",
    "d7_bad.rs",
    "d8_bad.rs",
    "d9_bad.rs",
    "d10_bad.rs",
];

fn analyze_all() -> Vec<Finding> {
    let mut cfg = Config::default();
    cfg.hotpaths.push(HotPath {
        path_suffix: "crates/fixture/src/d5_bad.rs".to_string(),
        fn_name: "hot_inner".to_string(),
    });
    cfg.hotpaths.push(HotPath {
        path_suffix: "crates/fixture/src/d7_bad.rs".to_string(),
        fn_name: "hot_entry".to_string(),
    });
    cfg.d9_islands.push("crates/fixture/src/d3_bad.rs".to_string());
    let mut findings = Vec::new();
    for name in BAD_FIXTURES {
        let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        findings.extend(analyze_source(&format!("crates/fixture/src/{name}"), &src, &cfg));
    }
    diag::sort_findings(&mut findings);
    findings
}

#[test]
fn fixture_findings_match_the_golden_snapshot() {
    let first = diag::to_json(&analyze_all());
    let second = diag::to_json(&analyze_all());
    assert_eq!(first, second, "report serialization must be bit-stable across runs");

    let golden_path = format!("{}/tests/golden/findings.json", env!("CARGO_MANIFEST_DIR"));
    let rendered = first + "\n";
    if std::env::var("DPMD_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {golden_path}: {e} (run with DPMD_BLESS=1 to create)"));
    assert_eq!(
        rendered, golden,
        "fixture findings diverged from the golden snapshot; if the change is \
         intentional, refresh with DPMD_BLESS=1"
    );
}
