//! Graph-layer tests: symbol resolution across modules and crates, a golden
//! call-graph snapshot of a real crate, and property tests that the
//! resolver's output is deterministic and self-consistent.
//!
//! Refresh the golden snapshot after an intentional resolver change with:
//! `DPMD_BLESS=1 cargo test -p dpmd-analyze --test graph_resolution`

use std::collections::BTreeMap;
use std::path::Path;

use dpmd_analyze::graph::CallGraph;
use dpmd_analyze::parser::{parse_file, ParsedFile};
use dpmd_analyze::workspace_lib_names;
use proptest::prelude::*;

/// Parse in-memory sources (path, src) into the shape `CallGraph::build`
/// expects: sorted by path.
fn parse_all(sources: &[(&str, &str)]) -> Vec<ParsedFile> {
    let mut files: Vec<ParsedFile> =
        sources.iter().map(|(p, s)| parse_file(p, s)).collect();
    files.sort_by(|a, b| a.path.cmp(&b.path));
    files
}

fn node_qnames(g: &CallGraph) -> Vec<&str> {
    g.nodes.iter().map(|n| n.qname.as_str()).collect()
}

/// Rendered `caller -> callee` pairs, for readable assertions.
fn edge_pairs(g: &CallGraph) -> Vec<(String, String)> {
    g.edges
        .iter()
        .map(|e| (g.nodes[e.from].qname.clone(), g.nodes[e.to].qname.clone()))
        .collect()
}

#[test]
fn cross_module_calls_resolve_within_a_crate() {
    let files = parse_all(&[
        (
            "crates/demo/src/alpha.rs",
            "use crate::beta::helper;\npub fn entry() { helper(); }\n",
        ),
        ("crates/demo/src/beta.rs", "pub fn helper() {}\n"),
    ]);
    let g = CallGraph::build(&files, &BTreeMap::new());
    assert_eq!(
        node_qnames(&g),
        ["demo::alpha::entry", "demo::beta::helper"],
        "one node per fn, in path order"
    );
    assert_eq!(
        edge_pairs(&g),
        [("demo::alpha::entry".to_string(), "demo::beta::helper".to_string())]
    );
    assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    assert_eq!(g.stats.sites, 1);
    assert_eq!(g.stats.resolved, 1);
}

#[test]
fn cross_crate_calls_resolve_through_the_lib_name() {
    // `one`'s Cargo.toml names the lib `one_lib`; `two` imports through
    // that name, exactly like dpmd-obs -> `dpmd_obs` in the real tree.
    let mut lib_names = BTreeMap::new();
    lib_names.insert("one".to_string(), "one_lib".to_string());
    lib_names.insert("two".to_string(), "two_lib".to_string());
    let files = parse_all(&[
        ("crates/one/src/lib.rs", "pub fn leaf() {}\n"),
        (
            "crates/two/src/lib.rs",
            "use one_lib::leaf;\npub fn root() { leaf(); }\n",
        ),
    ]);
    let g = CallGraph::build(&files, &lib_names);
    assert_eq!(
        edge_pairs(&g),
        [("two_lib::root".to_string(), "one_lib::leaf".to_string())]
    );
    assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
}

#[test]
fn fully_qualified_cross_crate_paths_resolve_without_an_import() {
    let mut lib_names = BTreeMap::new();
    lib_names.insert("one".to_string(), "one_lib".to_string());
    let files = parse_all(&[
        ("crates/one/src/util.rs", "pub fn leaf() {}\n"),
        (
            "crates/two/src/lib.rs",
            "pub fn root() { one_lib::util::leaf(); }\n",
        ),
    ]);
    let g = CallGraph::build(&files, &lib_names);
    assert_eq!(
        edge_pairs(&g),
        [("two::root".to_string(), "one_lib::util::leaf".to_string())]
    );
    assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
}

#[test]
fn self_method_calls_resolve_to_the_impl_type() {
    let files = parse_all(&[(
        "crates/demo/src/gamma.rs",
        "pub struct Widget;\nimpl Widget {\n    pub fn outer(&self) { self.inner(); }\n    fn inner(&self) {}\n}\n",
    )]);
    let g = CallGraph::build(&files, &BTreeMap::new());
    assert_eq!(
        edge_pairs(&g),
        [(
            "demo::gamma::Widget::outer".to_string(),
            "demo::gamma::Widget::inner".to_string()
        )]
    );
    assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
}

#[test]
fn unknown_callees_are_listed_not_dropped() {
    // A path call into a crate-local module that does not exist anywhere in
    // the scanned set must land in `unresolved` with the site preserved.
    let files = parse_all(&[(
        "crates/demo/src/lib.rs",
        "pub fn entry() { crate::missing::helper(); }\n",
    )]);
    let g = CallGraph::build(&files, &BTreeMap::new());
    assert!(g.edges.is_empty());
    assert_eq!(g.unresolved.len(), 1, "{:?}", g.unresolved);
    assert_eq!(g.unresolved[0].path, "crates/demo/src/lib.rs");
    assert!(
        g.unresolved[0].callee.contains("helper"),
        "site must name the callee: {:?}",
        g.unresolved[0]
    );
    // The site still counts toward the denominator.
    assert_eq!(g.stats.sites, 1);
    assert_eq!(g.stats.resolved, 0);
}

/// Build the real `dpmd-threads` call graph from the committed sources.
fn threads_graph() -> CallGraph {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let lib_names = workspace_lib_names(&root);
    let dir = root.join("crates/threads/src");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    paths.sort();
    let files: Vec<ParsedFile> = paths
        .iter()
        .map(|p| {
            let rel = format!(
                "crates/threads/src/{}",
                p.file_name().unwrap().to_string_lossy()
            );
            let src = std::fs::read_to_string(p).unwrap();
            parse_file(&rel, &src)
        })
        .collect();
    CallGraph::build(&files, &lib_names)
}

#[test]
fn threads_callgraph_matches_the_golden_snapshot() {
    let g = threads_graph();
    let rendered = g.to_json() + "\n";
    // Two builds over the same sources must serialize identically.
    assert_eq!(rendered, threads_graph().to_json() + "\n");

    let golden_path = format!(
        "{}/tests/golden/callgraph_threads.json",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var("DPMD_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {golden_path}: {e} (run with DPMD_BLESS=1 to create)"));
    assert_eq!(
        rendered, golden,
        "dpmd-threads call graph diverged from the golden snapshot; if the \
         resolver change is intentional, refresh with DPMD_BLESS=1"
    );
}

/// A small synthetic workspace derived deterministically from a seed: a few
/// crates, each with a few functions that call forward into later
/// functions (same crate via plain name or `crate::` path, across crates
/// via the lib name).
fn synth_workspace(seed: u64) -> Vec<(String, String)> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64 — deterministic, no external RNG.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let ncrates = 2 + (next() % 2) as usize;
    let per_crate = 2 + (next() % 3) as usize;
    let mut sources = Vec::new();
    for c in 0..ncrates {
        let mut src = String::new();
        for f in 0..per_crate {
            let mut body = String::new();
            // Call a later fn in this crate and optionally one in crate 0,
            // always by a name that exists.
            if f + 1 < per_crate {
                body.push_str(&format!("    fnc{c}_{}();\n", f + 1));
            }
            if c > 0 && next() % 2 == 0 {
                src = format!("use crate0::fnc0_0;\n{src}");
                body.push_str("    fnc0_0();\n");
            }
            src.push_str(&format!("pub fn fnc{c}_{f}() {{\n{body}}}\n"));
        }
        sources.push((format!("crates/crate{c}/src/lib.rs"), src));
    }
    sources
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two builds over the same synthetic workspace serialize to the same
    /// bytes, and the graph is self-consistent: every edge endpoint is a
    /// valid node, every site is accounted for exactly once.
    #[test]
    fn resolver_output_is_deterministic_and_self_consistent(seed in any::<u64>()) {
        let sources = synth_workspace(seed);
        let refs: Vec<(&str, &str)> =
            sources.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
        let files = parse_all(&refs);
        let g1 = CallGraph::build(&files, &BTreeMap::new());
        let g2 = CallGraph::build(&files, &BTreeMap::new());
        prop_assert_eq!(g1.to_json(), g2.to_json());

        for e in &g1.edges {
            prop_assert!(e.from < g1.nodes.len());
            prop_assert!(e.to < g1.nodes.len());
        }
        prop_assert_eq!(
            g1.stats.sites,
            g1.stats.resolved + g1.stats.external + g1.unresolved.len() as u64,
            "every call site is resolved, external, or listed as unresolved"
        );
        // The synthetic workspace only calls functions that exist.
        prop_assert!(g1.unresolved.is_empty(), "{:?}", g1.unresolved);
        // out[] is the exact inverse index of edges.
        let mut total = 0usize;
        for (from, idxs) in g1.out.iter().enumerate() {
            for &i in idxs {
                prop_assert_eq!(g1.edges[i].from, from);
                total += 1;
            }
        }
        prop_assert_eq!(total, g1.edges.len());
    }
}
