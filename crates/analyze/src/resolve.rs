//! Symbol resolution: from parsed files to qualified function symbols and
//! resolved call sites.
//!
//! This is deliberately *not* a full Rust name resolver — it is the subset
//! the interprocedural rules need, tuned to this workspace's idiom:
//!
//! * every function/method gets a qualified name `lib::mods…::[Type::]name`
//!   derived from its filesystem location plus inline `mod`/`impl` context;
//! * call sites are classified (plain call, `a::b::f(…)` path call,
//!   `.method(…)` call) and resolved through scoping tiers — same file,
//!   `use` imports, glob imports, same crate, workspace-wide — recorded per
//!   edge so the statistics expose how much each heuristic carries;
//! * method calls resolve to workspace methods with that name, narrowed to
//!   receiver types *visible* in the calling file (imported, defined, or
//!   `impl`'d there); when the narrowing would empty the candidate set the
//!   full fan-out is kept, so the over-approximation dynamic dispatch needs
//!   survives while unrelated same-name inherent methods drop out.
//!   Methods whose names collide with common `std` methods (`push`,
//!   `iter`, …) are treated as external unless the receiver is `self`;
//!   the trade-off is documented on [`STD_METHODS`].
//!
//! Unresolvable sites are never dropped: they are returned with a reason so
//! the CLI can list them and CI can gate on the resolution rate.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Token;
use crate::parser::ParsedFile;

/// How a call edge was resolved (its scoping tier).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Plain call to a function in the same file.
    File,
    /// Plain call resolved through a `use` import.
    Import,
    /// Plain call resolved through a glob import.
    Glob,
    /// Plain call resolved to a same-crate function (heuristic fallback).
    Crate,
    /// Plain call resolved by name anywhere in the workspace (last resort).
    Global,
    /// Qualified `a::b::f(…)` path call.
    Path,
    /// `self.f(…)` resolved to a method of the enclosing impl type.
    SelfMethod,
    /// `.f(…)` resolved to every workspace method named `f`.
    Method,
}

impl EdgeKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EdgeKind::File => "file",
            EdgeKind::Import => "import",
            EdgeKind::Glob => "glob",
            EdgeKind::Crate => "crate",
            EdgeKind::Global => "global",
            EdgeKind::Path => "path",
            EdgeKind::SelfMethod => "self_method",
            EdgeKind::Method => "method",
        }
    }
}

/// One syntactic call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Token index of the callee name.
    pub tok: usize,
    pub line: u32,
    /// Callee name as written (last path segment / method name).
    pub name: String,
    /// Leading path segments for qualified calls (`a::b` of `a::b::f`).
    pub qual: Vec<String>,
    /// `.name(…)` method-call shape.
    pub is_method: bool,
    /// Method receiver is literally `self` (`self.name(…)`).
    pub self_recv: bool,
}

/// Identity of a function symbol: its qualified segments.
#[derive(Clone, Debug)]
pub struct Symbol {
    /// `lib::mods…::[Type::]name` as segments.
    pub segs: Vec<String>,
    /// Index of the defining file in the input slice.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
}

impl Symbol {
    pub fn qname(&self) -> String {
        self.segs.join("::")
    }

    pub fn name(&self) -> &str {
        self.segs.last().map(String::as_str).unwrap_or("")
    }
}

/// Derive `(lib_name, module_path)` for a repo-relative file path.
///
/// `lib_names` maps crate *directory* names (`comm`) to library names
/// (`dpmd_comm`); unknown directories fall back to `dir` with `-` → `_`,
/// which is correct for every crate here whose package name matches its
/// directory. `tests/`, `benches/` and `examples/` targets are their own
/// crates; they get a synthetic `tests::<stem>` module under the owning
/// library so their symbols never collide with production ones.
pub fn module_of(path: &str, lib_names: &BTreeMap<String, String>) -> (String, Vec<String>) {
    let parts: Vec<&str> = path.split('/').collect();
    let (lib_dir, rest): (&str, &[&str]) = match parts.as_slice() {
        ["crates", "shims", dir, rest @ ..] => (dir, rest),
        ["crates", dir, rest @ ..] => (dir, rest),
        rest => ("dpmd-repro", rest),
    };
    let lib = lib_names
        .get(lib_dir)
        .cloned()
        .unwrap_or_else(|| lib_dir.replace('-', "_"));
    let mut mods = Vec::new();
    match rest {
        ["src", file @ ..] => {
            for (i, seg) in file.iter().enumerate() {
                let last = i + 1 == file.len();
                if last {
                    let stem = seg.strip_suffix(".rs").unwrap_or(seg);
                    if !matches!(stem, "lib" | "main" | "mod") {
                        mods.push(stem.to_string());
                    }
                } else {
                    mods.push(seg.to_string());
                }
            }
        }
        [kind @ ("tests" | "benches" | "examples"), file @ ..] => {
            mods.push(kind.to_string());
            for seg in file {
                let stem = seg.strip_suffix(".rs").unwrap_or(seg);
                mods.push(stem.to_string());
            }
        }
        file => {
            for seg in file {
                let stem = seg.strip_suffix(".rs").unwrap_or(seg);
                if !matches!(stem, "lib" | "main" | "mod") {
                    mods.push(stem.to_string());
                }
            }
        }
    }
    (lib, mods)
}

/// Build the symbol list for one parsed file.
pub fn file_symbols(
    file_idx: usize,
    parsed: &ParsedFile,
    lib_names: &BTreeMap<String, String>,
) -> Vec<Symbol> {
    let (lib, mods) = module_of(&parsed.path, lib_names);
    parsed
        .fns
        .iter()
        .enumerate()
        .map(|(fn_idx, f)| {
            let mut segs = Vec::with_capacity(mods.len() + f.mod_path.len() + 3);
            segs.push(lib.clone());
            segs.extend(mods.iter().cloned());
            segs.extend(f.mod_path.iter().cloned());
            if let Some(ty) = &f.impl_type {
                segs.push(ty.clone());
            }
            segs.push(f.name.clone());
            Symbol { segs, file: file_idx, fn_idx }
        })
        .collect()
}

/// Type names in scope in one file: `use` imports whose alias starts
/// uppercase, types declared in the file (`struct`/`enum`/`trait`/`union`
/// keywords followed by a name), and the impl/trait types of its functions.
/// Used to narrow method fan-out to receivers the file could actually name.
pub fn file_visible_types(parsed: &ParsedFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for u in &parsed.uses {
        if u.alias.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            out.insert(u.alias.clone());
        }
    }
    for f in &parsed.fns {
        if let Some(ty) = &f.impl_type {
            out.insert(ty.clone());
        }
        if let Some(tr) = &f.trait_name {
            out.insert(tr.clone());
        }
    }
    let toks = &parsed.tokens;
    for i in 0..toks.len() {
        if toks[i]
            .ident()
            .is_some_and(|id| matches!(id, "struct" | "enum" | "trait" | "union"))
        {
            if let Some(name) = toks.get(i + 1).and_then(Token::ident) {
                out.insert(name.to_string());
            }
        }
    }
    out
}

/// Keywords and control-flow identifiers that look like `ident (` but are
/// never calls.
const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "in", "as", "move", "let", "else",
    "break", "continue", "unsafe", "where", "impl", "dyn", "ref", "mut", "pub", "use", "mod",
    "crate", "super", "self", "Self", "static", "const", "type", "enum", "struct", "trait",
    "await", "async", "yield", "box",
];

/// Tuple-enum constructors that would otherwise pollute the external count.
const STD_CTORS: &[&str] = &["Some", "Ok", "Err", "None", "Cow", "Bound", "Poll"];

/// Method names owned by `std`/`core` container and iterator APIs. A
/// `.push(…)` on an unknown receiver is overwhelmingly `Vec::push`, not a
/// workspace method; resolving such names to every same-named workspace
/// method would wire the call graph into a near-clique. The cost is a
/// *documented* blind spot: a workspace method that shadows one of these
/// names is only resolved when called through `self` or a qualified path.
const STD_METHODS: &[&str] = &[
    "push", "pop", "insert", "remove", "get", "get_mut", "len", "is_empty", "iter", "iter_mut",
    "into_iter", "next", "map", "filter", "fold", "sum", "product", "collect", "extend", "clear",
    "clone", "to_vec", "to_string", "to_owned", "as_str", "as_ref", "as_mut", "as_slice",
    "as_bytes", "unwrap", "unwrap_or", "unwrap_or_else", "unwrap_or_default", "expect", "ok",
    "err", "is_some", "is_none", "is_ok", "is_err", "and_then", "or_else", "ok_or",
    "ok_or_else", "take", "replace", "contains", "contains_key", "starts_with", "ends_with",
    "split", "join", "trim", "parse", "chars", "bytes", "lines", "entry", "or_insert",
    "or_insert_with", "keys", "values", "values_mut", "drain", "retain", "sort", "sort_by",
    "sort_by_key", "sort_unstable", "sort_unstable_by", "sort_unstable_by_key", "binary_search",
    "binary_search_by", "chunks", "chunks_exact", "chunks_mut", "windows", "first", "last",
    "split_at", "split_at_mut", "swap", "reverse", "resize", "truncate", "reserve",
    "with_capacity", "zip", "enumerate", "rev", "skip", "step_by", "copied", "cloned",
    "flat_map", "flatten", "any", "all", "find", "position", "count", "min", "max", "min_by",
    "max_by", "min_by_key", "max_by_key", "abs", "sqrt", "powi", "powf", "exp", "ln", "floor",
    "ceil", "round", "mul_add", "to_bits", "from_bits", "max_element", "lock", "read", "write",
    "try_lock", "borrow", "borrow_mut", "fetch_add", "fetch_sub", "load", "store", "wrapping_add",
    "wrapping_sub", "wrapping_mul", "saturating_add", "saturating_sub", "checked_add",
    "checked_sub", "checked_mul", "checked_div", "rem_euclid", "div_euclid", "to_le_bytes",
    "to_be_bytes", "from_le_bytes", "write_all", "write_str", "read_to_string", "flush",
    "display", "fmt", "eq", "ne", "cmp", "partial_cmp", "hash", "default", "min_element",
    "elapsed", "as_secs_f64", "as_nanos", "as_micros", "as_millis", "duration_since",
    "saturating_duration_since", "checked_duration_since", "dedup", "dedup_by_key", "dedup_by",
    "fill", "copy_from_slice", "clone_from_slice", "splice", "append", "concat", "repeat",
    "find_map", "filter_map", "peekable", "peek", "nth", "chain", "cycle", "by_ref", "inspect",
    "scan", "take_while", "skip_while", "partition", "unzip", "is_finite", "is_nan",
    "is_infinite", "signum", "hypot", "atan2", "sin", "cos", "tan", "tanh", "cosh", "sinh",
    "cbrt", "recip", "to_degrees", "to_radians", "clamp", "is_char_boundary", "char_indices",
    "split_whitespace", "splitn", "rsplitn", "strip_prefix", "strip_suffix", "trim_start",
    "trim_end", "trim_start_matches", "trim_end_matches", "to_ascii_lowercase",
    "to_ascii_uppercase", "to_lowercase", "to_uppercase", "is_dir", "is_file", "exists",
    "components", "file_name", "to_string_lossy", "into_owned", "into_keys", "into_values",
];

/// Extract call sites from the token range `[lo, hi)` of one function body.
pub fn call_sites(tokens: &[Token], lo: usize, hi: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi.min(tokens.len()) {
        let t = &tokens[i];
        let Some(name) = t.ident() else {
            i += 1;
            continue;
        };
        if NOT_CALLS.contains(&name) || STD_CTORS.contains(&name) {
            i += 1;
            continue;
        }
        // Macro invocation name: `name!(…)` — not a function call. The
        // arguments are still scanned (real calls live inside them).
        if tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            i += 1;
            continue;
        }
        // Definition, not a call: `fn name(` — the parser owns those.
        if i > 0 && tokens[i - 1].is_ident("fn") {
            i += 1;
            continue;
        }
        // Turbofish: `name::<T>(…)` / `.name::<T>(…)`.
        let after = if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('<'))
        {
            crate::parser::match_angle(tokens, i + 3) + 1
        } else {
            i + 1
        };
        if !tokens.get(after).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let is_method = i > 0 && tokens[i - 1].is_punct('.');
        if is_method {
            let self_recv = i >= 2 && tokens[i - 2].is_ident("self");
            out.push(CallSite {
                tok: i,
                line: t.line,
                name: name.to_string(),
                qual: Vec::new(),
                is_method: true,
                self_recv,
            });
            i = after;
            continue;
        }
        // Qualified path: walk back over `seg ::` pairs.
        let mut qual = Vec::new();
        let mut j = i;
        while j >= 2
            && tokens[j - 1].is_punct(':')
            && tokens[j - 2].is_punct(':')
            && j >= 3
            && tokens[j - 3].ident().is_some()
        {
            qual.push(tokens[j - 3].ident().unwrap_or_default().to_string());
            j -= 3;
        }
        qual.reverse();
        // `Some(…)`-style construction after a path (e.g. `Option::Some`)
        // is still not a call; a capitalized terminal with a capitalized
        // qualifier head is typically `Enum::Variant(…)` — keep those,
        // resolution classifies them as external.
        out.push(CallSite {
            tok: i,
            line: t.line,
            name: name.to_string(),
            qual,
            is_method: false,
            self_recv: false,
        });
        i = after;
    }
    out
}

/// Outcome of resolving one call site.
#[derive(Clone, Debug)]
pub enum Resolution {
    /// Resolved to one or more workspace symbols (ambiguity keeps all —
    /// the conservative direction for reachability rules).
    Resolved { targets: Vec<usize>, kind: EdgeKind },
    /// No workspace symbol can be the callee (std / shim / closure call).
    External,
    /// The site *looks* workspace-bound (a known library name in its path,
    /// or a workspace-colliding plain name that scoping rejected) but no
    /// target was found. Listed, never silently dropped.
    Unresolved { reason: String },
}

/// Workspace-wide symbol index.
pub struct Resolver {
    /// All symbols, in file order (stable: files are pre-sorted by path).
    pub symbols: Vec<Symbol>,
    /// name → symbol indices.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Known library names (first path segment of absolute paths).
    lib_names: Vec<String>,
    /// Per file: `(lib, mods)` from `module_of`.
    pub file_mods: Vec<(String, Vec<String>)>,
    /// Per file: type names in scope (imports with an uppercase initial,
    /// plus types defined or `impl`'d in the file). Used to narrow method
    /// fan-out to receivers the caller could actually name.
    visible_types: Vec<BTreeSet<String>>,
}

impl Resolver {
    pub fn new(files: &[ParsedFile], lib_names_map: &BTreeMap<String, String>) -> Resolver {
        let mut symbols = Vec::new();
        let mut file_mods = Vec::new();
        let mut visible_types = Vec::new();
        for (i, f) in files.iter().enumerate() {
            symbols.extend(file_symbols(i, f, lib_names_map));
            file_mods.push(module_of(&f.path, lib_names_map));
            visible_types.push(file_visible_types(f));
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, s) in symbols.iter().enumerate() {
            by_name.entry(s.name().to_string()).or_default().push(i);
        }
        let mut lib_names: Vec<String> = file_mods.iter().map(|(l, _)| l.clone()).collect();
        lib_names.sort();
        lib_names.dedup();
        Resolver { symbols, by_name, lib_names, file_mods, visible_types }
    }

    fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Symbols whose qualified segments end with `want` (segment-aligned).
    fn suffix_matches(&self, want: &[String]) -> Vec<usize> {
        let Some(last) = want.last() else { return Vec::new() };
        self.named(last)
            .iter()
            .copied()
            .filter(|&i| {
                let segs = &self.symbols[i].segs;
                segs.len() >= want.len() && segs[segs.len() - want.len()..] == *want
            })
            .collect()
    }

    /// Normalize a path's leading `crate`/`self`/`super` against the call
    /// site's own module, and expand a leading `use`-imported alias.
    fn absolutize(
        &self,
        qual_and_name: &[String],
        file: &ParsedFile,
        file_idx: usize,
    ) -> Vec<Vec<String>> {
        let (lib, mods) = &self.file_mods[file_idx];
        let mut cands = Vec::new();
        let first = qual_and_name.first().map(String::as_str).unwrap_or("");
        match first {
            "crate" => {
                let mut p = vec![lib.clone()];
                p.extend(qual_and_name[1..].iter().cloned());
                cands.push(p);
            }
            "self" => {
                let mut p = vec![lib.clone()];
                p.extend(mods.iter().cloned());
                p.extend(qual_and_name[1..].iter().cloned());
                cands.push(p);
            }
            "super" => {
                let mut p = vec![lib.clone()];
                let take = mods.len().saturating_sub(1);
                p.extend(mods[..take].iter().cloned());
                p.extend(qual_and_name[1..].iter().cloned());
                cands.push(p);
            }
            _ => {
                // A `use a::b::c;` alias expands `c::f` → `a::b::c::f`.
                for u in &file.uses {
                    if u.alias == first {
                        let mut p = u.path.clone();
                        p.extend(qual_and_name[1..].iter().cloned());
                        cands.push(p);
                    }
                }
                // The path as written (absolute or crate-root-relative).
                cands.push(qual_and_name.to_vec());
                // Child-module call: `helpers::f()` from module `m` means
                // `lib::m::helpers::f`.
                let mut p = vec![lib.clone()];
                p.extend(mods.iter().cloned());
                p.extend(qual_and_name.iter().cloned());
                cands.push(p);
            }
        }
        cands
    }

    /// Resolve one call site appearing in `file` (`file_idx`), from within
    /// the function `in_fn` (index into that file's `fns`, if known).
    pub fn resolve(
        &self,
        site: &CallSite,
        file: &ParsedFile,
        file_idx: usize,
        in_fn: Option<usize>,
    ) -> Resolution {
        if site.is_method {
            return self.resolve_method(site, file, file_idx, in_fn);
        }
        if !site.qual.is_empty() {
            return self.resolve_path(site, file, file_idx);
        }
        self.resolve_plain(site, file, file_idx)
    }

    fn resolve_method(
        &self,
        site: &CallSite,
        file: &ParsedFile,
        file_idx: usize,
        in_fn: Option<usize>,
    ) -> Resolution {
        // `self.f(…)`: prefer methods of the enclosing impl type.
        if site.self_recv {
            if let Some(fi) = in_fn {
                if let Some(ty) = file.fns.get(fi).and_then(|f| f.impl_type.clone()) {
                    let targets: Vec<usize> = self
                        .named(&site.name)
                        .iter()
                        .copied()
                        .filter(|&i| {
                            let s = &self.symbols[i];
                            s.segs.len() >= 2 && s.segs[s.segs.len() - 2] == ty
                        })
                        .collect();
                    if !targets.is_empty() {
                        return Resolution::Resolved { targets, kind: EdgeKind::SelfMethod };
                    }
                }
            }
        }
        if STD_METHODS.contains(&site.name.as_str()) && !site.self_recv {
            return Resolution::External;
        }
        // Any workspace *method* with this name (trait impls fan out —
        // the right over-approximation for dynamic dispatch).
        let targets: Vec<usize> = self
            .named(&site.name)
            .iter()
            .copied()
            .filter(|&i| {
                let s = &self.symbols[i];
                // A method symbol carries its impl type as the segment
                // before the name: `lib::…::Type::name` has len ≥ 3 and an
                // uppercase-initial penultimate segment.
                s.segs.len() >= 3
                    && s.segs[s.segs.len() - 2]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
            })
            .collect();
        // Narrow to receiver types the calling file can actually name
        // (imported, defined, or impl'd there). An empty narrowing keeps
        // the full fan-out — re-exports and trait objects whose impl types
        // are elsewhere must stay over-approximated, not dropped.
        let visible = &self.visible_types[file_idx];
        let narrowed: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|&i| {
                let s = &self.symbols[i];
                visible.contains(&s.segs[s.segs.len() - 2])
            })
            .collect();
        let targets = if narrowed.is_empty() { targets } else { narrowed };
        if targets.is_empty() {
            Resolution::External
        } else {
            Resolution::Resolved { targets, kind: EdgeKind::Method }
        }
    }

    fn resolve_path(&self, site: &CallSite, file: &ParsedFile, file_idx: usize) -> Resolution {
        let mut want = site.qual.clone();
        want.push(site.name.clone());
        for cand in self.absolutize(&want, file, file_idx) {
            let hits = self.suffix_matches(&cand);
            if !hits.is_empty() {
                return Resolution::Resolved { targets: hits, kind: EdgeKind::Path };
            }
        }
        // Bare `Type::method` / `mod::f` with no exact match: fall back to
        // a raw suffix match on the written path.
        let hits = self.suffix_matches(&want);
        if !hits.is_empty() {
            return Resolution::Resolved { targets: hits, kind: EdgeKind::Path };
        }
        let head = want.first().map(String::as_str).unwrap_or("");
        let workspace_head = self.lib_names.iter().any(|l| l == head)
            || matches!(head, "crate" | "self" | "super");
        if workspace_head {
            Resolution::Unresolved {
                reason: format!("workspace path `{}` matches no symbol", want.join("::")),
            }
        } else {
            Resolution::External
        }
    }

    fn resolve_plain(&self, site: &CallSite, file: &ParsedFile, file_idx: usize) -> Resolution {
        let name = site.name.as_str();
        // Tier 1: same file (innermost-scope approximation).
        let same_file: Vec<usize> = self
            .named(name)
            .iter()
            .copied()
            .filter(|&i| self.symbols[i].file == file_idx)
            .filter(|&i| file.fns[self.symbols[i].fn_idx].impl_type.is_none())
            .collect();
        if !same_file.is_empty() {
            return Resolution::Resolved { targets: same_file, kind: EdgeKind::File };
        }
        // Tier 2: `use` import.
        for u in &file.uses {
            if u.alias == name {
                let hits = self.suffix_matches(&u.path);
                if !hits.is_empty() {
                    return Resolution::Resolved { targets: hits, kind: EdgeKind::Import };
                }
            }
        }
        // Tier 3: glob imports.
        for g in &file.globs {
            let mut p = g.clone();
            // Normalize `use super::*;` / `use crate::…::*;` heads.
            let expanded = self.absolutize(
                &{
                    p.push(name.to_string());
                    p
                },
                file,
                file_idx,
            );
            for cand in expanded {
                let hits = self.suffix_matches(&cand);
                if !hits.is_empty() {
                    return Resolution::Resolved { targets: hits, kind: EdgeKind::Glob };
                }
            }
        }
        // One- and two-letter plain names past this point are overwhelmingly
        // closure parameters / local bindings being called (`f()`, `op()`),
        // not free functions in another file — resolving them through the
        // cross-file tiers would wire every higher-order helper to every
        // short-named function in the workspace.
        if name.len() <= 2 {
            return Resolution::External;
        }
        // Tier 4: free function elsewhere in the same crate.
        let lib = &self.file_mods[file_idx].0;
        let same_crate: Vec<usize> = self
            .named(name)
            .iter()
            .copied()
            .filter(|&i| {
                let s = &self.symbols[i];
                s.segs.first() == Some(lib)
                    && s.segs.len() >= 2
                    && !s.segs[s.segs.len() - 2]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
            })
            .collect();
        if !same_crate.is_empty() {
            return Resolution::Resolved { targets: same_crate, kind: EdgeKind::Crate };
        }
        // Tier 5: anywhere in the workspace (keeps the graph sound when a
        // re-export obscures the true home; recorded as `global` so the
        // stats expose how often this last resort fires).
        let anywhere: Vec<usize> = self
            .named(name)
            .iter()
            .copied()
            .filter(|&i| {
                let s = &self.symbols[i];
                s.segs.len() < 2
                    || !s.segs[s.segs.len() - 2]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
            })
            .collect();
        if !anywhere.is_empty() {
            return Resolution::Resolved { targets: anywhere, kind: EdgeKind::Global };
        }
        Resolution::External
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    #[test]
    fn module_paths_from_file_paths() {
        let m = BTreeMap::from([("comm".to_string(), "dpmd_comm".to_string())]);
        assert_eq!(module_of("crates/comm/src/lib.rs", &m), ("dpmd_comm".into(), vec![]));
        assert_eq!(
            module_of("crates/nnet/src/gemm/mod.rs", &m),
            ("nnet".into(), vec!["gemm".into()])
        );
        assert_eq!(
            module_of("crates/nnet/src/gemm/blocked.rs", &m),
            ("nnet".into(), vec!["gemm".into(), "blocked".into()])
        );
        assert_eq!(
            module_of("crates/analyze/tests/fixture_rules.rs", &m),
            ("analyze".into(), vec!["tests".into(), "fixture_rules".into()])
        );
        assert_eq!(module_of("src/lib.rs", &m), ("dpmd_repro".into(), vec![]));
    }

    #[test]
    fn call_sites_classify_plain_path_method() {
        let p = parse_file(
            "crates/x/src/lib.rs",
            "fn f() { helper(); a::b::g(); self.step(); v.push(1); items.collect::<Vec<_>>(); }",
        );
        let (lo, hi) = p.fns[0].body.unwrap();
        let sites = call_sites(&p.tokens, lo, hi);
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["helper", "g", "step", "push", "collect"]);
        assert_eq!(sites[1].qual, vec!["a".to_string(), "b".to_string()]);
        assert!(sites[2].is_method && sites[2].self_recv);
        assert!(sites[3].is_method && !sites[3].self_recv);
        assert!(sites[4].is_method);
    }

    #[test]
    fn resolver_prefers_same_file_then_imports() {
        let a = parse_file(
            "crates/alpha/src/lib.rs",
            "use beta::helpers::shared;\nfn local() {}\nfn run() { local(); shared(); }\n",
        );
        let b = parse_file("crates/beta/src/helpers.rs", "pub fn shared() {}\n");
        let files = vec![a, b];
        let r = Resolver::new(&files, &BTreeMap::new());
        let (lo, hi) = files[0].fns[1].body.unwrap();
        let sites = call_sites(&files[0].tokens, lo, hi);
        match r.resolve(&sites[0], &files[0], 0, Some(1)) {
            Resolution::Resolved { targets, kind } => {
                assert_eq!(kind, EdgeKind::File);
                assert_eq!(r.symbols[targets[0]].qname(), "alpha::local");
            }
            other => panic!("{other:?}"),
        }
        match r.resolve(&sites[1], &files[0], 0, Some(1)) {
            Resolution::Resolved { targets, kind } => {
                assert_eq!(kind, EdgeKind::Import);
                assert_eq!(r.symbols[targets[0]].qname(), "beta::helpers::shared");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn method_calls_fan_out_to_trait_impls() {
        let src = "pub trait K { fn go(&self); }\n\
                   pub struct A; impl K for A { fn go(&self) {} }\n\
                   pub struct B; impl K for B { fn go(&self) {} }\n\
                   pub fn drive(k: &dyn K) { k.go(); }\n";
        let f = parse_file("crates/x/src/lib.rs", src);
        let files = vec![f];
        let r = Resolver::new(&files, &BTreeMap::new());
        let drive = files[0].fns.iter().position(|f| f.name == "drive").unwrap();
        let (lo, hi) = files[0].fns[drive].body.unwrap();
        let sites = call_sites(&files[0].tokens, lo, hi);
        match r.resolve(&sites[0], &files[0], 0, Some(drive)) {
            Resolution::Resolved { targets, kind } => {
                assert_eq!(kind, EdgeKind::Method);
                let mut q: Vec<String> =
                    targets.iter().map(|&t| r.symbols[t].qname()).collect();
                q.sort();
                assert_eq!(q, vec!["x::A::go", "x::B::go", "x::K::go"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn std_methods_on_unknown_receivers_are_external() {
        let f = parse_file("crates/x/src/lib.rs", "fn f(v: &mut Vec<u32>) { v.push(1); }");
        let files = vec![f];
        let r = Resolver::new(&files, &BTreeMap::new());
        let (lo, hi) = files[0].fns[0].body.unwrap();
        let sites = call_sites(&files[0].tokens, lo, hi);
        assert!(matches!(r.resolve(&sites[0], &files[0], 0, Some(0)), Resolution::External));
    }
}

