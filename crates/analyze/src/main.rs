//! `dpmd-analyze` binary — thin wrapper over [`dpmd_analyze::run_cli`],
//! shared with the `dpmd analyze` subcommand.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dpmd_analyze::run_cli(&args));
}
