//! A lightweight item/block parser over the token stream.
//!
//! The rules don't need full Rust syntax — they need to know, for every
//! file: where each `fn` body starts and ends, which code is test-only
//! (`#[cfg(test)]` modules, `#[test]` functions, `tests/`/`benches/`/
//! `examples/` targets), where `unsafe` regions begin, and how braces nest.
//! This module extracts exactly that, tolerantly: unparseable stretches are
//! skipped, never fatal.

use crate::lexer::{lex, Comment, Lexed, Token};

/// Why an `unsafe` keyword appeared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe fn …`.
    Fn,
    /// `unsafe impl …` / `unsafe trait …` (safety obligations live on the
    /// trait contract; still worth a SAFETY note).
    ImplOrTrait,
}

/// One `unsafe` occurrence.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    pub kind: UnsafeKind,
    pub line: u32,
    /// Token index of the `unsafe` keyword.
    pub tok: usize,
}

/// One function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token range of the body block, *excluding* the outer braces
    /// (`None` for trait-method declarations without bodies).
    pub body: Option<(usize, usize)>,
    /// Inside `#[cfg(test)]`, under `#[test]`, or in a test-like target.
    pub is_test: bool,
    /// Inline `mod` path enclosing the item (outer → inner). The file's own
    /// module path comes from its filesystem location; this is only what
    /// `mod name { … }` blocks add on top.
    pub mod_path: Vec<String>,
    /// Self type of the enclosing `impl` block (`Avx2` for
    /// `impl Kernel for Avx2`), or the trait name for default methods
    /// declared directly inside `trait T { … }`.
    pub impl_type: Option<String>,
    /// Trait being implemented, when the enclosing impl is a trait impl.
    pub trait_name: Option<String>,
    /// Carries a `pub` / `pub(…)` visibility qualifier.
    pub is_pub: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe_fn: bool,
    /// Return type mentions a raw pointer (`*const T` / `*mut T`).
    pub returns_raw_ptr: bool,
}

/// One `use` import: `alias` names `path` in this file's scope.
/// `use a::b::c;` → alias `c`, path `[a, b, c]`; `use a::b as x;` → alias
/// `x`, path `[a, b]`; groups `use a::{b, c::d}` flatten to one item each.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseItem {
    pub path: Vec<String>,
    pub alias: String,
}

/// A parsed source file.
pub struct ParsedFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub fns: Vec<FnItem>,
    pub unsafes: Vec<UnsafeSite>,
    /// `use` imports (aliased names in scope), file-wide.
    pub uses: Vec<UseItem>,
    /// Glob import prefixes (`use a::b::*;` → `[a, b]`).
    pub globs: Vec<Vec<String>>,
    /// Whole file is test-like (under `tests/`, `benches/`, `examples/`,
    /// or a `fixtures/` data directory).
    pub file_is_testlike: bool,
}

impl ParsedFile {
    /// Find the token index of the brace matching the opening brace at
    /// `open` (which must be `{`). Returns the index of the closing `}`.
    pub fn match_brace(&self, open: usize) -> usize {
        match_brace(&self.tokens, open)
    }

    /// Is there an inline `// dpmd-allow <rule>: reason` on `line` or the
    /// line above? Requires a non-empty justification after the colon.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        let needle = format!("dpmd-allow {rule}");
        self.comments.iter().any(|c| {
            (c.end_line + 1 == line || (c.start_line <= line && line <= c.end_line))
                && c.text
                    .split(&needle)
                    .nth(1)
                    .is_some_and(|rest| {
                        let rest = rest.trim_start();
                        rest.starts_with(':') && rest[1..].trim().len() > 2
                    })
        })
    }

    /// Is a comment containing `SAFETY:` attached to `line` — on the line
    /// itself, or anywhere in the contiguous run of comment lines directly
    /// above it? (A multi-line `// SAFETY: …` justification often has the
    /// keyword only on its first line; a blank line breaks attachment.)
    pub fn has_safety_comment(&self, line: u32) -> bool {
        let covering = |l: u32| self.comments.iter().find(|c| c.start_line <= l && l <= c.end_line);
        let is_safety =
            |c: &Comment| c.text.contains("SAFETY:") || c.text.contains("Safety:");
        if covering(line).is_some_and(is_safety) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            match covering(l - 1) {
                Some(c) => {
                    if is_safety(c) {
                        return true;
                    }
                    l = c.start_line;
                }
                None => return false,
            }
        }
        false
    }

    /// The trimmed source line `line` (1-based), for snippets.
    pub fn source_line<'a>(&self, src: &'a str, line: u32) -> &'a str {
        src.lines().nth(line as usize - 1).unwrap_or("").trim()
    }
}

/// Match a `{` at token index `open` to its closing `}` index. Counts only
/// braces (parens/brackets cannot contain unbalanced braces in valid Rust).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Match a `(` at token index `open` to its closing `)` index, counting all
/// three bracket kinds so nested closures/indexing don't desynchronize.
pub fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            crate::lexer::Tok::Punct('(') => depth += 1,
            crate::lexer::Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Parse one file's source.
pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let Lexed { tokens, comments } = lex(src);
    let file_is_testlike = {
        let p = format!("/{path}");
        ["/tests/", "/benches/", "/examples/", "/fixtures/"].iter().any(|d| p.contains(d))
    };

    let mut fns = Vec::new();
    let mut unsafes = Vec::new();

    // Test regions: `#[cfg(test)]` (optionally with more attrs) before a
    // `mod name {` — mark the block's token range.
    let mut test_ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(&tokens, i) {
            // Scan forward to the next `{` before a `;` — the mod body.
            let mut j = i;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                test_ranges.push((j, match_brace(&tokens, j)));
            }
        }
        i += 1;
    }
    let in_test_range =
        |i: usize| file_is_testlike || test_ranges.iter().any(|&(a, b)| a <= i && i <= b);

    // Enclosing-context regions: inline `mod name { … }` blocks, `impl`
    // blocks (with self type and optional trait), and `trait Name { … }`
    // bodies (default methods resolve as methods of the trait).
    let mod_regions = mod_regions(&tokens);
    let impl_regions = impl_regions(&tokens);

    let mut uses = Vec::new();
    let mut globs = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("unsafe") {
            let kind = match tokens.get(i + 1) {
                Some(n) if n.is_punct('{') => Some(UnsafeKind::Block),
                Some(n) if n.is_ident("fn") || n.is_ident("extern") => Some(UnsafeKind::Fn),
                Some(n) if n.is_ident("impl") || n.is_ident("trait") => {
                    Some(UnsafeKind::ImplOrTrait)
                }
                _ => None,
            };
            if let Some(kind) = kind {
                unsafes.push(UnsafeSite { kind, line: t.line, tok: i });
            }
        }
        if t.is_ident("use") {
            i = parse_use(&tokens, i, &mut uses, &mut globs);
            continue;
        }
        if t.is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1) {
                if let Some(name) = name_tok.ident() {
                    // Walk to the body `{` or a `;` (declaration only).
                    // Parens/brackets are skipped wholesale so default
                    // closure arguments can't confuse the scan.
                    let mut j = i + 2;
                    let mut body = None;
                    let mut returns_raw_ptr = false;
                    while j < tokens.len() {
                        if tokens[j].is_punct('(') {
                            j = match_paren(&tokens, j) + 1;
                            continue;
                        }
                        if tokens[j].is_punct('*')
                            && tokens
                                .get(j + 1)
                                .is_some_and(|t| t.is_ident("const") || t.is_ident("mut"))
                        {
                            // Past the argument parens, a `*const`/`*mut`
                            // can only live in the return type.
                            returns_raw_ptr = true;
                        }
                        if tokens[j].is_punct('{') {
                            let close = match_brace(&tokens, j);
                            body = Some((j + 1, close));
                            break;
                        }
                        if tokens[j].is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    let is_test = in_test_range(i) || has_test_attr(&tokens, i);
                    let (is_pub, is_unsafe_fn) = fn_qualifiers(&tokens, i);
                    let mod_path = mod_regions
                        .iter()
                        .filter(|r| r.open < i && i <= r.close)
                        .map(|r| r.name.clone())
                        .collect();
                    let (impl_type, trait_name) = impl_regions
                        .iter()
                        .rfind(|r| r.open < i && i <= r.close)
                        .map(|r| (Some(r.self_type.clone()), r.trait_name.clone()))
                        .unwrap_or((None, None));
                    fns.push(FnItem {
                        name: name.to_string(),
                        line: t.line,
                        sig_start: i,
                        body,
                        is_test,
                        mod_path,
                        impl_type,
                        trait_name,
                        is_pub,
                        is_unsafe_fn,
                        returns_raw_ptr,
                    });
                }
            }
        }
        i += 1;
    }

    ParsedFile {
        path: path.to_string(),
        tokens,
        comments,
        fns,
        unsafes,
        uses,
        globs,
        file_is_testlike,
    }
}

/// An inline `mod name { … }` region (token indices of the braces).
struct ModRegion {
    name: String,
    open: usize,
    close: usize,
}

fn mod_regions(tokens: &[Token]) -> Vec<ModRegion> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("mod") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::ident) else { continue };
        if tokens.get(i + 2).is_some_and(|t| t.is_punct('{')) {
            out.push(ModRegion {
                name: name.to_string(),
                open: i + 2,
                close: match_brace(tokens, i + 2),
            });
        }
    }
    out
}

/// An `impl [Trait for] Type { … }` or `trait Name { … }` region.
struct ImplRegion {
    self_type: String,
    trait_name: Option<String>,
    open: usize,
    close: usize,
}

/// Index of the `>` matching the `<` at `open` (for turbofish scans).
/// Bails at `{`/`;`/`(` so a stray comparison can't run away.
pub fn match_angle(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        } else if t.is_punct('{') || t.is_punct(';') || t.is_punct('(') {
            return open;
        }
    }
    open
}

/// Skip a generic argument list starting at the `<` at `i`; returns the
/// index just past the matching `>`. `>>` arrives as two adjacent puncts,
/// so plain depth counting works.
fn skip_angles(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].is_punct('<') {
            depth += 1;
        } else if tokens[j].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if tokens[j].is_punct('{') || tokens[j].is_punct(';') {
            return j; // malformed; bail at the item boundary
        }
        j += 1;
    }
    j
}

fn impl_regions(tokens: &[Token]) -> Vec<ImplRegion> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let is_impl = tokens[i].is_ident("impl");
        let is_trait = tokens[i].is_ident("trait")
            && !tokens.get(i.wrapping_sub(1)).is_some_and(|t| t.is_ident("impl"));
        if !is_impl && !is_trait {
            continue;
        }
        // Walk the header: remember the last path ident seen; `for` marks
        // everything before it as the trait; generics are skipped whole.
        let mut last: Option<String> = None;
        let mut trait_name: Option<String> = None;
        let mut j = i + 1;
        let mut open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                j = skip_angles(tokens, j);
                continue;
            }
            if t.is_ident("for") {
                trait_name = last.take();
                j += 1;
                continue;
            }
            if t.is_ident("where") {
                // Bounds may contain `{`-free paths only; scan to the body.
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                continue;
            }
            if t.is_punct('{') {
                open = Some(j);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            if let Some(id) = t.ident() {
                last = Some(id.to_string());
            }
            j += 1;
        }
        let (Some(open), Some(self_type)) = (open, last) else { continue };
        if is_trait {
            // Default methods in `trait Name { … }` belong to the trait.
            out.push(ImplRegion {
                self_type,
                trait_name: None,
                open,
                close: match_brace(tokens, open),
            });
        } else {
            out.push(ImplRegion { self_type, trait_name, open, close: match_brace(tokens, open) });
        }
    }
    out
}

/// `pub` / `unsafe` qualifiers in the few tokens before a `fn` keyword.
fn fn_qualifiers(tokens: &[Token], fn_idx: usize) -> (bool, bool) {
    let mut is_pub = false;
    let mut is_unsafe = false;
    let mut i = fn_idx;
    let lo = fn_idx.saturating_sub(10);
    while i > lo {
        i -= 1;
        let t = &tokens[i];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(']') {
            break;
        }
        if t.is_ident("pub") {
            is_pub = true;
        }
        if t.is_ident("unsafe") {
            is_unsafe = true;
        }
    }
    (is_pub, is_unsafe)
}

/// Parse a `use …;` item starting at the `use` keyword at `i`. Appends the
/// flattened imports to `uses`/`globs` and returns the index just past the
/// terminating `;`.
fn parse_use(
    tokens: &[Token],
    i: usize,
    uses: &mut Vec<UseItem>,
    globs: &mut Vec<Vec<String>>,
) -> usize {
    // Find the end of the item first so malformed input can't run away.
    let mut end = i + 1;
    let mut depth = 0i64;
    while end < tokens.len() {
        match tokens[end].kind {
            crate::lexer::Tok::Punct('{') => depth += 1,
            crate::lexer::Tok::Punct('}') => depth -= 1,
            crate::lexer::Tok::Punct(';') if depth <= 0 => break,
            _ => {}
        }
        end += 1;
    }
    let mut prefix = Vec::new();
    parse_use_tree(tokens, i + 1, end, &mut prefix, uses, globs);
    end + 1
}

/// Recursive `use`-tree walk over tokens `[lo, hi)` with the accumulated
/// `prefix`. Handles `a::b`, `a as x`, `a::{b, c::d}`, and `a::*`.
fn parse_use_tree(
    tokens: &[Token],
    lo: usize,
    hi: usize,
    prefix: &mut Vec<String>,
    uses: &mut Vec<UseItem>,
    globs: &mut Vec<Vec<String>>,
) {
    let base_len = prefix.len();
    let mut j = lo;
    fn flush(uses: &mut Vec<UseItem>, base_len: usize, prefix: &[String], alias: Option<String>) {
        if prefix.len() > base_len || alias.is_some() {
            if let Some(last) = prefix.last() {
                let alias = alias.unwrap_or_else(|| last.clone());
                uses.push(UseItem { path: prefix.to_vec(), alias });
            }
        }
    }
    while j < hi {
        let t = &tokens[j];
        if let Some(id) = t.ident() {
            if id == "as" {
                if let Some(alias) = tokens.get(j + 1).and_then(Token::ident) {
                    flush(uses, base_len, prefix, Some(alias.to_string()));
                    prefix.truncate(base_len);
                    j += 2;
                    // Skip to the next `,` at this level.
                    while j < hi && !tokens[j].is_punct(',') {
                        j += 1;
                    }
                    continue;
                }
            }
            prefix.push(id.to_string());
            j += 1;
            continue;
        }
        if t.is_punct(':') {
            j += 1; // both halves of `::`
            continue;
        }
        if t.is_punct('*') {
            if prefix.len() > base_len {
                globs.push(prefix[..prefix.len()].to_vec());
            }
            prefix.truncate(base_len);
            j += 1;
            continue;
        }
        if t.is_punct('{') {
            let close = match_brace(tokens, j);
            parse_use_tree(tokens, j + 1, close.min(hi), prefix, uses, globs);
            prefix.truncate(base_len);
            j = close + 1;
            // A group ends its branch: skip to the next `,`.
            while j < hi && !tokens[j].is_punct(',') {
                j += 1;
            }
            continue;
        }
        if t.is_punct(',') {
            flush(uses, base_len, prefix, None);
            prefix.truncate(base_len);
            j += 1;
            continue;
        }
        j += 1;
    }
    flush(uses, base_len, prefix, None);
    prefix.truncate(base_len);
}

/// Does an `#[cfg(test)]` attribute start at token `i`?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
        && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
}

/// Is the `fn` at token index `fn_idx` annotated `#[test]` (or
/// `#[should_panic]`-style companions) in the few tokens before it?
fn has_test_attr(tokens: &[Token], fn_idx: usize) -> bool {
    // Scan back over attributes and modifiers.
    let lo = fn_idx.saturating_sub(24);
    let mut i = fn_idx;
    while i > lo {
        i -= 1;
        let t = &tokens[i];
        if t.is_ident("test") || t.is_ident("should_panic") || t.is_ident("bench") {
            // Part of an attribute? `#[test]` → preceded by `[` preceded by `#`.
            if i >= 2 && tokens[i - 1].is_punct('[') && tokens[i - 2].is_punct('#') {
                return true;
            }
        }
        // Stop scanning at statement/item boundaries.
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_and_bodies() {
        let p = parse_file(
            "crates/x/src/lib.rs",
            "pub fn a(x: usize) -> usize { x + 1 }\nfn b();\nunsafe fn c() {}\n",
        );
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "a");
        assert!(p.fns[0].body.is_some());
        assert!(p.fns[1].body.is_none());
        assert_eq!(p.unsafes.len(), 1);
        assert_eq!(p.unsafes[0].kind, UnsafeKind::Fn);
    }

    #[test]
    fn cfg_test_modules_and_test_attrs_mark_fns() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {}\n}\n";
        let p = parse_file("crates/x/src/lib.rs", src);
        let real = p.fns.iter().find(|f| f.name == "real").unwrap();
        let t = p.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(!real.is_test);
        assert!(t.is_test);
    }

    #[test]
    fn tests_dir_files_are_testlike() {
        let p = parse_file("crates/x/tests/foo.rs", "fn helper() {}");
        assert!(p.file_is_testlike);
        assert!(p.fns[0].is_test);
    }

    #[test]
    fn unsafe_blocks_and_safety_comments() {
        let src = "fn f() {\n    // SAFETY: the latch outlives the borrow.\n    let j = unsafe { transmute(job) };\n}\n";
        let p = parse_file("crates/x/src/lib.rs", src);
        assert_eq!(p.unsafes.len(), 1);
        assert_eq!(p.unsafes[0].kind, UnsafeKind::Block);
        assert!(p.has_safety_comment(p.unsafes[0].line));
    }

    #[test]
    fn dpmd_allow_requires_a_reason() {
        let src = "// dpmd-allow D5: scratch reused across rounds\nlet v = Vec::new();\n// dpmd-allow D5:\nlet w = Vec::new();\n";
        let p = parse_file("crates/x/src/lib.rs", src);
        assert!(p.allowed("D5", 2));
        assert!(!p.allowed("D5", 4), "empty justification must not count");
        assert!(!p.allowed("D4", 2), "rule must match");
    }
}
