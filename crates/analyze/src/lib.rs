//! dpmd-analyze — workspace-wide determinism & safety linter.
//!
//! Self-contained static analysis for this workspace: an own Rust lexer
//! ([`lexer`], raw strings / nested block comments / lifetime-vs-char) and a
//! lightweight item parser ([`parser`]) feed six rules ([`rules`]) that
//! encode the project's invariants:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1 | no hash-order iteration into order-sensitive sinks |
//! | D2 | float reductions are chunk-ordered, never scheduling-ordered |
//! | D3 | every `unsafe` carries a `// SAFETY:` justification |
//! | D4 | wall clocks only behind `dpmd_obs::clock::wall_now` + allowlist |
//! | D5 | registered hot-path functions do not allocate |
//! | D6 | the cross-crate lock graph is acyclic |
//!
//! Findings are typed ([`diag::Finding`]) with `file:line` spans, printed
//! human-readable and as deterministic JSON. A committed baseline
//! ([`baseline`]) ratchets legacy findings down; `--deny` makes any fresh
//! finding fail CI. Inline escape hatch: `// dpmd-allow D<n>: reason`
//! (reason required; D3's escape hatch is the SAFETY comment itself).

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use config::Config;
use diag::{sort_findings, Finding, RuleId};
use dpmd_obs::{MetricsRegistry, Unit};
use rules::LockEdge;

/// Result of an analysis run, before baseline application.
pub struct Report {
    /// All findings, canonically sorted.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
}

/// Analyze a single source text under a given repo-relative path. Includes
/// lock-cycle analysis over just this file (tests and tools use this; the
/// workspace run merges lock edges globally instead).
pub fn analyze_source(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let parsed = parser::parse_file(path, src);
    let (mut findings, edges) = rules::analyze_file(&parsed, src, cfg);
    findings.extend(rules::lock_cycles(&edges));
    sort_findings(&mut findings);
    findings
}

/// Directories never scanned: build output, VCS internals, and lint
/// fixtures (which contain deliberately bad code).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

/// Collect every workspace `.rs` file under `root`, repo-relative with `/`
/// separators, sorted — the scan order (and therefore the report) is
/// independent of filesystem enumeration order.
pub fn workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("strip_prefix: {e}"))?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyze every `.rs` file under `root`. Lock edges are merged across
/// files before cycle detection, so an A→B in one crate and B→A in another
/// still report.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut files_scanned = 0u64;
    for (rel, path) in &files {
        let Ok(src) = fs::read_to_string(path) else {
            continue; // non-UTF-8 or unreadable: not a lintable Rust source
        };
        files_scanned += 1;
        let parsed = parser::parse_file(rel, &src);
        let (file_findings, file_edges) = rules::analyze_file(&parsed, &src, cfg);
        findings.extend(file_findings);
        edges.extend(file_edges);
    }
    findings.extend(rules::lock_cycles(&edges));
    sort_findings(&mut findings);
    Ok(Report { findings, files_scanned })
}

/// Record rule hit-counts and scan stats into a metrics registry. With the
/// `capture` feature off (the default) this is free.
pub fn record_metrics(
    reg: &MetricsRegistry,
    fresh: &[Finding],
    baselined: &[Finding],
    files_scanned: u64,
) {
    reg.counter("analyze.files_scanned", Unit::Count).add(files_scanned);
    reg.counter("analyze.findings.total", Unit::Count)
        .add((fresh.len() + baselined.len()) as u64);
    reg.counter("analyze.findings.suppressed", Unit::Count).add(baselined.len() as u64);
    for rule in RuleId::ALL {
        let n = fresh.iter().chain(baselined).filter(|f| f.rule == rule).count() as u64;
        if n > 0 {
            let name = format!("analyze.rule.{}", rule.as_str().to_lowercase());
            reg.counter(&name, Unit::Count).add(n);
        }
    }
}

/// Parsed CLI options.
struct Opts {
    root: PathBuf,
    deny: bool,
    bless: bool,
    baseline: Option<PathBuf>,
    config: Option<PathBuf>,
    json_out: Option<PathBuf>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        deny: false,
        bless: std::env::var("DPMD_BLESS").is_ok_and(|v| v == "1"),
        baseline: None,
        config: None,
        json_out: None,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<PathBuf, String> {
        *i += 1;
        args.get(*i).map(PathBuf::from).ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--deny" => opts.deny = true,
            "--bless" => opts.bless = true,
            "--baseline" => opts.baseline = Some(value(&mut i, "--baseline")?),
            "--config" => opts.config = Some(value(&mut i, "--config")?),
            "--root" => opts.root = value(&mut i, "--root")?,
            "--json" => opts.json_out = Some(value(&mut i, "--json")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    Ok(opts)
}

const USAGE: &str = "usage: dpmd-analyze [--deny] [--bless] [--root DIR] \
[--baseline PATH] [--config PATH] [--json PATH]\n\
  --deny      exit 1 on any finding not covered by the baseline\n\
  --bless     rewrite the baseline to cover current findings (or DPMD_BLESS=1)\n\
  --root      workspace root to scan (default .)\n\
  --baseline  baseline file (default <root>/analyze-baseline.json if present)\n\
  --config    rule config (default <root>/analyze-config.json if present)\n\
  --json      also write findings as deterministic JSON to PATH";

/// Run the analyzer CLI. Returns the process exit code. Shared between the
/// `dpmd-analyze` binary and the `dpmd analyze` subcommand.
pub fn run_cli(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };

    let config_path =
        opts.config.clone().unwrap_or_else(|| opts.root.join("analyze-config.json"));
    let cfg = if config_path.is_file() {
        match fs::read_to_string(&config_path).map_err(|e| e.to_string()).and_then(|t| {
            Config::from_json(&t)
        }) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("dpmd-analyze: {}: {e}", config_path.display());
                return 2;
            }
        }
    } else if opts.config.is_some() {
        eprintln!("dpmd-analyze: config {} not found", config_path.display());
        return 2;
    } else {
        Config::default()
    };

    let report = match analyze_workspace(&opts.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dpmd-analyze: {e}");
            return 2;
        }
    };

    let baseline_path =
        opts.baseline.clone().unwrap_or_else(|| opts.root.join("analyze-baseline.json"));
    if opts.bless {
        let blessed = Baseline::covering(&report.findings);
        if let Err(e) = fs::write(&baseline_path, blessed.to_json() + "\n") {
            eprintln!("dpmd-analyze: write {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "dpmd-analyze: blessed {} finding(s) into {}",
            report.findings.len(),
            baseline_path.display()
        );
        return 0;
    }
    let baseline = if baseline_path.is_file() {
        match fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::from_json(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dpmd-analyze: {}: {e}", baseline_path.display());
                return 2;
            }
        }
    } else if opts.baseline.is_some() {
        eprintln!("dpmd-analyze: baseline {} not found", baseline_path.display());
        return 2;
    } else {
        Baseline::default()
    };

    let files_scanned = report.files_scanned;
    let (fresh, baselined) = baseline.split(report.findings);

    let reg = MetricsRegistry::new();
    record_metrics(&reg, &fresh, &baselined, files_scanned);

    if let Some(json_path) = &opts.json_out {
        if let Err(e) = fs::write(json_path, diag::to_json(&fresh) + "\n") {
            eprintln!("dpmd-analyze: write {}: {e}", json_path.display());
            return 2;
        }
    }

    for f in &fresh {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule.as_str(), f.message);
        if !f.snippet.is_empty() {
            println!("    {}", f.snippet);
        }
    }
    println!(
        "dpmd-analyze: {} file(s) scanned, {} finding(s), {} baselined",
        files_scanned,
        fresh.len(),
        baselined.len()
    );
    for rule in RuleId::ALL {
        let n = fresh.iter().filter(|f| f.rule == rule).count();
        let b = baselined.iter().filter(|f| f.rule == rule).count();
        if n + b > 0 {
            println!("  {}: {n} fresh, {b} baselined — {}", rule.as_str(), rule.summary());
        }
    }

    if opts.deny && !fresh.is_empty() {
        eprintln!(
            "dpmd-analyze: --deny: {} unbaselined finding(s); fix them, add an inline \
             `// dpmd-allow <RULE>: reason`, or re-bless the baseline",
            fresh.len()
        );
        return 1;
    }
    0
}
