//! dpmd-analyze — workspace-wide determinism & safety linter.
//!
//! Self-contained static analysis for this workspace: an own Rust lexer
//! ([`lexer`], raw strings / nested block comments / lifetime-vs-char) and a
//! lightweight item parser ([`parser`]) feed ten rules ([`rules`]) that
//! encode the project's invariants. D1–D6 are per-file (D6 merges lock
//! edges globally); D7–D10 are interprocedural queries over a workspace
//! call graph built by a symbol-resolution pass ([`resolve`], [`graph`]):
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1 | no hash-order iteration into order-sensitive sinks |
//! | D2 | float reductions are chunk-ordered, never scheduling-ordered |
//! | D3 | every `unsafe` carries a `// SAFETY:` justification |
//! | D4 | wall clocks only behind `dpmd_obs::clock::wall_now` + allowlist |
//! | D5 | registered hot-path functions do not allocate |
//! | D6 | the cross-crate lock graph is acyclic |
//! | D7 | nothing *reachable* from a hot path allocates (transitive D5) |
//! | D8 | every direct `wall_now` reader is an enumerated clock reader |
//! | D9 | unsafe code/raw-pointer APIs stay in the audited islands |
//! | D10 | lock sets accumulated along call chains stay acyclic |
//!
//! The call graph itself is exportable (`--graph out.json`) along with
//! per-run resolution statistics (`--emit-stats stats.json`); unresolved
//! call sites are listed with reasons, never silently dropped, and
//! `--min-resolution PCT` turns a resolution-rate regression into a CI
//! failure.
//!
//! Findings are typed ([`diag::Finding`]) with `file:line` spans, printed
//! human-readable and as deterministic JSON. A committed baseline
//! ([`baseline`]) ratchets legacy findings down; `--deny` makes any fresh
//! finding fail CI. Inline escape hatch: `// dpmd-allow D<n>: reason`
//! (reason required; D3's escape hatch is the SAFETY comment itself; D10
//! has no inline form — bless edges in `d10_blessed_edges` instead).

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use config::Config;
use diag::{sort_findings, Finding, RuleId};
use dpmd_obs::{MetricsRegistry, Unit};
use graph::CallGraph;
use rules::LockEdge;

/// Result of an analysis run, before baseline application.
pub struct Report {
    /// All findings, canonically sorted.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// The workspace call graph the D7–D10 rules ran over.
    pub graph: CallGraph,
}

/// Analyze a set of sources together: per-file rules, globally merged lock
/// edges, then the call graph and its D7–D10 queries. `lib_names` maps
/// crate directory names to library names (empty map: directory-name
/// fallback). Returns the findings and the graph they were derived from.
pub fn analyze_sources(
    sources: &[(String, String)],
    lib_names: &BTreeMap<String, String>,
    cfg: &Config,
) -> (Vec<Finding>, CallGraph) {
    let files: Vec<parser::ParsedFile> =
        sources.iter().map(|(path, src)| parser::parse_file(path, src)).collect();
    let srcs: Vec<String> = sources.iter().map(|(_, src)| src.clone()).collect();

    let mut findings = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    for (parsed, src) in files.iter().zip(&srcs) {
        let (file_findings, file_edges) = rules::analyze_file(parsed, src, cfg);
        findings.extend(file_findings);
        edges.extend(file_edges);
    }
    findings.extend(rules::lock_cycles(&edges));

    let g = CallGraph::build(&files, lib_names);
    findings.extend(rules::graph_rules(&g, &files, &srcs, cfg, &edges));

    sort_findings(&mut findings);
    (findings, g)
}

/// Analyze a single source text under a given repo-relative path. The full
/// pipeline runs on the one file, including the graph rules — a fixture
/// whose hot path calls an allocating helper in the same file still trips
/// D7. Tests and tools use this; the workspace run merges across files.
pub fn analyze_source(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let sources = vec![(path.to_string(), src.to_string())];
    analyze_sources(&sources, &BTreeMap::new(), cfg).0
}

/// Directories never scanned: build output, VCS internals, and lint
/// fixtures (which contain deliberately bad code).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

/// Collect every workspace `.rs` file under `root`, repo-relative with `/`
/// separators, sorted — the scan order (and therefore the report) is
/// independent of filesystem enumeration order.
pub fn workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("strip_prefix: {e}"))?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Map crate directory names to their library names by reading each
/// `crates/*/Cargo.toml` (and `crates/shims/*/Cargo.toml`) under `root`.
/// `-` is normalized to `_` to match what `use` paths spell. Missing or
/// unreadable manifests just fall back to the directory-name rule in
/// [`resolve::module_of`].
pub fn workspace_lib_names(root: &Path) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for crates_dir in [root.join("crates"), root.join("crates").join("shims")] {
        let Ok(entries) = fs::read_dir(&crates_dir) else { continue };
        for entry in entries.flatten() {
            let dir = entry.path();
            if !dir.is_dir() {
                continue;
            }
            let Ok(manifest) = fs::read_to_string(dir.join("Cargo.toml")) else { continue };
            let Some(pkg) = manifest_package_name(&manifest) else { continue };
            let dir_name = entry.file_name().to_string_lossy().into_owned();
            map.insert(dir_name, pkg.replace('-', "_"));
        }
    }
    map
}

/// First `name = "…"` in a manifest (the `[package]` name — workspace
/// manifests here never define `name` earlier than the package table).
fn manifest_package_name(manifest: &str) -> Option<String> {
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                if !v.is_empty() {
                    return Some(v.to_string());
                }
            }
        }
    }
    None
}

/// Analyze every `.rs` file under `root`: per-file rules, globally merged
/// lock edges, and the interprocedural D7–D10 queries over the workspace
/// call graph.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = workspace_files(root)?;
    let lib_names = workspace_lib_names(root);
    let mut sources: Vec<(String, String)> = Vec::new();
    for (rel, path) in &files {
        let Ok(src) = fs::read_to_string(path) else {
            continue; // non-UTF-8 or unreadable: not a lintable Rust source
        };
        sources.push((rel.clone(), src));
    }
    let files_scanned = sources.len() as u64;
    let (findings, graph) = analyze_sources(&sources, &lib_names, cfg);
    Ok(Report { findings, files_scanned, graph })
}

/// Record rule hit-counts and scan stats into a metrics registry. With the
/// `capture` feature off (the default) this is free.
pub fn record_metrics(
    reg: &MetricsRegistry,
    fresh: &[Finding],
    baselined: &[Finding],
    files_scanned: u64,
) {
    reg.counter("analyze.files_scanned", Unit::Count).add(files_scanned);
    reg.counter("analyze.findings.total", Unit::Count)
        .add((fresh.len() + baselined.len()) as u64);
    reg.counter("analyze.findings.suppressed", Unit::Count).add(baselined.len() as u64);
    for rule in RuleId::ALL {
        let n = fresh.iter().chain(baselined).filter(|f| f.rule == rule).count() as u64;
        if n > 0 {
            let name = format!("analyze.rule.{}", rule.as_str().to_lowercase());
            reg.counter(&name, Unit::Count).add(n);
        }
    }
}

/// Record call-graph shape and resolution stats into a metrics registry.
pub fn record_graph_metrics(reg: &MetricsRegistry, g: &CallGraph) {
    reg.counter("analyze.graph.nodes", Unit::Count).add(g.nodes.len() as u64);
    reg.counter("analyze.graph.edges", Unit::Count).add(g.edges.len() as u64);
    reg.counter("analyze.graph.call_sites", Unit::Count).add(g.stats.sites);
    reg.counter("analyze.graph.resolved", Unit::Count).add(g.stats.resolved);
    reg.counter("analyze.graph.external", Unit::Count).add(g.stats.external);
    reg.counter("analyze.graph.unresolved", Unit::Count).add(g.unresolved.len() as u64);
}

/// Parsed CLI options.
struct Opts {
    root: PathBuf,
    deny: bool,
    bless: bool,
    baseline: Option<PathBuf>,
    config: Option<PathBuf>,
    json_out: Option<PathBuf>,
    graph_out: Option<PathBuf>,
    stats_out: Option<PathBuf>,
    min_resolution: Option<f64>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        deny: false,
        bless: std::env::var("DPMD_BLESS").is_ok_and(|v| v == "1"),
        baseline: None,
        config: None,
        json_out: None,
        graph_out: None,
        stats_out: None,
        min_resolution: None,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<PathBuf, String> {
        *i += 1;
        args.get(*i).map(PathBuf::from).ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--deny" => opts.deny = true,
            "--bless" => opts.bless = true,
            "--baseline" => opts.baseline = Some(value(&mut i, "--baseline")?),
            "--config" => opts.config = Some(value(&mut i, "--config")?),
            "--root" => opts.root = value(&mut i, "--root")?,
            "--json" => opts.json_out = Some(value(&mut i, "--json")?),
            "--graph" => opts.graph_out = Some(value(&mut i, "--graph")?),
            "--emit-stats" => opts.stats_out = Some(value(&mut i, "--emit-stats")?),
            "--min-resolution" => {
                let raw = value(&mut i, "--min-resolution")?;
                let raw = raw.to_string_lossy();
                let pct: f64 = raw
                    .parse()
                    .map_err(|_| format!("--min-resolution: `{raw}` is not a number"))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(format!("--min-resolution: `{raw}` must be in 0..=100"));
                }
                opts.min_resolution = Some(pct);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    Ok(opts)
}

const USAGE: &str = "usage: dpmd-analyze [--deny] [--bless] [--root DIR] \
[--baseline PATH] [--config PATH] [--json PATH] [--graph PATH] \
[--emit-stats PATH] [--min-resolution PCT]\n\
  --deny            exit 1 on any finding not covered by the baseline\n\
  --bless           rewrite the baseline to cover current findings (or DPMD_BLESS=1)\n\
  --root            workspace root to scan (default .)\n\
  --baseline        baseline file (default <root>/analyze-baseline.json if present)\n\
  --config          rule config (default <root>/analyze-config.json if present)\n\
  --json            also write findings as deterministic JSON to PATH\n\
  --graph           export the workspace call graph as JSON to PATH\n\
  --emit-stats      write call-edge resolution statistics as JSON to PATH\n\
  --min-resolution  exit 1 if call-edge resolution falls below PCT (0..=100)";

/// Run the analyzer CLI. Returns the process exit code. Shared between the
/// `dpmd-analyze` binary and the `dpmd analyze` subcommand.
pub fn run_cli(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };

    let config_path =
        opts.config.clone().unwrap_or_else(|| opts.root.join("analyze-config.json"));
    let cfg = if config_path.is_file() {
        match fs::read_to_string(&config_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Config::from_json(&t).map_err(|e| e.to_string()))
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("dpmd-analyze: {}: {e}", config_path.display());
                return 2;
            }
        }
    } else if opts.config.is_some() {
        eprintln!("dpmd-analyze: config {} not found", config_path.display());
        return 2;
    } else {
        Config::default()
    };

    let report = match analyze_workspace(&opts.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dpmd-analyze: {e}");
            return 2;
        }
    };

    if let Some(graph_path) = &opts.graph_out {
        if let Err(e) = fs::write(graph_path, report.graph.to_json() + "\n") {
            eprintln!("dpmd-analyze: write {}: {e}", graph_path.display());
            return 2;
        }
    }
    if let Some(stats_path) = &opts.stats_out {
        let stats = report.graph.stats_json(report.files_scanned);
        if let Err(e) = fs::write(stats_path, stats + "\n") {
            eprintln!("dpmd-analyze: write {}: {e}", stats_path.display());
            return 2;
        }
    }

    let baseline_path =
        opts.baseline.clone().unwrap_or_else(|| opts.root.join("analyze-baseline.json"));
    if opts.bless {
        let blessed = Baseline::covering(&report.findings);
        if let Err(e) = fs::write(&baseline_path, blessed.to_json() + "\n") {
            eprintln!("dpmd-analyze: write {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "dpmd-analyze: blessed {} finding(s) into {}",
            report.findings.len(),
            baseline_path.display()
        );
        return 0;
    }
    let baseline = if baseline_path.is_file() {
        match fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::from_json(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dpmd-analyze: {}: {e}", baseline_path.display());
                return 2;
            }
        }
    } else if opts.baseline.is_some() {
        eprintln!("dpmd-analyze: baseline {} not found", baseline_path.display());
        return 2;
    } else {
        Baseline::default()
    };

    let files_scanned = report.files_scanned;
    let (fresh, baselined) = baseline.split(report.findings);

    let reg = MetricsRegistry::new();
    record_metrics(&reg, &fresh, &baselined, files_scanned);
    record_graph_metrics(&reg, &report.graph);

    if let Some(json_path) = &opts.json_out {
        if let Err(e) = fs::write(json_path, diag::to_json(&fresh) + "\n") {
            eprintln!("dpmd-analyze: write {}: {e}", json_path.display());
            return 2;
        }
    }

    for f in &fresh {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule.as_str(), f.message);
        if !f.snippet.is_empty() {
            println!("    {}", f.snippet);
        }
    }
    let resolution = report.graph.stats.resolution_pct(report.graph.unresolved.len());
    println!(
        "dpmd-analyze: {} file(s) scanned, {} finding(s), {} baselined",
        files_scanned,
        fresh.len(),
        baselined.len()
    );
    println!(
        "dpmd-analyze: call graph: {} node(s), {} edge(s), {} unresolved site(s), \
         {resolution:.2}% of workspace call edges resolved",
        report.graph.nodes.len(),
        report.graph.edges.len(),
        report.graph.unresolved.len(),
    );
    for rule in RuleId::ALL {
        let n = fresh.iter().filter(|f| f.rule == rule).count();
        let b = baselined.iter().filter(|f| f.rule == rule).count();
        if n + b > 0 {
            println!("  {}: {n} fresh, {b} baselined — {}", rule.as_str(), rule.summary());
        }
    }

    let mut code = 0;
    if let Some(floor) = opts.min_resolution {
        if resolution < floor {
            for u in &report.graph.unresolved {
                eprintln!("{}:{}: unresolved call `{}` ({})", u.path, u.line, u.callee, u.reason);
            }
            eprintln!(
                "dpmd-analyze: --min-resolution: {resolution:.2}% resolved is below the \
                 {floor:.2}% floor; fix the unresolved sites above or lower the floor"
            );
            code = 1;
        }
    }
    if opts.deny && !fresh.is_empty() {
        eprintln!(
            "dpmd-analyze: --deny: {} unbaselined finding(s); fix them, add an inline \
             `// dpmd-allow <RULE>: reason`, or re-bless the baseline",
            fresh.len()
        );
        code = 1;
    }
    code
}
