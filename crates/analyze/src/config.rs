//! Analyzer configuration: wall-clock allowlist, hot-path manifest, and
//! blessed reduction helpers.
//!
//! The committed workspace config lives in `analyze-config.json` at the
//! repository root; tests build `Config` values directly. Registering a new
//! hot-path function is one manifest entry — see DESIGN.md ("Registering a
//! new hot-path function").

use serde::Value;

/// One hot-path registration: a function that must not allocate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotPath {
    /// Path suffix the file must end with (e.g. `crates/serve/src/lib.rs`).
    pub path_suffix: String,
    /// Function name (unqualified).
    pub fn_name: String,
}

/// Rule configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Path prefixes where wall-clock reads are legitimate (D4).
    pub wallclock_allow: Vec<String>,
    /// Functions registered as allocation-free hot paths (D5).
    pub hotpaths: Vec<HotPath>,
    /// Function names allowed to accumulate floats across chunks (D2) —
    /// the blessed chunk-ordered reduction helpers.
    pub blessed_reductions: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            wallclock_allow: vec![
                // The observability crate owns wall time (Unit::WallNs,
                // span traces) and the bench harness measures it.
                "crates/obs/".to_string(),
                "crates/bench/".to_string(),
                "crates/shims/criterion/".to_string(),
            ],
            hotpaths: Vec::new(),
            blessed_reductions: Vec::new(),
        }
    }
}

impl Config {
    /// Parse the committed JSON config. Unknown fields are ignored so the
    /// format can grow; missing fields keep their defaults.
    pub fn from_json(text: &str) -> Result<Config, String> {
        let v = serde_json::parse(text).map_err(|e| format!("config parse: {e}"))?;
        let mut cfg = Config::default();
        if let Some(arr) = v.get("wallclock_allow").and_then(as_array) {
            cfg.wallclock_allow =
                arr.iter().filter_map(as_string).map(str::to_string).collect();
        }
        if let Some(arr) = v.get("blessed_reductions").and_then(as_array) {
            cfg.blessed_reductions =
                arr.iter().filter_map(as_string).map(str::to_string).collect();
        }
        if let Some(arr) = v.get("hotpaths").and_then(as_array) {
            let mut hp = Vec::new();
            for item in arr {
                let file = item.get("file").and_then(as_string);
                let func = item.get("fn").and_then(as_string);
                match (file, func) {
                    (Some(f), Some(n)) => {
                        hp.push(HotPath { path_suffix: f.to_string(), fn_name: n.to_string() })
                    }
                    _ => return Err("hotpaths entries need {\"file\":…,\"fn\":…}".to_string()),
                }
            }
            cfg.hotpaths = hp;
        }
        Ok(cfg)
    }

    /// Is `path` allowlisted for wall-clock reads?
    pub fn wallclock_allowed(&self, path: &str) -> bool {
        self.wallclock_allow.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Hot-path entries registered for `path`.
    pub fn hotpaths_for<'a>(&'a self, path: &str) -> Vec<&'a HotPath> {
        self.hotpaths.iter().filter(|h| path.ends_with(h.path_suffix.as_str())).collect()
    }
}

fn as_array(v: &Value) -> Option<&[Value]> {
    match v {
        Value::Array(items) => Some(items),
        _ => None,
    }
}

fn as_string(v: &Value) -> Option<&str> {
    match v {
        Value::String(s) => Some(s.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_shape() {
        let cfg = Config::from_json(
            r#"{
                "wallclock_allow": ["crates/obs/", "crates/bench/"],
                "hotpaths": [{"file": "crates/serve/src/lib.rs", "fn": "run"}],
                "blessed_reductions": ["merge_chunks"]
            }"#,
        )
        .unwrap();
        assert!(cfg.wallclock_allowed("crates/obs/src/capture.rs"));
        assert!(!cfg.wallclock_allowed("crates/minimd/src/sim.rs"));
        assert_eq!(cfg.hotpaths_for("crates/serve/src/lib.rs").len(), 1);
        assert_eq!(cfg.blessed_reductions, vec!["merge_chunks".to_string()]);
    }

    #[test]
    fn rejects_malformed_hotpaths() {
        assert!(Config::from_json(r#"{"hotpaths": [{"file": "x"}]}"#).is_err());
    }
}
