//! Analyzer configuration: wall-clock allowlist, hot-path manifest,
//! blessed reduction helpers, and the D7–D10 interprocedural allowlists.
//!
//! The committed workspace config lives in `analyze-config.json` at the
//! repository root; tests build `Config` values directly. Registering a new
//! hot-path function is one manifest entry — see DESIGN.md ("Registering a
//! new hot-path function").
//!
//! Parsing is strict: an unknown top-level key is a typed
//! [`ConfigError::UnknownKey`], not a silent ignore — a typo'd allowlist
//! that silently does nothing is how audits rot.

use std::fmt;

use serde::Value;

/// Why a config failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The JSON itself didn't parse.
    Parse(String),
    /// A top-level key the schema doesn't know.
    UnknownKey(String),
    /// A known key held the wrong shape.
    BadEntry {
        key: &'static str,
        want: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Parse(e) => write!(f, "config parse: {e}"),
            ConfigError::UnknownKey(k) => write!(
                f,
                "unknown config key `{k}` — the schema rejects unknown keys so a typo'd \
                 allowlist cannot silently do nothing"
            ),
            ConfigError::BadEntry { key, want } => write!(f, "config key `{key}` needs {want}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// One hot-path registration: a function that must not allocate. Reused by
/// D8's clock-reader allowlist (same `{file, fn}` shape).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotPath {
    /// Path suffix the file must end with (e.g. `crates/serve/src/lib.rs`).
    pub path_suffix: String,
    /// Function name (unqualified).
    pub fn_name: String,
}

/// Rule configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Path prefixes where wall-clock reads are legitimate (D4, D8).
    pub wallclock_allow: Vec<String>,
    /// Functions registered as allocation-free hot paths (D5, D7 roots).
    pub hotpaths: Vec<HotPath>,
    /// Function names allowed to accumulate floats across chunks (D2) —
    /// the blessed chunk-ordered reduction helpers.
    pub blessed_reductions: Vec<String>,
    /// Path prefixes exempt from D7's transitive-allocation reachability
    /// (e.g. the capture-gated observability layer).
    pub d7_alloc_allow: Vec<String>,
    /// Enumerated legitimate `wall_now` readers (D8): `{file, fn}` entries.
    pub d8_clock_allow: Vec<HotPath>,
    /// Path prefixes of the audited unsafe islands (D9).
    pub d9_islands: Vec<String>,
    /// Qualified names of audited `pub unsafe fn` exports (D9).
    pub d9_audited_surface: Vec<String>,
    /// Qualified names of audited cross-crate callers of unsafe fns (D9).
    pub d9_audited_callers: Vec<String>,
    /// Blessed interprocedural lock-order edges (D10): `(held, acquired)`.
    pub d10_blessed_edges: Vec<(String, String)>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            wallclock_allow: vec![
                // The observability crate owns wall time (Unit::WallNs,
                // span traces) and the bench harness measures it.
                "crates/obs/".to_string(),
                "crates/bench/".to_string(),
                "crates/shims/criterion/".to_string(),
            ],
            hotpaths: Vec::new(),
            blessed_reductions: Vec::new(),
            d7_alloc_allow: Vec::new(),
            d8_clock_allow: Vec::new(),
            d9_islands: vec!["crates/threads/".to_string(), "crates/simd/".to_string()],
            d9_audited_surface: Vec::new(),
            d9_audited_callers: Vec::new(),
            d10_blessed_edges: Vec::new(),
        }
    }
}

impl Config {
    /// Parse the committed JSON config. Missing keys keep their defaults;
    /// unknown keys are a typed error.
    pub fn from_json(text: &str) -> Result<Config, ConfigError> {
        let v = serde_json::parse(text).map_err(|e| ConfigError::Parse(e.to_string()))?;
        let Value::Object(pairs) = &v else {
            return Err(ConfigError::Parse("top level must be an object".to_string()));
        };
        let mut cfg = Config::default();
        for (key, val) in pairs {
            match key.as_str() {
                "wallclock_allow" => cfg.wallclock_allow = string_list(key, val)?,
                "blessed_reductions" => cfg.blessed_reductions = string_list(key, val)?,
                "d7_alloc_allow" => cfg.d7_alloc_allow = string_list(key, val)?,
                "d9_islands" => cfg.d9_islands = string_list(key, val)?,
                "d9_audited_surface" => cfg.d9_audited_surface = string_list(key, val)?,
                "d9_audited_callers" => cfg.d9_audited_callers = string_list(key, val)?,
                "hotpaths" => cfg.hotpaths = file_fn_list("hotpaths", val)?,
                "d8_clock_allow" => cfg.d8_clock_allow = file_fn_list("d8_clock_allow", val)?,
                "d10_blessed_edges" => {
                    let Value::Array(items) = val else {
                        return Err(ConfigError::BadEntry {
                            key: "d10_blessed_edges",
                            want: "an array of {\"held\":…,\"acquired\":…} objects",
                        });
                    };
                    let mut edges = Vec::new();
                    for item in items {
                        match (
                            item.get("held").and_then(as_string),
                            item.get("acquired").and_then(as_string),
                        ) {
                            (Some(h), Some(a)) => edges.push((h.to_string(), a.to_string())),
                            _ => {
                                return Err(ConfigError::BadEntry {
                                    key: "d10_blessed_edges",
                                    want: "entries shaped {\"held\":…,\"acquired\":…}",
                                })
                            }
                        }
                    }
                    cfg.d10_blessed_edges = edges;
                }
                other => return Err(ConfigError::UnknownKey(other.to_string())),
            }
        }
        Ok(cfg)
    }

    /// Is `path` allowlisted for wall-clock reads?
    pub fn wallclock_allowed(&self, path: &str) -> bool {
        self.wallclock_allow.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Hot-path entries registered for `path`.
    pub fn hotpaths_for<'a>(&'a self, path: &str) -> Vec<&'a HotPath> {
        self.hotpaths.iter().filter(|h| path.ends_with(h.path_suffix.as_str())).collect()
    }

    /// Is `path` exempt from D7's transitive-allocation reachability?
    pub fn d7_alloc_allowed(&self, path: &str) -> bool {
        self.d7_alloc_allow.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Is (`path`, `fn_name`) an enumerated legitimate clock reader (D8)?
    pub fn d8_clock_allowed(&self, path: &str, fn_name: &str) -> bool {
        self.d8_clock_allow
            .iter()
            .any(|h| path.ends_with(h.path_suffix.as_str()) && h.fn_name == fn_name)
    }

    /// Is `path` inside an audited unsafe island (D9)?
    pub fn d9_island(&self, path: &str) -> bool {
        self.d9_islands.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Is the interprocedural lock edge `held` → `acquired` blessed (D10)?
    pub fn d10_blessed(&self, held: &str, acquired: &str) -> bool {
        self.d10_blessed_edges.iter().any(|(h, a)| h == held && a == acquired)
    }
}

fn string_list(key: &str, v: &Value) -> Result<Vec<String>, ConfigError> {
    let want = "an array of strings";
    let keyed = |k: &str| -> &'static str {
        // Map back to the static key names so the error type stays Copy-able.
        match k {
            "wallclock_allow" => "wallclock_allow",
            "blessed_reductions" => "blessed_reductions",
            "d7_alloc_allow" => "d7_alloc_allow",
            "d9_islands" => "d9_islands",
            "d9_audited_surface" => "d9_audited_surface",
            "d9_audited_callers" => "d9_audited_callers",
            _ => "config",
        }
    };
    let Value::Array(items) = v else {
        return Err(ConfigError::BadEntry { key: keyed(key), want });
    };
    let mut out = Vec::new();
    for item in items {
        match as_string(item) {
            Some(s) => out.push(s.to_string()),
            None => return Err(ConfigError::BadEntry { key: keyed(key), want }),
        }
    }
    Ok(out)
}

fn file_fn_list(key: &'static str, v: &Value) -> Result<Vec<HotPath>, ConfigError> {
    let want = "entries shaped {\"file\":…,\"fn\":…}";
    let Value::Array(items) = v else {
        return Err(ConfigError::BadEntry { key, want });
    };
    let mut out = Vec::new();
    for item in items {
        match (item.get("file").and_then(as_string), item.get("fn").and_then(as_string)) {
            (Some(f), Some(n)) => {
                out.push(HotPath { path_suffix: f.to_string(), fn_name: n.to_string() })
            }
            _ => return Err(ConfigError::BadEntry { key, want }),
        }
    }
    Ok(out)
}

fn as_string(v: &Value) -> Option<&str> {
    match v {
        Value::String(s) => Some(s.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_shape() {
        let cfg = Config::from_json(
            r#"{
                "wallclock_allow": ["crates/obs/", "crates/bench/"],
                "hotpaths": [{"file": "crates/serve/src/lib.rs", "fn": "run"}],
                "blessed_reductions": ["merge_chunks"],
                "d7_alloc_allow": ["crates/obs/"],
                "d8_clock_allow": [{"file": "crates/minimd/src/sim.rs", "fn": "step"}],
                "d9_islands": ["crates/threads/", "crates/simd/"],
                "d9_audited_surface": ["dpmd_simd::avx2::nn_f32"],
                "d9_audited_callers": ["nnet::gemm::dispatch"],
                "d10_blessed_edges": [{"held": "serve::queue", "acquired": "serve::state"}]
            }"#,
        )
        .unwrap();
        assert!(cfg.wallclock_allowed("crates/obs/src/capture.rs"));
        assert!(!cfg.wallclock_allowed("crates/minimd/src/sim.rs"));
        assert_eq!(cfg.hotpaths_for("crates/serve/src/lib.rs").len(), 1);
        assert_eq!(cfg.blessed_reductions, vec!["merge_chunks".to_string()]);
        assert!(cfg.d7_alloc_allowed("crates/obs/src/metrics.rs"));
        assert!(cfg.d8_clock_allowed("crates/minimd/src/sim.rs", "step"));
        assert!(!cfg.d8_clock_allowed("crates/minimd/src/sim.rs", "init"));
        assert!(cfg.d9_island("crates/simd/src/lib.rs"));
        assert_eq!(cfg.d9_audited_surface, vec!["dpmd_simd::avx2::nn_f32".to_string()]);
        assert!(cfg.d10_blessed("serve::queue", "serve::state"));
        assert!(!cfg.d10_blessed("serve::state", "serve::queue"));
    }

    #[test]
    fn rejects_malformed_hotpaths() {
        assert!(matches!(
            Config::from_json(r#"{"hotpaths": [{"file": "x"}]}"#),
            Err(ConfigError::BadEntry { key: "hotpaths", .. })
        ));
    }

    #[test]
    fn rejects_unknown_keys_with_a_typed_error() {
        let err = Config::from_json(r#"{"wallclock_alow": []}"#).unwrap_err();
        assert_eq!(err, ConfigError::UnknownKey("wallclock_alow".to_string()));
        assert!(err.to_string().contains("wallclock_alow"));
    }

    #[test]
    fn missing_keys_keep_island_defaults() {
        let cfg = Config::from_json("{}").unwrap();
        assert!(cfg.d9_island("crates/threads/src/lib.rs"));
        assert!(cfg.d9_island("crates/simd/src/lib.rs"));
        assert!(!cfg.d9_island("crates/comm/src/lib.rs"));
    }
}
