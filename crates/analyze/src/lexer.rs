//! A self-contained Rust lexer — exactly the subset the rules need.
//!
//! The analyzer cannot lean on `syn`/`proc-macro2` (offline build, shim-free
//! by design), so this module tokenizes Rust source directly. It must get
//! the hard cases right, because a mis-lexed string or comment silently
//! hides (or fabricates) findings:
//!
//! * nested block comments `/* /* */ */` (Rust nests them; C does not),
//! * raw strings `r#"…"#` with any number of `#`s, byte strings, and
//!   cooked strings with escapes — an `unsafe` *inside a string* is data,
//! * lifetimes `'a` vs char literals `'x'` (including `'\''` and `'\u{…}'`),
//! * float vs integer literals (`1.5`, `1e-3`, `1.` are floats; `0..10`
//!   contains two integers), needed by the float-accumulation rules.
//!
//! Comments are not tokens: they land in a side table with line spans, so
//! the `// SAFETY:` and `// dpmd-allow RULE:` rules can query them by line.

/// Token kind. Keywords are `Ident`s; the parser matches on text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Lifetime (`'a`, `'static`, `'_`) — the tick plus the name.
    Lifetime(String),
    /// Character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// Any string literal: cooked, raw, byte, raw-byte.
    StrLit,
    /// Numeric literal; `float` distinguishes `1.5`/`1e3`/`2f64` from `17`.
    Num { float: bool },
    /// A single punctuation character (compound operators arrive as
    /// adjacent tokens; adjacency is checkable via `col`).
    Punct(char),
}

/// One token with its 1-based line and byte column.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The identifier text, if this is an `Ident`.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Tok::Punct(c)
    }

    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, Tok::Ident(t) if t == s)
    }
}

/// A comment with its line span (block comments may span many lines).
#[derive(Clone, Debug)]
pub struct Comment {
    pub text: String,
    pub start_line: u32,
    pub end_line: u32,
}

/// Lexer output: the token stream plus the comment side table.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Never panics on malformed input: unterminated constructs
/// consume to end-of-file, which is the robust behaviour for a linter.
pub fn lex(src: &str) -> Lexed {
    Lexer { b: src.as_bytes(), pos: 0, line: 1, col: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> u8 {
        self.b.get(self.pos + off).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn push(&mut self, kind: Tok, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, line, col });
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.b.len() {
            let (line, col) = (self.line, self.col);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => {
                    self.cooked_string();
                    self.push(Tok::StrLit, line, col);
                }
                b'\'' => self.tick(line, col),
                c if is_ident_start(c) => {
                    let id = self.ident_text();
                    self.push(Tok::Ident(id), line, col);
                }
                c if c.is_ascii_digit() => {
                    let float = self.number();
                    self.push(Tok::Num { float }, line, col);
                }
                c => {
                    self.bump();
                    self.push(Tok::Punct(c as char), line, col);
                }
            }
        }
        self.out
    }

    fn ident_text(&mut self) -> String {
        let start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        String::from_utf8_lossy(&self.b[start..self.pos]).into_owned()
    }

    fn line_comment(&mut self) {
        let (start_line, start) = (self.line, self.pos);
        while self.pos < self.b.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.b[start..self.pos]).into_owned(),
            start_line,
            end_line: start_line,
        });
    }

    /// Nested block comment: `/* … /* … */ … */` closes only when the
    /// nesting depth returns to zero.
    fn block_comment(&mut self) {
        let (start_line, start) = (self.line, self.pos);
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1u32;
        while self.pos < self.b.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.b[start..self.pos]).into_owned(),
            start_line,
            end_line: self.line,
        });
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` at the current
    /// position. Returns true if a literal was consumed (and pushed); false
    /// means the `r`/`b` starts a plain identifier and nothing was consumed.
    fn raw_or_byte_string(&mut self) -> bool {
        let (line, col) = (self.line, self.col);
        let c0 = self.peek(0);
        // b'x' byte char.
        if c0 == b'b' && self.peek(1) == b'\'' {
            self.bump(); // b
            self.bump(); // '
            self.char_body();
            self.push(Tok::CharLit, line, col);
            return true;
        }
        // b"…" byte string.
        if c0 == b'b' && self.peek(1) == b'"' {
            self.bump();
            self.cooked_string();
            self.push(Tok::StrLit, line, col);
            return true;
        }
        // r"…" / r#"…"# / br#"…"# raw (byte) strings.
        let mut off = 1usize;
        if c0 == b'b' {
            if self.peek(1) != b'r' {
                return false;
            }
            off = 2;
        }
        let mut hashes = 0usize;
        while self.peek(off + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(off + hashes) != b'"' {
            return false; // identifier like `r` / `raw` / `br#…` never valid
        }
        for _ in 0..off + hashes + 1 {
            self.bump();
        }
        // Scan for `"` followed by `hashes` hashes. No escapes in raw strings.
        'scan: while self.pos < self.b.len() {
            if self.bump() == b'"' {
                for h in 0..hashes {
                    if self.peek(h) != b'#' {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Tok::StrLit, line, col);
        true
    }

    /// Cooked string, starting at the opening quote.
    fn cooked_string(&mut self) {
        self.bump(); // `"`
        while self.pos < self.b.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    /// A `'`: lifetime or char literal. Rust's own rule: `'` followed by an
    /// identifier is a lifetime *unless* the identifier is followed by
    /// another `'` (then it is a char literal like `'a'`).
    fn tick(&mut self, line: u32, col: u32) {
        self.bump(); // `'`
        let c = self.peek(0);
        if c == b'\\' {
            self.char_body();
            self.push(Tok::CharLit, line, col);
            return;
        }
        if is_ident_start(c) {
            let mut end = 1usize;
            while is_ident_continue(self.peek(end)) {
                end += 1;
            }
            if self.peek(end) == b'\'' {
                // 'a' — a char literal (note multi-byte idents can't close).
                for _ in 0..end + 1 {
                    self.bump();
                }
                self.push(Tok::CharLit, line, col);
            } else {
                let name = self.ident_text();
                self.push(Tok::Lifetime(name), line, col);
            }
            return;
        }
        // '(' — char literal of a non-ident char, or the degenerate `'`.
        self.char_body();
        self.push(Tok::CharLit, line, col);
    }

    /// Consume a char-literal body up to and including the closing `'`
    /// (handles `\\`, `\'`, `\u{…}`).
    fn char_body(&mut self) {
        while self.pos < self.b.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
    }

    /// Numeric literal; returns whether it is a float. Handles `1_000`,
    /// `0xff`, `1.5`, `1e-3`, `2.5e+7f32`, suffixes, and leaves `0..10`'s
    /// dots alone. A `.` is part of the number only when *not* followed by
    /// another `.` or an identifier (so `1.max(2)` stays an integer).
    fn number(&mut self) -> bool {
        let mut float = false;
        let radix_prefix = self.peek(0) == b'0'
            && matches!(self.peek(1), b'x' | b'X' | b'o' | b'O' | b'b' | b'B');
        if radix_prefix {
            self.bump();
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            return false;
        }
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump();
        }
        if self.peek(0) == b'.' && self.peek(1) != b'.' && !is_ident_start(self.peek(1)) {
            float = true;
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        if matches!(self.peek(0), b'e' | b'E')
            && (self.peek(1).is_ascii_digit()
                || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
        {
            float = true;
            self.bump();
            if matches!(self.peek(0), b'+' | b'-') {
                self.bump();
            }
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // Suffix (u8…f64). `f32`/`f64` promote to float.
        if is_ident_start(self.peek(0)) {
            let start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let suffix = &self.b[start..self.pos];
            if suffix == b"f32" || suffix == b"f64" {
                float = true;
            }
        }
        float
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn nested_block_comments_close_at_depth_zero() {
        let l = lex("a /* x /* y */ z */ b");
        assert_eq!(l.tokens.len(), 2);
        assert!(l.tokens[0].is_ident("a") && l.tokens[1].is_ident("b"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("y"));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let l = lex(r####"let s = r#"unsafe { HashMap }"#;"####);
        assert!(l.tokens.iter().all(|t| !t.is_ident("unsafe") && !t.is_ident("HashMap")));
        assert!(l.tokens.iter().any(|t| t.kind == Tok::StrLit));
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let k = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(k.contains(&Tok::Lifetime("a".into())));
        assert_eq!(k.iter().filter(|t| **t == Tok::CharLit).count(), 1);
        let k = kinds(r"let c = '\''; let l: &'static str = s;");
        assert_eq!(k.iter().filter(|t| **t == Tok::CharLit).count(), 1);
        assert!(k.contains(&Tok::Lifetime("static".into())));
    }

    #[test]
    fn floats_vs_ranges_vs_method_calls() {
        assert!(kinds("1.5").contains(&Tok::Num { float: true }));
        assert!(kinds("1e-3").contains(&Tok::Num { float: true }));
        assert!(kinds("2f64").contains(&Tok::Num { float: true }));
        assert_eq!(
            kinds("0..10").iter().filter(|t| **t == Tok::Num { float: false }).count(),
            2
        );
        assert!(kinds("1.max(2)").contains(&Tok::Num { float: false }));
        assert!(kinds("0xff_u64").contains(&Tok::Num { float: false }));
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        assert!(kinds("b'x'").contains(&Tok::CharLit));
        assert!(kinds(r###"br#"raw"#"###).contains(&Tok::StrLit));
        assert!(kinds(r#"b"bytes""#).contains(&Tok::StrLit));
        // `b` and `r` alone are plain identifiers.
        assert!(kinds("b + r").contains(&Tok::Ident("b".into())));
    }

    #[test]
    fn columns_make_compound_operators_checkable() {
        let l = lex("x += 1;");
        let plus = l.tokens.iter().position(|t| t.is_punct('+')).unwrap();
        assert!(l.tokens[plus + 1].is_punct('='));
        assert_eq!(l.tokens[plus + 1].col, l.tokens[plus].col + 1);
    }
}
