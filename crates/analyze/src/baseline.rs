//! Committed baseline suppression.
//!
//! The baseline is a JSON file of `{rule, path, count}` entries: up to
//! `count` findings of `rule` in `path` are suppressed (reported as
//! baselined, not failures). The intent is a ratchet — the committed
//! baseline should trend toward empty; new findings always fail `--deny`.
//! Refresh with `--bless` (or `DPMD_BLESS=1`) after an intentional change,
//! and justify any surviving entry with a comment in the finding's file.

use std::collections::BTreeMap;

use serde::Value;

use crate::diag::Finding;

/// Suppression budget per (rule, path).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// (rule, path) → allowed count. BTreeMap so serialization is ordered.
    pub entries: BTreeMap<(String, String), u64>,
}

impl Baseline {
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let v = serde_json::parse(text).map_err(|e| format!("baseline parse: {e}"))?;
        let mut entries = BTreeMap::new();
        let Some(Value::Array(items)) = v.get("entries") else {
            return Err("baseline needs a top-level \"entries\" array".to_string());
        };
        for item in items {
            let rule = match item.get("rule") {
                Some(Value::String(s)) => {
                    if crate::diag::RuleId::parse(s).is_none() {
                        return Err(format!("baseline entry names unknown rule {s:?}"));
                    }
                    s.clone()
                }
                _ => return Err("baseline entry missing \"rule\"".to_string()),
            };
            let path = match item.get("path") {
                Some(Value::String(s)) => s.clone(),
                _ => return Err("baseline entry missing \"path\"".to_string()),
            };
            let count = match item.get("count") {
                Some(Value::Number(n)) => {
                    n.parse::<u64>().map_err(|_| format!("bad count {n:?}"))?
                }
                _ => return Err("baseline entry missing \"count\"".to_string()),
            };
            entries.insert((rule, path), count);
        }
        Ok(Baseline { entries })
    }

    /// Serialize in canonical (rule, path) order — bit-stable.
    pub fn to_json(&self) -> String {
        let items: Vec<Value> = self
            .entries
            .iter()
            .filter(|(_, count)| **count > 0)
            .map(|((rule, path), count)| {
                Value::Object(vec![
                    ("rule".to_string(), Value::String(rule.clone())),
                    ("path".to_string(), Value::String(path.clone())),
                    ("count".to_string(), Value::Number(count.to_string())),
                ])
            })
            .collect();
        let root = Value::Object(vec![("entries".to_string(), Value::Array(items))]);
        serde_json::to_string(&root).expect("JSON print is infallible")
    }

    /// Build the baseline that exactly covers `findings` (for `--bless`).
    pub fn covering(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            *entries.entry((f.rule.as_str().to_string(), f.path.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Split `findings` into (fresh, baselined). Within a (rule, path)
    /// bucket the first `count` findings — canonical order — are baselined.
    pub fn split(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut budget: BTreeMap<(String, String), u64> = self.entries.clone();
        let mut fresh = Vec::new();
        let mut baselined = Vec::new();
        for f in findings {
            let key = (f.rule.as_str().to_string(), f.path.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    baselined.push(f);
                }
                _ => fresh.push(f),
            }
        }
        (fresh, baselined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::RuleId;

    fn f(rule: RuleId, path: &str, line: u32) -> Finding {
        Finding { rule, path: path.into(), line, message: "m".into(), snippet: "s".into() }
    }

    #[test]
    fn roundtrip_and_split() {
        let findings =
            vec![f(RuleId::D1, "a.rs", 1), f(RuleId::D1, "a.rs", 9), f(RuleId::D4, "b.rs", 2)];
        let b = Baseline::covering(&findings);
        let b2 = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(b, b2);

        let mut partial = b.clone();
        partial.entries.insert(("D1".into(), "a.rs".into()), 1);
        let (fresh, baselined) = partial.split(findings);
        assert_eq!(fresh.len(), 1, "second D1 in a.rs exceeds the budget");
        assert_eq!(fresh[0].line, 9);
        assert_eq!(baselined.len(), 2);
    }

    #[test]
    fn unknown_rule_names_are_rejected() {
        let err = Baseline::from_json(
            r#"{"entries":[{"rule":"D99","path":"a.rs","count":1}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("D99"), "got: {err}");
    }

    #[test]
    fn empty_baseline_serializes_stably() {
        let b = Baseline::default();
        assert_eq!(b.to_json(), "{\"entries\":[]}");
        assert_eq!(Baseline::from_json(&b.to_json()).unwrap(), b);
    }
}
