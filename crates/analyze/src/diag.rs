//! Typed diagnostics and their deterministic JSON form.

use serde::Value;

/// The project invariants the analyzer enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-order nondeterminism: `HashMap`/`HashSet` iteration feeding
    /// float accumulation, message construction, or serialized output.
    D1,
    /// Float accumulation over parallel/per-chunk results outside the
    /// blessed chunk-ordered reduction pattern.
    D2,
    /// `unsafe` without an adjacent `// SAFETY:` justification.
    D3,
    /// Wall-clock reads (`Instant::now`/`SystemTime::now`) outside the
    /// allowlisted observability/bench crates.
    D4,
    /// Allocation inside a registered hot-path function.
    D5,
    /// Lock-order cycle (potential deadlock) in the cross-crate
    /// `Mutex`/`RwLock` acquisition graph.
    D6,
    /// Allocation in any function *reachable* from a registered hot path
    /// (transitive closure over the workspace call graph; closes D5's
    /// one-hop blind spot).
    D7,
    /// Wall-clock taint: a call-graph path from a deterministic entry
    /// point to `wall_now`/`Instant::now` outside the enumerated clock
    /// readers (closes D4's blind spot).
    D8,
    /// Unsafe-surface escape: unsafe code or raw-pointer-returning APIs
    /// outside the audited islands, or unaudited cross-crate callers of
    /// unsafe functions.
    D9,
    /// Interprocedural lock-order cycle: lock sets accumulated along real
    /// call chains (lifts D6 beyond single-function bodies).
    D10,
}

impl RuleId {
    pub const ALL: [RuleId; 10] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
        RuleId::D7,
        RuleId::D8,
        RuleId::D9,
        RuleId::D10,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
            RuleId::D7 => "D7",
            RuleId::D8 => "D8",
            RuleId::D9 => "D9",
            RuleId::D10 => "D10",
        }
    }

    /// Parse a rule name like `"D3"` (None for anything else).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// One-line description (shown in `--explain`-style summaries).
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1 => "hash-order iteration feeding order-sensitive sinks",
            RuleId::D2 => "unordered float accumulation across parallel chunks",
            RuleId::D3 => "unsafe without a SAFETY: justification",
            RuleId::D4 => "wall-clock read on a deterministic code path",
            RuleId::D5 => "allocation inside a registered hot-path function",
            RuleId::D6 => "lock-order cycle (potential deadlock)",
            RuleId::D7 => "allocation reachable from a registered hot path",
            RuleId::D8 => "wall-clock taint outside the enumerated clock readers",
            RuleId::D9 => "unsafe surface escaping the audited islands",
            RuleId::D10 => "interprocedural lock-order cycle across call chains",
        }
    }
}

/// One diagnostic with a file:line span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Trimmed source line, for human output and review.
    pub snippet: String,
}

impl Finding {
    fn key(&self) -> (String, u32, RuleId, String) {
        (self.path.clone(), self.line, self.rule, self.message.clone())
    }
}

/// Sort findings into the canonical (path, line, rule) order that makes the
/// JSON report bit-stable across runs and platforms.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by_key(Finding::key);
}

/// Serialize findings as deterministic, timestamp-free JSON:
/// `{"findings":[{"rule":…,"path":…,"line":…,"message":…,"snippet":…}]}`.
pub fn to_json(findings: &[Finding]) -> String {
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("rule".to_string(), Value::String(f.rule.as_str().to_string())),
                ("path".to_string(), Value::String(f.path.clone())),
                ("line".to_string(), Value::Number(f.line.to_string())),
                ("message".to_string(), Value::String(f.message.clone())),
                ("snippet".to_string(), Value::String(f.snippet.clone())),
            ])
        })
        .collect();
    let root = Value::Object(vec![("findings".to_string(), Value::Array(items))]);
    serde_json::to_string(&root).expect("JSON print is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_sorted_and_stable() {
        let mut f = vec![
            Finding {
                rule: RuleId::D3,
                path: "b.rs".into(),
                line: 9,
                message: "m".into(),
                snippet: "s".into(),
            },
            Finding {
                rule: RuleId::D1,
                path: "a.rs".into(),
                line: 2,
                message: "m".into(),
                snippet: "s".into(),
            },
        ];
        sort_findings(&mut f);
        assert_eq!(f[0].path, "a.rs");
        let j = to_json(&f);
        assert!(j.starts_with("{\"findings\":[{\"rule\":\"D1\""));
        assert_eq!(j, to_json(&f), "printing twice must be identical");
    }
}
