//! The workspace call graph: function nodes annotated with the facts the
//! interprocedural rules query (allocation sites, clock reads, unsafe
//! surface, lock activity), resolved call edges, and per-run resolution
//! statistics.
//!
//! Everything here is deterministic by construction: input files are
//! pre-sorted by path, node ids follow symbol order, and the JSON export
//! sorts nodes by qualified name — two runs over the same tree are
//! byte-identical.

use std::collections::{BTreeMap, BTreeSet};

use serde::Value;

use crate::config::Config;
use crate::parser::{ParsedFile, UnsafeKind};
use crate::resolve::{call_sites, CallSite, EdgeKind, Resolution, Resolver};
use crate::rules;

/// Node index into [`CallGraph::nodes`].
pub type NodeId = usize;

/// One function in the workspace.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// `lib::mods…::[Type::]name`.
    pub qname: String,
    /// Defining file (repo-relative).
    pub path: String,
    pub line: u32,
    /// Library name (first qname segment).
    pub lib: String,
    pub is_test: bool,
    pub is_pub: bool,
    pub is_unsafe_fn: bool,
    pub has_unsafe_block: bool,
    pub returns_raw_ptr: bool,
    /// Direct allocation sites `(line, what)` — same detector as D5.
    pub allocs: Vec<(u32, String)>,
    /// Direct wall-clock reads `(line, what)` — `Instant::now` and friends
    /// (calls to `wall_now` become edges to its node instead).
    pub clocks: Vec<(u32, String)>,
    /// Lock keys this function acquires directly (D10 seed set).
    pub acquires: BTreeSet<String>,
    /// Defining file index (into the analysis input), and fn index within.
    pub file: usize,
    pub fn_idx: usize,
}

/// One resolved call edge.
#[derive(Clone, Debug)]
pub struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    /// Call-site location.
    pub path: String,
    pub line: u32,
    pub kind: EdgeKind,
}

/// A call site that could not be resolved (listed, never dropped).
#[derive(Clone, Debug)]
pub struct UnresolvedSite {
    pub path: String,
    pub line: u32,
    pub callee: String,
    pub reason: String,
}

/// A call made while holding locks (D10 input).
#[derive(Clone, Debug)]
pub struct HeldCall {
    pub from: NodeId,
    /// Lock keys held at the call.
    pub held: Vec<String>,
    /// Edge indices (into [`CallGraph::edges`]) for this site's targets.
    pub edges: Vec<usize>,
}

/// Resolution statistics for one build.
#[derive(Clone, Debug, Default)]
pub struct ResolutionStats {
    /// All syntactic call sites considered.
    pub sites: u64,
    /// Sites resolved to ≥ 1 workspace symbol.
    pub resolved: u64,
    /// Sites with no possible workspace target (std/shim/closure).
    pub external: u64,
    /// Per-tier resolved counts, keyed by [`EdgeKind::as_str`].
    pub by_kind: BTreeMap<String, u64>,
}

impl ResolutionStats {
    /// Resolution rate over workspace-bound sites, in percent. External
    /// sites are excluded from the denominator: `Vec::push` not resolving
    /// to a workspace symbol is correct, not a resolver miss.
    pub fn resolution_pct(&self, unresolved: usize) -> f64 {
        let denom = self.resolved + unresolved as u64;
        if denom == 0 {
            return 100.0;
        }
        self.resolved as f64 * 100.0 / denom as f64
    }
}

/// The workspace call graph.
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    pub edges: Vec<Edge>,
    pub unresolved: Vec<UnresolvedSite>,
    pub stats: ResolutionStats,
    /// Calls made while holding locks, for D10.
    pub held_calls: Vec<HeldCall>,
    /// node → outgoing edge indices.
    pub out: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph over pre-parsed files (must be sorted by path).
    pub fn build(files: &[ParsedFile], lib_names: &BTreeMap<String, String>) -> CallGraph {
        let resolver = Resolver::new(files, lib_names);
        let mut nodes: Vec<FnNode> = Vec::with_capacity(resolver.symbols.len());

        // symbol index == node id: resolver targets map 1:1 onto nodes.
        for sym in &resolver.symbols {
            let parsed = &files[sym.file];
            let f = &parsed.fns[sym.fn_idx];
            let (allocs, clocks) = match f.body {
                Some((lo, hi)) => (
                    rules::alloc_sites(&parsed.tokens, lo, hi),
                    rules::clock_sites(&parsed.tokens, lo, hi),
                ),
                None => (Vec::new(), Vec::new()),
            };
            let has_unsafe_block = parsed.unsafes.iter().any(|u| {
                u.kind == UnsafeKind::Block
                    && f.body.is_some_and(|(lo, hi)| lo <= u.tok && u.tok <= hi)
            });
            nodes.push(FnNode {
                qname: sym.qname(),
                path: parsed.path.clone(),
                line: f.line,
                lib: sym.segs.first().cloned().unwrap_or_default(),
                is_test: f.is_test,
                is_pub: f.is_pub,
                is_unsafe_fn: f.is_unsafe_fn,
                has_unsafe_block,
                returns_raw_ptr: f.returns_raw_ptr,
                allocs,
                clocks,
                acquires: BTreeSet::new(),
                file: sym.file,
                fn_idx: sym.fn_idx,
            });
        }

        // Map (file, fn_idx) → node for body attribution.
        let mut node_of: BTreeMap<(usize, usize), NodeId> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            node_of.insert((n.file, n.fn_idx), id);
        }

        let mut edges: Vec<Edge> = Vec::new();
        let mut unresolved: Vec<UnresolvedSite> = Vec::new();
        let mut stats = ResolutionStats::default();
        let mut held_calls: Vec<HeldCall> = Vec::new();

        for (file_idx, parsed) in files.iter().enumerate() {
            // Innermost-fn attribution: a nested fn's tokens belong to it,
            // not to the enclosing fn that textually contains both.
            let owner = |tok: usize| -> Option<usize> {
                parsed
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.body.is_some_and(|(lo, hi)| lo <= tok && tok <= hi))
                    .max_by_key(|(_, f)| f.body.map(|(lo, _)| lo).unwrap_or(0))
                    .map(|(i, _)| i)
            };
            // Lock state per fn for D10: which keys are held at each site.
            let lock_names = rules::lock_container_names(parsed);

            for (fn_idx, f) in parsed.fns.iter().enumerate() {
                let Some((lo, hi)) = f.body else { continue };
                let from = node_of[&(file_idx, fn_idx)];
                let sites = call_sites(&parsed.tokens, lo, hi);
                // Lock activity (direct acquisitions + held-at-call map).
                // Test fns are skipped: D10 reasons over production chains.
                let site_toks: Vec<usize> = sites.iter().map(|s| s.tok).collect();
                let activity = if f.is_test {
                    rules::LockActivity::default()
                } else {
                    rules::lock_activity(parsed, &lock_names, lo, hi, &site_toks)
                };
                nodes[from].acquires = activity.acquires;

                let mut site_edges: Vec<Vec<usize>> = vec![Vec::new(); sites.len()];
                for (si, site) in sites.iter().enumerate() {
                    // Skip sites that belong to a *nested* fn item; the
                    // nested fn's own pass covers them.
                    if owner(site.tok) != Some(fn_idx) {
                        continue;
                    }
                    stats.sites += 1;
                    match resolver.resolve(site, parsed, file_idx, Some(fn_idx)) {
                        Resolution::Resolved { targets, kind } => {
                            stats.resolved += 1;
                            *stats.by_kind.entry(kind.as_str().to_string()).or_insert(0) += 1;
                            for t in targets {
                                site_edges[si].push(edges.len());
                                edges.push(Edge {
                                    from,
                                    to: t,
                                    path: parsed.path.clone(),
                                    line: site.line,
                                    kind,
                                });
                            }
                        }
                        Resolution::External => stats.external += 1,
                        Resolution::Unresolved { reason } => {
                            unresolved.push(UnresolvedSite {
                                path: parsed.path.clone(),
                                line: site.line,
                                callee: render_callee(site),
                                reason,
                            });
                        }
                    }
                }
                for (si, held) in activity.held_at_site {
                    if !site_edges[si].is_empty() && !held.is_empty() {
                        held_calls.push(HeldCall {
                            from,
                            held,
                            edges: site_edges[si].clone(),
                        });
                    }
                }
            }
        }

        let mut out: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            out[e.from].push(i);
        }
        CallGraph { nodes, edges, unresolved, stats, held_calls, out }
    }

    /// Hot-path root nodes per the config manifest.
    pub fn hotpath_roots(&self, cfg: &Config) -> Vec<NodeId> {
        let mut roots: Vec<NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                cfg.hotpaths.iter().any(|h| {
                    n.path.ends_with(h.path_suffix.as_str())
                        && n.qname.rsplit("::").next() == Some(h.fn_name.as_str())
                })
            })
            .map(|(i, _)| i)
            .collect();
        roots.sort_unstable();
        roots.dedup();
        roots
    }

    /// BFS over non-test edges from `roots`. Returns the predecessor edge
    /// per reached node (for rendering call chains); roots map to `None`.
    pub fn reach(&self, roots: &[NodeId]) -> BTreeMap<NodeId, Option<usize>> {
        let mut pred: BTreeMap<NodeId, Option<usize>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
        for &r in roots {
            if !self.nodes[r].is_test {
                pred.insert(r, None);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &ei in &self.out[n] {
                let e = &self.edges[ei];
                let t = e.to;
                if self.nodes[t].is_test || pred.contains_key(&t) {
                    continue;
                }
                pred.insert(t, Some(ei));
                queue.push_back(t);
            }
        }
        pred
    }

    /// Render `root -> … -> node` using the predecessor map from [`reach`].
    pub fn chain(&self, pred: &BTreeMap<NodeId, Option<usize>>, node: NodeId) -> String {
        let mut parts = vec![short_name(&self.nodes[node].qname)];
        let mut cur = node;
        let mut hops = 0;
        while let Some(Some(ei)) = pred.get(&cur) {
            cur = self.edges[*ei].from;
            parts.push(short_name(&self.nodes[cur].qname));
            hops += 1;
            if hops > 64 {
                break; // cycles cannot occur in a BFS tree, but stay safe
            }
        }
        parts.reverse();
        parts.join(" -> ")
    }

    /// Deterministic JSON export (`--graph`): nodes sorted by qualified
    /// name, edges sorted by (from, to, line), unresolved sites included.
    pub fn to_json(&self) -> String {
        let mut order: Vec<NodeId> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            (&self.nodes[a].qname, &self.nodes[a].path, self.nodes[a].line).cmp(&(
                &self.nodes[b].qname,
                &self.nodes[b].path,
                self.nodes[b].line,
            ))
        });
        let mut new_id = vec![0usize; self.nodes.len()];
        for (i, &old) in order.iter().enumerate() {
            new_id[old] = i;
        }
        let nodes: Vec<Value> = order
            .iter()
            .map(|&i| {
                let n = &self.nodes[i];
                let mut fields = vec![
                    ("id".to_string(), Value::Number(new_id[i].to_string())),
                    ("qname".to_string(), Value::String(n.qname.clone())),
                    ("path".to_string(), Value::String(n.path.clone())),
                    ("line".to_string(), Value::Number(n.line.to_string())),
                ];
                let flags = [
                    ("test", n.is_test),
                    ("pub", n.is_pub),
                    ("unsafe_fn", n.is_unsafe_fn),
                    ("unsafe_block", n.has_unsafe_block),
                    ("raw_ptr_return", n.returns_raw_ptr),
                ];
                for (k, v) in flags {
                    if v {
                        fields.push((k.to_string(), Value::Bool(true)));
                    }
                }
                if !n.allocs.is_empty() {
                    fields.push((
                        "allocs".to_string(),
                        Value::Number(n.allocs.len().to_string()),
                    ));
                }
                if !n.clocks.is_empty() {
                    fields.push((
                        "clocks".to_string(),
                        Value::Number(n.clocks.len().to_string()),
                    ));
                }
                Value::Object(fields)
            })
            .collect();
        let mut edge_rows: Vec<(usize, usize, u32, &'static str)> = self
            .edges
            .iter()
            .map(|e| (new_id[e.from], new_id[e.to], e.line, e.kind.as_str()))
            .collect();
        edge_rows.sort_unstable();
        edge_rows.dedup();
        let edges: Vec<Value> = edge_rows
            .into_iter()
            .map(|(f, t, line, kind)| {
                Value::Object(vec![
                    ("from".to_string(), Value::Number(f.to_string())),
                    ("to".to_string(), Value::Number(t.to_string())),
                    ("line".to_string(), Value::Number(line.to_string())),
                    ("kind".to_string(), Value::String(kind.to_string())),
                ])
            })
            .collect();
        let root = Value::Object(vec![
            ("nodes".to_string(), Value::Array(nodes)),
            ("edges".to_string(), Value::Array(edges)),
            ("unresolved".to_string(), Value::Array(self.unresolved_json())),
        ]);
        serde_json::to_string(&root).expect("JSON print is infallible")
    }

    fn unresolved_json(&self) -> Vec<Value> {
        let mut rows = self.unresolved.clone();
        rows.sort_by(|a, b| (&a.path, a.line, &a.callee).cmp(&(&b.path, b.line, &b.callee)));
        rows.iter()
            .map(|u| {
                Value::Object(vec![
                    ("path".to_string(), Value::String(u.path.clone())),
                    ("line".to_string(), Value::Number(u.line.to_string())),
                    ("callee".to_string(), Value::String(u.callee.clone())),
                    ("reason".to_string(), Value::String(u.reason.clone())),
                ])
            })
            .collect()
    }

    /// Resolution statistics as deterministic JSON (`--emit-stats`).
    pub fn stats_json(&self, files_scanned: u64) -> String {
        let pct = self.stats.resolution_pct(self.unresolved.len());
        let by_kind: Vec<Value> = self
            .stats
            .by_kind
            .iter()
            .map(|(k, v)| {
                Value::Object(vec![
                    ("kind".to_string(), Value::String(k.clone())),
                    ("count".to_string(), Value::Number(v.to_string())),
                ])
            })
            .collect();
        let root = Value::Object(vec![
            ("files".to_string(), Value::Number(files_scanned.to_string())),
            ("nodes".to_string(), Value::Number(self.nodes.len().to_string())),
            ("edges".to_string(), Value::Number(self.edges.len().to_string())),
            ("sites".to_string(), Value::Number(self.stats.sites.to_string())),
            ("resolved".to_string(), Value::Number(self.stats.resolved.to_string())),
            ("external".to_string(), Value::Number(self.stats.external.to_string())),
            (
                "unresolved_count".to_string(),
                Value::Number(self.unresolved.len().to_string()),
            ),
            // Two decimals keep the figure bit-stable across platforms.
            (
                "resolution_pct".to_string(),
                Value::Number(format!("{pct:.2}")),
            ),
            ("resolved_by_kind".to_string(), Value::Array(by_kind)),
            ("unresolved".to_string(), Value::Array(self.unresolved_json())),
        ]);
        serde_json::to_string(&root).expect("JSON print is infallible")
    }
}

/// Last two qname segments (`Type::name` or `mod::name`) — enough to read
/// a chain without drowning in module paths.
fn short_name(qname: &str) -> String {
    let parts: Vec<&str> = qname.rsplit("::").take(2).collect();
    parts.into_iter().rev().collect::<Vec<_>>().join("::")
}

fn render_callee(site: &CallSite) -> String {
    if site.is_method {
        format!(".{}", site.name)
    } else if site.qual.is_empty() {
        site.name.clone()
    } else {
        format!("{}::{}", site.qual.join("::"), site.name)
    }
}
