//! Rule implementations D1–D6.
//!
//! Each rule is a token-level heuristic grounded in this workspace's
//! determinism architecture (chunk-ordered reduction, wall-clock isolation
//! in `dpmd-obs`, allocation-free hot loops). The heuristics are documented
//! inline; they are deliberately conservative — a linter that cries wolf on
//! blessed patterns gets baselined into silence, which is worse than missing
//! an exotic variant.
//!
//! D1–D5 are per-file. D6 (lock order) collects acquisition edges per file
//! and the caller runs [`lock_cycles`] over the merged graph, because a
//! deadlock needs two sites that may live in different crates.
//!
//! D7–D10 are *interprocedural*: they run as reachability/taint queries
//! over the workspace call graph ([`crate::graph::CallGraph`]) via
//! [`graph_rules`] — transitive hot-path allocation (D7), wall-clock taint
//! (D8), unsafe-surface escape audit (D9), and lock-order cycles lifted to
//! lock sets accumulated along real call chains (D10).

use std::collections::BTreeSet;

use crate::config::Config;
use crate::diag::{Finding, RuleId};
use crate::graph::{CallGraph, NodeId};
use crate::lexer::{Tok, Token};
use crate::parser::{match_paren, FnItem, ParsedFile, UnsafeKind};

/// One lock-acquired-while-holding-another observation (D6 input).
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Lock held at the time, keyed `crate::name`.
    pub held: String,
    /// Lock being acquired.
    pub acquired: String,
    pub path: String,
    pub line: u32,
    /// Site carries an inline `dpmd-allow D6` justification.
    pub allowed: bool,
}

/// Run rules D1–D5 on one parsed file and collect its D6 lock edges.
pub fn analyze_file(
    parsed: &ParsedFile,
    src: &str,
    cfg: &Config,
) -> (Vec<Finding>, Vec<LockEdge>) {
    let mut findings = Vec::new();
    let hash_names = container_names(parsed, &["HashMap", "HashSet"]);
    let lock_names = container_names(parsed, &["Mutex", "RwLock"]);

    rule_d1(parsed, src, &hash_names, &mut findings);
    rule_d2(parsed, src, cfg, &mut findings);
    rule_d3(parsed, src, &mut findings);
    rule_d4(parsed, src, cfg, &mut findings);
    rule_d5(parsed, src, cfg, &mut findings);
    let edges = lock_edges(parsed, &lock_names);

    // The for-loop and method-chain detectors can both hit one line; keep
    // one finding per (rule, line).
    findings.sort_by_key(|f| (f.rule, f.line, f.message.clone()));
    findings.dedup_by_key(|f| (f.rule, f.line));
    (findings, edges)
}

fn finding(parsed: &ParsedFile, src: &str, rule: RuleId, line: u32, message: String) -> Finding {
    Finding {
        rule,
        path: parsed.path.clone(),
        line,
        message,
        snippet: parsed.source_line(src, line).to_string(),
    }
}

/// Extract binding names whose declared type or initializer mentions one of
/// `kinds` (e.g. `HashMap`): `let [mut] name = Kind::new()`, `name: Kind<…>`
/// fields/params, `name: Arc<Mutex<…>>`. `use` paths produce no name (their
/// colons are all `::`). Bindings inside test functions are ignored — a
/// test-only `let set: HashSet<_>` must not taint a production variable
/// that happens to share the name.
fn container_names(parsed: &ParsedFile, kinds: &[&str]) -> BTreeSet<String> {
    let tokens = &parsed.tokens;
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if !kinds.contains(&id) || in_test_fn(parsed, i) {
            continue;
        }
        let lo = stmt_start(tokens, i);
        let mut name: Option<&str> = None;
        let mut j = lo;
        while j < i {
            if tokens[j].is_ident("let") {
                let mut k = j + 1;
                if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                if let Some(n) = tokens.get(k).and_then(Token::ident) {
                    name = Some(n);
                }
            }
            // `name :` with a *single* colon (a `::` path separator never
            // binds a name).
            if tokens[j].ident().is_some()
                && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && !tokens.get(j + 2).is_some_and(|t| t.is_punct(':'))
            {
                name = tokens[j].ident();
            }
            j += 1;
        }
        if let Some(n) = name {
            names.insert(n.to_string());
        }
    }
    names
}

/// Token index just past the previous `;`, `{`, or `}` — the approximate
/// statement start. Backward scans don't track nesting; for the linear
/// code this workspace contains, the nearest boundary is the right one.
fn stmt_start(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return j + 1;
        }
    }
    0
}

/// Token index of the `;` ending the statement that token `i` belongs to
/// (exclusive bound for scans). Tracks all three bracket kinds so `;` inside
/// closure bodies doesn't end the statement early; a `}` that closes the
/// enclosing block ends a trailing expression.
fn stmt_end(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(i) {
        match t.kind {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            Tok::Punct(';') if depth <= 0 => return j,
            _ => {}
        }
    }
    tokens.len()
}

/// Is token `i` a compound assignment operator `c=` (e.g. `+=`)? Compound
/// operators arrive as adjacent single-char punct tokens.
fn is_compound_assign(tokens: &[Token], i: usize, c: char) -> bool {
    tokens[i].is_punct(c)
        && tokens.get(i + 1).is_some_and(|t| {
            t.is_punct('=') && t.line == tokens[i].line && t.col == tokens[i].col + 1
        })
        && !tokens.get(i + 2).is_some_and(|t| t.is_punct('='))
}

/// Non-test function bodies, as token ranges.
fn prod_bodies(parsed: &ParsedFile) -> Vec<(&FnItem, usize, usize)> {
    parsed
        .fns
        .iter()
        .filter(|f| !f.is_test)
        .filter_map(|f| f.body.map(|(a, b)| (f, a, b)))
        .collect()
}

// ---------------------------------------------------------------------------
// D1 — hash-order iteration feeding order-sensitive sinks.
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "values", "values_mut", "keys", "into_iter", "into_keys",
    "into_values", "drain",
];
const D1_SINKS: &[&str] = &[
    "sum", "product", "fold", "min_by_key", "max_by_key", "min_by", "max_by", "format",
    "write", "writeln", "push", "push_str", "extend", "collect", "serialize", "to_json",
];

fn d1_sink_in(tokens: &[Token], lo: usize, hi: usize) -> bool {
    // Re-sorting (or re-collecting into an ordered container) restores a
    // deterministic order and neutralizes the site. The blessed shape is
    // collect-then-sort, where the `sort` sits in the *next* statement, so
    // when the sink range ends at a real `;` the neutralizer window extends
    // one statement further. (A tail expression ends at its block's `}` —
    // extending there would leak into unrelated following items.)
    let neut_hi = if tokens.get(hi).is_some_and(|t| t.is_punct(';')) {
        stmt_end(tokens, hi.saturating_add(1)).saturating_add(1)
    } else {
        hi
    };
    let mut i = lo;
    while i < neut_hi.min(tokens.len()) {
        if let Some(id) = tokens[i].ident() {
            if id.starts_with("sort") || id == "BTreeMap" || id == "BTreeSet" {
                return false;
            }
        }
        i += 1;
    }
    let mut i = lo;
    while i < hi.min(tokens.len()) {
        if let Some(id) = tokens[i].ident() {
            if D1_SINKS.contains(&id) {
                return true;
            }
        }
        if is_compound_assign(tokens, i, '+') {
            return true;
        }
        i += 1;
    }
    false
}

fn rule_d1(parsed: &ParsedFile, src: &str, hash_names: &BTreeSet<String>, out: &mut Vec<Finding>) {
    if hash_names.is_empty() {
        return;
    }
    let tokens = &parsed.tokens;
    for (_f, lo, hi) in prod_bodies(parsed) {
        let mut i = lo;
        while i < hi {
            let t = &tokens[i];
            // `name.iter()` / `name.values()` / … chains.
            if t.ident().is_some_and(|id| hash_names.contains(id))
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && tokens
                    .get(i + 2)
                    .is_some_and(|t| t.ident().is_some_and(|m| ITER_METHODS.contains(&m)))
            {
                let end = stmt_end(tokens, i);
                if d1_sink_in(tokens, i, end) && !parsed.allowed("D1", t.line) {
                    out.push(finding(
                        parsed,
                        src,
                        RuleId::D1,
                        t.line,
                        format!(
                            "iteration over hash-ordered `{}` feeds an order-sensitive sink; \
                             use BTreeMap/BTreeSet or sort first",
                            t.ident().unwrap_or_default()
                        ),
                    ));
                }
            }
            // `for x in &name { … }` loops.
            if t.is_ident("for") {
                let mut j = i + 1;
                let mut in_idx = None;
                while j < hi && !tokens[j].is_punct('{') {
                    if tokens[j].is_punct('(') {
                        j = match_paren(tokens, j) + 1;
                        continue;
                    }
                    if tokens[j].is_ident("in") {
                        in_idx = Some(j);
                    }
                    j += 1;
                }
                if let (Some(in_idx), true) = (in_idx, j < hi && tokens[j].is_punct('{')) {
                    let body_close = parsed.match_brace(j);
                    let iterates_hash = (in_idx..j).any(|k| {
                        tokens[k].ident().is_some_and(|id| hash_names.contains(id))
                    });
                    if iterates_hash
                        && d1_sink_in(tokens, in_idx, body_close)
                        && !parsed.allowed("D1", t.line)
                    {
                        out.push(finding(
                            parsed,
                            src,
                            RuleId::D1,
                            t.line,
                            "for-loop over a hash-ordered container feeds an order-sensitive \
                             sink; use BTreeMap/BTreeSet or sort first"
                                .to_string(),
                        ));
                    }
                }
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// D2 — unordered float accumulation across parallel chunks.
// ---------------------------------------------------------------------------

/// Float evidence inside `[lo, hi)`: a float literal or an `f32`/`f64`
/// mention. (Pure-identifier accumulators without type evidence are out of
/// reach for a lexical rule — documented limitation.)
fn float_evidence(tokens: &[Token], lo: usize, hi: usize) -> bool {
    tokens[lo..hi.min(tokens.len())].iter().any(|t| match &t.kind {
        Tok::Num { float } => *float,
        Tok::Ident(s) => s.contains("f32") || s.contains("f64"),
        _ => false,
    })
}

fn rule_d2(parsed: &ParsedFile, src: &str, cfg: &Config, out: &mut Vec<Finding>) {
    let tokens = &parsed.tokens;
    for (f, lo, hi) in prod_bodies(parsed) {
        if cfg.blessed_reductions.iter().any(|b| b == &f.name) {
            continue;
        }
        // (a) `*shared.lock() += <float>` — accumulating into a shared cell
        // makes the sum order depend on thread scheduling.
        let mut i = lo;
        while i < hi {
            if is_compound_assign(tokens, i, '+') || is_compound_assign(tokens, i, '-') {
                let s = stmt_start(tokens, i);
                let e = stmt_end(tokens, i);
                let takes_lock = (s..i).any(|k| {
                    tokens[k].is_punct('.')
                        && tokens
                            .get(k + 1)
                            .is_some_and(|t| t.is_ident("lock") || t.is_ident("write"))
                        && tokens.get(k + 2).is_some_and(|t| t.is_punct('('))
                        && tokens.get(k + 3).is_some_and(|t| t.is_punct(')'))
                });
                let line = tokens[i].line;
                if takes_lock && float_evidence(tokens, s, e) && !parsed.allowed("D2", line) {
                    out.push(finding(
                        parsed,
                        src,
                        RuleId::D2,
                        line,
                        "float accumulation through a shared lock — sum order depends on \
                         thread scheduling; use per-chunk buffers merged in chunk order"
                            .to_string(),
                    ));
                }
            }
            i += 1;
        }
        // (b) compound assignment to a captured binding inside a
        // `spawn(…)`/`scope(…)` region.
        let mut i = lo;
        while i < hi {
            if (tokens[i].is_ident("spawn") || tokens[i].is_ident("scope"))
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                let close = match_paren(tokens, i + 1);
                d2_spawn_region(parsed, src, tokens, i + 2, close, out);
                i = close;
            }
            i += 1;
        }
    }
}

/// Flag compound assignments inside a spawn region whose target is captured
/// from outside the region (not let-bound, loop-bound, or a closure param).
fn d2_spawn_region(
    parsed: &ParsedFile,
    src: &str,
    tokens: &[Token],
    lo: usize,
    hi: usize,
    out: &mut Vec<Finding>,
) {
    let mut locals: BTreeSet<String> = BTreeSet::new();
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        if t.is_ident("let") || t.is_ident("for") {
            // Bind the next few idents (covers `let (a, b) =` tuples).
            let mut k = i + 1;
            while k < hi && k < i + 8 && !tokens[k].is_punct('=') && !tokens[k].is_ident("in") {
                if let Some(n) = tokens[k].ident() {
                    if n != "mut" {
                        locals.insert(n.to_string());
                    }
                }
                k += 1;
            }
        }
        if t.is_punct('|') {
            // Closure parameter list: idents up to the closing `|`.
            let mut k = i + 1;
            while k < hi && k < i + 16 && !tokens[k].is_punct('|') {
                if let Some(n) = tokens[k].ident() {
                    locals.insert(n.to_string());
                }
                k += 1;
            }
            i = k;
        }
        if is_compound_assign(tokens, i, '+') || is_compound_assign(tokens, i, '-') {
            if let Some(base) = lvalue_base(tokens, i) {
                let line = tokens[i].line;
                if !locals.contains(&base) && !parsed.allowed("D2", line) {
                    out.push(finding(
                        parsed,
                        src,
                        RuleId::D2,
                        line,
                        format!(
                            "`{base}` is accumulated inside a spawn/scope region but bound \
                             outside it — reduction order depends on scheduling; write to a \
                             per-chunk slot and merge in chunk order"
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
}

/// Head identifier of the lvalue ending just before the operator at `op`:
/// `total` in `total +=`, `self` in `self.total +=`, `buf` in `buf[i] +=`.
fn lvalue_base(tokens: &[Token], op: usize) -> Option<String> {
    let mut j = op;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match &tokens[j].kind {
            Tok::Punct(']') => {
                // Jump back over the index expression.
                let mut depth = 1i64;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match tokens[j].kind {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
            }
            Tok::Ident(_) => {
                // Walk the field chain to its head: `a.b.c` → `a`.
                while j >= 2
                    && tokens[j - 1].is_punct('.')
                    && tokens[j - 2].ident().is_some()
                {
                    j -= 2;
                }
                return tokens[j].ident().map(str::to_string);
            }
            Tok::Punct('*') | Tok::Punct(')') => continue,
            _ => return None,
        }
    }
}

// ---------------------------------------------------------------------------
// D3 — unsafe without a SAFETY: justification.
// ---------------------------------------------------------------------------

fn rule_d3(parsed: &ParsedFile, src: &str, out: &mut Vec<Finding>) {
    // Applies everywhere, tests included, and has no dpmd-allow escape:
    // the escape hatch for D3 *is* the SAFETY comment.
    for site in &parsed.unsafes {
        if !parsed.has_safety_comment(site.line) {
            let what = match site.kind {
                UnsafeKind::Block => "unsafe block",
                UnsafeKind::Fn => "unsafe fn",
                UnsafeKind::ImplOrTrait => "unsafe impl/trait",
            };
            out.push(finding(
                parsed,
                src,
                RuleId::D3,
                site.line,
                format!("{what} without an adjacent `// SAFETY:` comment"),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// D4 — wall-clock reads on deterministic paths.
// ---------------------------------------------------------------------------

const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime", "Utc", "Local"];

fn rule_d4(parsed: &ParsedFile, src: &str, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.wallclock_allowed(&parsed.path) || parsed.file_is_testlike {
        return;
    }
    let tokens = &parsed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if !CLOCK_TYPES.contains(&id) {
            continue;
        }
        let is_now = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"));
        if !is_now || in_test_fn(parsed, i) || parsed.allowed("D4", t.line) {
            continue;
        }
        out.push(finding(
            parsed,
            src,
            RuleId::D4,
            t.line,
            format!(
                "`{id}::now` on a deterministic path — route wall-clock reads through \
                 `dpmd_obs::clock::wall_now` (feeds WallNs metrics only)"
            ),
        ));
    }
}

/// Is token `i` inside a test function?
fn in_test_fn(parsed: &ParsedFile, i: usize) -> bool {
    parsed.fns.iter().any(|f| {
        f.is_test && f.body.is_some_and(|(_, close)| f.sig_start <= i && i <= close)
    })
}

// ---------------------------------------------------------------------------
// D5 — allocation inside registered hot-path functions.
// ---------------------------------------------------------------------------

const ALLOC_TYPES: &[&str] =
    &["Vec", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "String", "Box"];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "clone", "collect"];

/// Allocation evidence at token `i`: an `ALLOC_TYPES::ctor` path, a
/// `vec!`/`format!` macro, or an allocating method call. Returns a human
/// label for the site. Shared by D5 (direct) and D7 (transitive).
fn alloc_hit(tokens: &[Token], i: usize) -> Option<String> {
    let t = &tokens[i];
    if t.ident().is_some_and(|id| ALLOC_TYPES.contains(&id))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens
            .get(i + 3)
            .is_some_and(|t| t.ident().is_some_and(|m| ALLOC_CTORS.contains(&m)))
    {
        return Some(format!(
            "`{}::{}`",
            t.ident().unwrap_or_default(),
            tokens[i + 3].ident().unwrap_or_default()
        ));
    }
    if (t.is_ident("vec") || t.is_ident("format"))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
    {
        return Some(format!("`{}!`", t.ident().unwrap_or_default()));
    }
    if t.is_punct('.')
        && tokens
            .get(i + 1)
            .is_some_and(|t| t.ident().is_some_and(|m| ALLOC_METHODS.contains(&m)))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
    {
        return Some(format!("`.{}()`", tokens[i + 1].ident().unwrap_or_default()));
    }
    None
}

/// All allocation sites `(line, label)` in the token range `[lo, hi)`.
pub fn alloc_sites(tokens: &[Token], lo: usize, hi: usize) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi.min(tokens.len()) {
        if let Some(what) = alloc_hit(tokens, i) {
            out.push((tokens[i].line, what));
        }
        i += 1;
    }
    out
}

/// All direct wall-clock reads `(line, label)` in `[lo, hi)` — the
/// `Instant::now`-style shapes D4 polices, collected per function for the
/// call-graph nodes.
pub fn clock_sites(tokens: &[Token], lo: usize, hi: usize) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi.min(tokens.len()) {
        let t = &tokens[i];
        if t.ident().is_some_and(|id| CLOCK_TYPES.contains(&id))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push((t.line, format!("`{}::now`", t.ident().unwrap_or_default())));
        }
        i += 1;
    }
    out
}

fn rule_d5(parsed: &ParsedFile, src: &str, cfg: &Config, out: &mut Vec<Finding>) {
    let hotpaths = cfg.hotpaths_for(&parsed.path);
    if hotpaths.is_empty() {
        return;
    }
    let tokens = &parsed.tokens;
    for (f, lo, hi) in prod_bodies(parsed) {
        if !hotpaths.iter().any(|h| h.fn_name == f.name) {
            continue;
        }
        let mut i = lo;
        while i < hi {
            if let Some(what) = alloc_hit(tokens, i) {
                let line = tokens[i].line;
                if !parsed.allowed("D5", line) {
                    out.push(finding(
                        parsed,
                        src,
                        RuleId::D5,
                        line,
                        format!(
                            "{what} allocates inside hot path `{}` — hoist into reusable \
                             scratch state",
                            f.name
                        ),
                    ));
                }
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// D6 — lock-order graph and cycle detection.
// ---------------------------------------------------------------------------

/// Crate segment of a repo-relative path (`crates/comm/src/x.rs` → `comm`).
fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(c)) => c,
        _ => "root",
    }
}

/// Lock bindings (`Mutex`/`RwLock` containers) named in one file — public
/// so the call-graph builder shares D6's binding detection.
pub fn lock_container_names(parsed: &ParsedFile) -> BTreeSet<String> {
    container_names(parsed, &["Mutex", "RwLock"])
}

/// Lock activity of one function body: the held→acquired edges observed
/// inside it (D6 input), the set of keys it acquires at all (the D10
/// `may_acquire` seed), and the held lock set at each requested call site.
#[derive(Debug, Default)]
pub struct LockActivity {
    pub edges: Vec<LockEdge>,
    pub acquires: BTreeSet<String>,
    /// `(index into site_toks, held keys)` per requested site, in order.
    pub held_at_site: Vec<(usize, Vec<String>)>,
}

/// Run the guard-tracking state machine over one body `[lo, hi)`. A guard
/// bound with `let` stays held to the end of its enclosing block (or an
/// explicit `drop`); a statement-temporary guard is released at the `;`.
/// `site_toks` are token indices (ascending) at which to record the held
/// set — the call-graph builder passes its call sites.
pub fn lock_activity(
    parsed: &ParsedFile,
    lock_names: &BTreeSet<String>,
    lo: usize,
    hi: usize,
    site_toks: &[usize],
) -> LockActivity {
    struct Held {
        key: String,
        depth: i64,
        until_semi: bool,
        guard: Option<String>,
    }
    let mut act = LockActivity::default();
    if lock_names.is_empty() {
        return act;
    }
    let tokens = &parsed.tokens;
    let krate = crate_of(&parsed.path).to_string();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i64;
    let mut next_site = 0usize;
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        match t.kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            Tok::Punct(';') => held.retain(|h| !h.until_semi),
            _ => {}
        }
        // `drop(guard)` releases early.
        if t.is_ident("drop") && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(g) = tokens.get(i + 2).and_then(Token::ident) {
                held.retain(|h| h.guard.as_deref() != Some(g));
            }
        }
        while next_site < site_toks.len() && site_toks[next_site] < i {
            next_site += 1;
        }
        if next_site < site_toks.len() && site_toks[next_site] == i {
            act.held_at_site
                .push((next_site, held.iter().map(|h| h.key.clone()).collect()));
            next_site += 1;
        }
        // Acquisition: `name.lock()` / `.read()` / `.write()` (no-arg —
        // distinguishes RwLock::write from io::Write::write).
        let acquires = t.ident().is_some_and(|id| lock_names.contains(id))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && tokens.get(i + 2).is_some_and(|t| {
                t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")
            })
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct(')'));
        if acquires {
            let key = format!("{krate}::{}", t.ident().unwrap_or_default());
            let line = t.line;
            act.acquires.insert(key.clone());
            for h in &held {
                if h.key != key {
                    act.edges.push(LockEdge {
                        held: h.key.clone(),
                        acquired: key.clone(),
                        path: parsed.path.clone(),
                        line,
                        allowed: parsed.allowed("D6", line),
                    });
                }
            }
            // Guard or temporary? `let g = name.lock()…;` holds on.
            let s = stmt_start(tokens, i);
            let is_let = tokens[s..i].iter().any(|t| t.is_ident("let"));
            let guard = if is_let {
                // Last ident before `=` is the bound guard (handles
                // `let g =` and `if let Ok(g) =`).
                let mut name = None;
                for t in &tokens[s..i] {
                    if t.is_punct('=') {
                        break;
                    }
                    if let Some(n) = t.ident() {
                        if !matches!(n, "let" | "mut" | "if" | "while" | "Ok" | "Some") {
                            name = Some(n.to_string());
                        }
                    }
                }
                name
            } else {
                None
            };
            held.push(Held {
                key,
                depth,
                until_semi: !is_let,
                guard,
            });
        }
        i += 1;
    }
    act
}

/// Collect held→acquired edges from one file (all non-test bodies).
fn lock_edges(parsed: &ParsedFile, lock_names: &BTreeSet<String>) -> Vec<LockEdge> {
    let mut edges: Vec<LockEdge> = Vec::new();
    for (_f, lo, hi) in parsed
        .fns
        .iter()
        .filter(|f| !f.is_test)
        .filter_map(|f| f.body.map(|(a, b)| (f, a, b)))
    {
        edges.extend(lock_activity(parsed, lock_names, lo, hi, &[]).edges);
    }
    edges
}

/// One detected lock-order cycle: its canonical id (sorted member set) and
/// a representative edge to anchor the diagnostic.
struct CycleHit {
    id: String,
    held: String,
    acquired: String,
    path: String,
    line: u32,
}

/// Detect cycles in a lock-order edge set. Returns the unallowed cycles
/// (one per canonical member set) and the full id set *including* allowed
/// cycles — D10 subtracts the latter so an intra-file cycle (reported or
/// blessed as D6) is never re-reported interprocedurally.
fn cycle_hits(edges: &[LockEdge]) -> (Vec<CycleHit>, BTreeSet<String>) {
    // Dedup parallel edges, keep first site.
    let mut uniq: Vec<&LockEdge> = Vec::new();
    for e in edges {
        if !uniq.iter().any(|u| u.held == e.held && u.acquired == e.acquired) {
            uniq.push(e);
        }
    }

    // DFS cycle detection: for each ordered pair (a, b) with an edge a→b,
    // a cycle exists iff b reaches a. Small graphs; quadratic is fine.
    let reaches = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                for e in &uniq {
                    if e.held == n {
                        stack.push(e.acquired.as_str());
                    }
                }
            }
        }
        false
    };

    let mut hits = Vec::new();
    let mut all_ids: BTreeSet<String> = BTreeSet::new();
    for e in &uniq {
        if !reaches(&e.acquired, &e.held) {
            continue;
        }
        // Canonical cycle id: the sorted node set, so each cycle reports once.
        let mut members: Vec<&str> = uniq
            .iter()
            .filter(|x| reaches(&x.acquired, &x.held))
            .flat_map(|x| [x.held.as_str(), x.acquired.as_str()])
            .filter(|n| reaches(n, &e.held) && reaches(&e.held, n))
            .collect();
        members.sort_unstable();
        members.dedup();
        let id = members.join(" -> ");
        if !all_ids.insert(id.clone()) {
            continue;
        }
        let cycle_allowed = uniq.iter().any(|x| {
            x.allowed && members.contains(&x.held.as_str()) && members.contains(&x.acquired.as_str())
        });
        if cycle_allowed {
            continue;
        }
        hits.push(CycleHit {
            id,
            held: e.held.clone(),
            acquired: e.acquired.clone(),
            path: e.path.clone(),
            line: e.line,
        });
    }
    (hits, all_ids)
}

/// Find cycles in the merged lock-order graph; one finding per cycle. Any
/// edge in the cycle carrying a `dpmd-allow D6` justification suppresses it.
pub fn lock_cycles(edges: &[LockEdge]) -> Vec<Finding> {
    let (hits, _) = cycle_hits(edges);
    hits.into_iter()
        .map(|h| Finding {
            rule: RuleId::D6,
            path: h.path,
            line: h.line,
            message: format!(
                "lock-order cycle {{{}}}: `{}` acquired while holding `{}` — a thread \
                 taking them in the opposite order deadlocks",
                h.id, h.acquired, h.held
            ),
            snippet: String::new(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// D7–D10 — interprocedural rules over the workspace call graph.
// ---------------------------------------------------------------------------

/// Run the call-graph rules. `files` are the parsed inputs the graph was
/// built over (same order), `srcs` the matching source texts (for
/// snippets), `intra` the merged per-file D6 lock edges.
pub fn graph_rules(
    g: &CallGraph,
    files: &[ParsedFile],
    srcs: &[String],
    cfg: &Config,
    intra: &[LockEdge],
) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_d7(g, files, srcs, cfg, &mut out);
    rule_d8(g, files, srcs, cfg, &mut out);
    rule_d9(g, files, srcs, cfg, &mut out);
    rule_d10(g, cfg, intra, &mut out);
    out
}

fn graph_finding(
    g: &CallGraph,
    files: &[ParsedFile],
    srcs: &[String],
    rule: RuleId,
    node: NodeId,
    line: u32,
    message: String,
) -> Finding {
    let n = &g.nodes[node];
    Finding {
        rule,
        path: n.path.clone(),
        line,
        message,
        snippet: files[n.file].source_line(&srcs[n.file], line).to_string(),
    }
}

/// D7 — transitive hot-path allocation. Every function reachable from a
/// registered hot path (depth ≥ 1; the root itself is D5's) must be
/// allocation-free, unless its file is under a `d7_alloc_allow` prefix or
/// the site carries an inline `dpmd-allow D7`.
fn rule_d7(
    g: &CallGraph,
    files: &[ParsedFile],
    srcs: &[String],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    let roots = g.hotpath_roots(cfg);
    if roots.is_empty() {
        return;
    }
    let root_set: BTreeSet<NodeId> = roots.iter().copied().collect();
    let pred = g.reach(&roots);
    for &n in pred.keys() {
        if root_set.contains(&n) {
            continue;
        }
        let node = &g.nodes[n];
        if node.allocs.is_empty() || cfg.d7_alloc_allowed(&node.path) {
            continue;
        }
        let chain = g.chain(&pred, n);
        let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
        for (line, what) in &node.allocs {
            if !seen_lines.insert(*line) || files[node.file].allowed("D7", *line) {
                continue;
            }
            out.push(graph_finding(
                g,
                files,
                srcs,
                RuleId::D7,
                n,
                *line,
                format!(
                    "{what} allocates on a hot path reached via {chain} — hoist into \
                     reusable scratch state or allowlist the file in d7_alloc_allow"
                ),
            ));
        }
    }
}

/// D8 — wall-clock taint. `dpmd_obs::clock::wall_now` is the sanctioned
/// choke point; every production function that reads it must be enumerated
/// in `d8_clock_allow` (or live under a `wallclock_allow` prefix). The
/// committed allowlist *is* the audit of legitimate clock readers — any
/// path from deterministic code to the clock necessarily crosses one.
fn rule_d8(
    g: &CallGraph,
    files: &[ParsedFile],
    srcs: &[String],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    let sinks: BTreeSet<NodeId> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.qname.ends_with("::wall_now") || n.qname == "wall_now")
        .map(|(i, _)| i)
        .collect();
    if sinks.is_empty() {
        return;
    }
    let mut seen: BTreeSet<(NodeId, u32)> = BTreeSet::new();
    for e in &g.edges {
        if !sinks.contains(&e.to) || sinks.contains(&e.from) {
            continue;
        }
        let c = &g.nodes[e.from];
        if c.is_test
            || cfg.wallclock_allowed(&c.path)
            || cfg.d8_clock_allowed(&c.path, c.qname.rsplit("::").next().unwrap_or(""))
            || files[c.file].allowed("D8", e.line)
            || !seen.insert((e.from, e.line))
        {
            continue;
        }
        out.push(graph_finding(
            g,
            files,
            srcs,
            RuleId::D8,
            e.from,
            e.line,
            format!(
                "`wall_now` read in `{}`, which is not an enumerated clock reader — add a \
                 d8_clock_allow entry (WallNs-only timing) or hoist the read to an audited \
                 caller",
                c.qname
            ),
        ));
    }
}

/// D9 — unsafe-surface escape audit. Unsafe code and raw-pointer-returning
/// public APIs are confined to the audited islands (`d9_islands`); inside
/// them, every `pub unsafe fn` must be enumerated in `d9_audited_surface`
/// and every cross-crate caller of an unsafe fn in `d9_audited_callers`.
fn rule_d9(
    g: &CallGraph,
    files: &[ParsedFile],
    srcs: &[String],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    // (a) any unsafe site outside the islands (tests included — escape is
    // escape), unless justified inline.
    for (fi, parsed) in files.iter().enumerate() {
        if cfg.d9_island(&parsed.path) {
            continue;
        }
        for u in &parsed.unsafes {
            if parsed.allowed("D9", u.line) {
                continue;
            }
            let what = match u.kind {
                UnsafeKind::Block => "unsafe block",
                UnsafeKind::Fn => "unsafe fn",
                UnsafeKind::ImplOrTrait => "unsafe impl/trait",
            };
            out.push(Finding {
                rule: RuleId::D9,
                path: parsed.path.clone(),
                line: u.line,
                message: format!(
                    "{what} outside the audited unsafe islands ({}) — move it into an \
                     island or justify with `dpmd-allow D9`",
                    cfg.d9_islands.join(", ")
                ),
                snippet: files[fi].source_line(&srcs[fi], u.line).to_string(),
            });
        }
    }
    for (i, n) in g.nodes.iter().enumerate() {
        // (b) island `pub unsafe fn` must be enumerated surface.
        if n.is_pub
            && n.is_unsafe_fn
            && cfg.d9_island(&n.path)
            && !cfg.d9_audited_surface.iter().any(|q| q == &n.qname)
            && !files[n.file].allowed("D9", n.line)
        {
            out.push(graph_finding(
                g,
                files,
                srcs,
                RuleId::D9,
                i,
                n.line,
                format!(
                    "`pub unsafe fn {}` is exported unsafe surface not enumerated in \
                     d9_audited_surface",
                    n.qname
                ),
            ));
        }
        // (d) public raw-pointer-returning APIs leak the island boundary.
        if n.returns_raw_ptr
            && n.is_pub
            && !n.is_test
            && !cfg.d9_island(&n.path)
            && !files[n.file].allowed("D9", n.line)
        {
            out.push(graph_finding(
                g,
                files,
                srcs,
                RuleId::D9,
                i,
                n.line,
                format!(
                    "`pub fn {}` returns a raw pointer outside the audited islands — \
                     return a reference/slice or move the API into an island",
                    n.qname
                ),
            ));
        }
    }
    // (c) cross-crate calls into unsafe fns: the caller must be audited.
    let mut seen: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for e in &g.edges {
        let (c, t) = (&g.nodes[e.from], &g.nodes[e.to]);
        if !t.is_unsafe_fn || c.lib == t.lib || c.is_test {
            continue;
        }
        if cfg.d9_audited_callers.iter().any(|q| q == &c.qname)
            || files[c.file].allowed("D9", e.line)
            || !seen.insert((e.from, e.to))
        {
            continue;
        }
        out.push(graph_finding(
            g,
            files,
            srcs,
            RuleId::D9,
            e.from,
            e.line,
            format!(
                "`{}` calls unsafe fn `{}` across the crate boundary without an entry in \
                 d9_audited_callers",
                c.qname, t.qname
            ),
        ));
    }
}

/// D10 — interprocedural lock order. Lifts D6 to lock sets accumulated
/// along real call chains: a lock held across a call edge orders against
/// everything the callee *may* acquire (transitively). Cycles already
/// visible intra-file stay D6's; only the chains the graph adds report
/// here. Escape hatch: `d10_blessed_edges` in the config.
fn rule_d10(g: &CallGraph, cfg: &Config, intra: &[LockEdge], out: &mut Vec<Finding>) {
    if g.held_calls.is_empty() {
        return;
    }
    // may_acquire fixpoint over non-test edges.
    let mut may: Vec<BTreeSet<String>> = g.nodes.iter().map(|n| n.acquires.clone()).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for e in &g.edges {
            if g.nodes[e.from].is_test || g.nodes[e.to].is_test {
                continue;
            }
            let add: Vec<String> = may[e.to]
                .iter()
                .filter(|k| !may[e.from].contains(k.as_str()))
                .cloned()
                .collect();
            if !add.is_empty() {
                may[e.from].extend(add);
                changed = true;
            }
        }
    }
    let (_, intra_ids) = cycle_hits(intra);
    let mut combined: Vec<LockEdge> = intra.to_vec();
    for hc in &g.held_calls {
        for &ei in &hc.edges {
            let e = &g.edges[ei];
            for acq in &may[e.to] {
                for h in &hc.held {
                    if h != acq {
                        combined.push(LockEdge {
                            held: h.clone(),
                            acquired: acq.clone(),
                            path: e.path.clone(),
                            line: e.line,
                            allowed: cfg.d10_blessed(h, acq),
                        });
                    }
                }
            }
        }
    }
    let (hits, _) = cycle_hits(&combined);
    for h in hits {
        if intra_ids.contains(&h.id) {
            continue; // D6 (or its inline allow) already owns this cycle
        }
        out.push(Finding {
            rule: RuleId::D10,
            path: h.path,
            line: h.line,
            message: format!(
                "interprocedural lock-order cycle {{{}}}: a callee may acquire `{}` while \
                 `{}` is held across the call — opposite-order chains deadlock; reorder \
                 the acquisitions or bless the edge in d10_blessed_edges",
                h.id, h.acquired, h.held
            ),
            snippet: String::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let parsed = parse_file(path, src);
        let (mut findings, edges) = analyze_file(&parsed, src, &Config::default());
        findings.extend(lock_cycles(&edges));
        findings
    }

    #[test]
    fn container_names_from_lets_fields_and_params() {
        let p = parse_file(
            "crates/x/src/lib.rs",
            "struct S { pairs: HashMap<(usize, usize), usize> }\n\
             fn f(m: &HashMap<u32, u32>) { let mut seen = HashSet::new(); }\n\
             use std::collections::HashMap;\n",
        );
        let names = container_names(&p, &["HashMap", "HashSet"]);
        assert!(names.contains("pairs") && names.contains("m") && names.contains("seen"));
        assert!(!names.contains("collections"), "use paths must not bind names");
    }

    #[test]
    fn d1_fires_on_sum_not_on_sorted_collect() {
        let bad = "fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum() }";
        assert_eq!(run("crates/x/src/lib.rs", bad).len(), 1);
        let good = "fn f(m: &HashMap<u32, f64>) -> Vec<u32> {\n\
                    let mut v: Vec<u32> = m.keys().copied().collect(); v.sort(); v }";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn d2_spawn_capture_fires_and_local_chunk_buffer_does_not() {
        let bad = "fn f(pool: &Pool, total: &mut f64) {\n\
                   pool.scope(|s| { s.spawn(|| { *total += 1.5; }); });\n}";
        let f = run("crates/x/src/lib.rs", bad);
        assert!(f.iter().any(|f| f.rule == RuleId::D2), "{f:?}");
        let good = "fn f(pool: &Pool) {\n\
                    pool.scope(|s| { s.spawn(|| { let mut acc = 0.0; acc += 1.5; }); });\n}";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn d4_fires_outside_allowlist_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(run("crates/minimd/src/sim.rs", src).len(), 1);
        assert!(run("crates/obs/src/capture.rs", src).is_empty());
    }

    #[test]
    fn d6_reports_ab_ba_cycle_once() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) { let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); }\n\
                   fn g(&self) { let g = self.b.lock().unwrap(); let h = self.a.lock().unwrap(); }\n\
                   }\n";
        let f = run("crates/x/src/lib.rs", src);
        let d6: Vec<_> = f.iter().filter(|f| f.rule == RuleId::D6).collect();
        assert_eq!(d6.len(), 1, "{d6:?}");
        assert!(d6[0].message.contains("x::a") && d6[0].message.contains("x::b"));
    }

    #[test]
    fn d6_statement_temporary_does_not_hold() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) { *self.a.lock().unwrap() = 1; let h = self.b.lock().unwrap(); }\n\
                   fn g(&self) { *self.b.lock().unwrap() = 1; let h = self.a.lock().unwrap(); }\n\
                   }\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }
}
