//! Property-based tests (proptest) for the NN substrate's core invariants.

use proptest::prelude::*;

use nnet::activation::Activation;
use nnet::f16::F16;
use nnet::gemm::{blocked, dispatch, naive, simd};
use nnet::init::build_mlp;
use nnet::layers::Resnet;
use nnet::matrix::Matrix;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1.0e3f32..1.0e3).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    /// Every f16 bit pattern that is not NaN survives a round trip through
    /// f32 exactly.
    #[test]
    fn f16_f32_round_trip(bits in any::<u16>()) {
        let h = F16::from_bits(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
    }

    /// Conversion to f16 is monotone: a ≤ b ⇒ f16(a) ≤ f16(b).
    #[test]
    fn f16_conversion_is_monotone(a in finite_f32(), b in finite_f32()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (hlo, hhi) = (F16::from_f32(lo), F16::from_f32(hi));
        prop_assert!(hlo.to_f32() <= hhi.to_f32(), "{lo} -> {}, {hi} -> {}", hlo, hhi);
    }

    /// Round-to-nearest: the f16 result is within half a ULP-interval of
    /// the input (bounded by the spacing at that magnitude).
    #[test]
    fn f16_rounding_error_is_bounded(x in -60000.0f32..60000.0) {
        let h = F16::from_f32(x).to_f32();
        // Spacing of f16 at |x| is at most 2^-10 · 2^ceil(log2 |x|) ≤ |x|/512 for
        // normals, and 2^-24 absolute for subnormals.
        let bound = (x.abs() / 512.0).max(6.0e-8);
        prop_assert!((h - x).abs() <= bound, "x={x} h={h}");
    }

    /// Negation is exact in f16 (sign-bit flip).
    #[test]
    fn f16_negation_exact(x in finite_f32()) {
        let h = F16::from_f32(x);
        prop_assert_eq!((-h).to_f32(), -(h.to_f32()));
    }

    /// All three GEMM families agree with the naive reference on random
    /// shapes and inputs.
    #[test]
    fn gemm_families_agree(
        m in 1usize..6,
        n in 1usize..40,
        k in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a: Vec<f64> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| next()).collect();
        let mut c_ref = vec![0.0; m * n];
        let mut c_blk = vec![0.0; m * n];
        let mut c_sve = vec![0.0; m * n];
        naive::gemm_nn_f64(m, n, k, &a, &b, &mut c_ref);
        blocked::gemm_nn_f64(m, n, k, &a, &b, &mut c_blk);
        simd::gemm_nn_f64(m, n, k, &a, &b, &mut c_sve);
        for i in 0..m * n {
            prop_assert!((c_ref[i] - c_blk[i]).abs() < 1e-10);
            prop_assert!((c_ref[i] - c_sve[i]).abs() < 1e-10);
        }
    }

    /// The blocked kernels *overwrite* `C`: pre-filling the output buffer
    /// with garbage must not change the result. Pins the output contract
    /// shared by all GEMM families (no BLAS-style `β` accumulation).
    #[test]
    fn gemm_overwrites_garbage_prefilled_c(
        m in 1usize..6,
        n in 1usize..40,
        k in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut state = seed ^ 0x9e3779b97f4a7c15;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a: Vec<f64> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| next()).collect();
        // Same B data reinterpreted n×k for the NT form's reference.
        let bt: Vec<f64> = (0..n * k).map(|_| next()).collect();

        let mut c_ref = vec![0.0; m * n];
        let mut c_dirty: Vec<f64> = (0..m * n).map(|_| next() * 1e6 + 7.0).collect();
        naive::gemm_nn_f64(m, n, k, &a, &b, &mut c_ref);
        blocked::gemm_nn_f64(m, n, k, &a, &b, &mut c_dirty);
        for i in 0..m * n {
            prop_assert!(
                (c_ref[i] - c_dirty[i]).abs() < 1e-10,
                "NN leaked prior C contents at {}: {} vs {}", i, c_ref[i], c_dirty[i]
            );
        }

        let mut c_ref_nt = vec![0.0; m * n];
        let mut c_dirty_nt: Vec<f64> = (0..m * n).map(|_| next() * -1e6 - 3.0).collect();
        naive::gemm_nt_f64(m, n, k, &a, &bt, &mut c_ref_nt);
        blocked::gemm_nt_f64(m, n, k, &a, &bt, &mut c_dirty_nt);
        for i in 0..m * n {
            prop_assert!(
                (c_ref_nt[i] - c_dirty_nt[i]).abs() < 1e-10,
                "NT leaked prior C contents at {}: {} vs {}", i, c_ref_nt[i], c_dirty_nt[i]
            );
        }
    }

    /// GEMM-NT on the transposed matrix equals GEMM-NN on the original.
    #[test]
    fn gemm_nt_is_nn_of_transpose(
        m in 1usize..4,
        n in 1usize..24,
        k in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a: Vec<f64> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| next()).collect();
        let mut bt = vec![0.0; n * k];
        for r in 0..k {
            for c in 0..n {
                bt[c * k + r] = b[r * n + c];
            }
        }
        let mut c_nn = vec![0.0; m * n];
        let mut c_nt = vec![0.0; m * n];
        simd::gemm_nn_f64(m, n, k, &a, &b, &mut c_nn);
        simd::gemm_nt_f64(m, n, k, &a, &bt, &mut c_nt);
        for i in 0..m * n {
            prop_assert!((c_nn[i] - c_nt[i]).abs() < 1e-10);
        }
    }

    /// Matrix transpose is an involution and preserves the Frobenius norm.
    #[test]
    fn transpose_involution(rows in 1usize..12, cols in 1usize..12, seed in any::<u64>()) {
        let m = Matrix::from_fn(rows, cols, |r, c| {
            ((seed ^ (r as u64 * 31 + c as u64)) % 1000) as f64 / 500.0 - 1.0
        });
        let t = m.transpose();
        prop_assert_eq!(t.transpose(), m.clone());
        prop_assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
    }

    /// tanh derivative is non-negative (it underflows to exactly 0 in the
    /// saturated tails) and at most 1.
    #[test]
    fn tanh_derivative_bounds(x in -50.0f64..50.0) {
        let d = Activation::Tanh.derivative(x);
        prop_assert!((0.0..=1.0).contains(&d));
        if x.abs() < 15.0 {
            prop_assert!(d > 0.0, "derivative must be strictly positive at {x}");
        }
    }

    /// MLP forward is deterministic and finite for bounded inputs, and the
    /// input gradient matches finite differences at a random coordinate.
    #[test]
    fn mlp_gradient_matches_fd(
        seed in 0u64..1000,
        x0 in -1.0f64..1.0,
        x1 in -1.0f64..1.0,
        x2 in -1.0f64..1.0,
        probe in 0usize..3,
    ) {
        let mlp = build_mlp(3, &[6, 6], 1, Activation::Tanh, seed);
        // Strip resnets? build_mlp policy gives Doubling on 3->6: keep it —
        // the gradient must be right regardless.
        let _ = Resnet::None;
        let x = Matrix::from_vec(1, 3, vec![x0, x1, x2]);
        let (out, caches) = mlp.forward(&x);
        prop_assert!(out[(0, 0)].is_finite());
        let dout = Matrix::from_vec(1, 1, vec![1.0]);
        let (dx, _) = mlp.backward(&caches, &dout);
        let h = 1e-6;
        let mut xp = x.clone();
        xp[(0, probe)] += h;
        let mut xm = x.clone();
        xm[(0, probe)] -= h;
        let fd = (mlp.forward_infer(&xp)[(0, 0)] - mlp.forward_infer(&xm)[(0, 0)]) / (2.0 * h);
        prop_assert!((fd - dx[(0, probe)]).abs() < 1e-5, "fd {fd} vs {}", dx[(0, probe)]);
    }

    /// Every dispatch-class kernel honours its determinism contract on
    /// arbitrary shapes, **edge shapes included** (`m = 0`, `k = 0`, `m ≤ 3`
    /// tall-skinny rows, and m/n far from the microkernel register tiles so
    /// every remainder path runs):
    ///
    /// * the scalar-class kernel is bitwise `naive` (two roundings per
    ///   accumulate, ascending-k);
    /// * the native kernel (when the host has one) is bitwise the portable
    ///   fused `reference_nn` fold (`mul_add`, ascending-k) — the semantic
    ///   definition of the Avx2/Neon classes — and within reassociation
    ///   tolerance of `naive`.
    #[test]
    fn dispatch_kernels_match_their_class_reference(
        m in 0usize..11,
        n in 0usize..40,
        k in 0usize..40,
        seed in any::<u64>(),
    ) {
        let mut state = seed ^ 0xd1b54a32d192ed03;
        let mut next32 = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        };
        let a32: Vec<f32> = (0..m * k).map(|_| next32()).collect();
        let b32: Vec<f32> = (0..k * n).map(|_| next32()).collect();
        let a64: Vec<f64> = a32.iter().map(|&x| x as f64).collect();
        let b64: Vec<f64> = b32.iter().map(|&x| x as f64).collect();
        // Poison-filled outputs: kernels must overwrite every element.
        let poison32 = f32::from_bits(0x7fc0dead);
        let poison64 = f64::from_bits(0x7ff8_0000_dead_beef);

        // Scalar class == naive, bitwise, f32 and f64.
        let scalar = dispatch::scalar();
        let mut want32 = vec![0.0f32; m * n];
        let mut got32 = vec![poison32; m * n];
        naive::gemm_nn_f32(m, n, k, &a32, &b32, &mut want32);
        scalar.nn_f32(m, n, k, &a32, &b32, &mut got32);
        prop_assert_eq!(
            want32.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got32.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "scalar f32 {}x{}x{}", m, n, k
        );
        let mut want64 = vec![0.0f64; m * n];
        let mut got64 = vec![poison64; m * n];
        naive::gemm_nn_f64(m, n, k, &a64, &b64, &mut want64);
        scalar.nn_f64(m, n, k, &a64, &b64, &mut got64);
        prop_assert_eq!(
            want64.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got64.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "scalar f64 {}x{}x{}", m, n, k
        );

        // Native class == fused portable reference, bitwise; and close to
        // naive (only the fold's rounding regime differs).
        if let Some(native) = dispatch::native() {
            let mut fused32 = vec![0.0f32; m * n];
            let mut nat32 = vec![poison32; m * n];
            dpmd_simd::reference_nn_f32(m, n, k, &a32, &b32, &mut fused32);
            native.nn_f32(m, n, k, &a32, &b32, &mut nat32);
            prop_assert_eq!(
                fused32.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                nat32.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "native f32 vs fused reference {}x{}x{} ({:?})", m, n, k, native.class()
            );
            let mut fused64 = vec![0.0f64; m * n];
            let mut nat64 = vec![poison64; m * n];
            dpmd_simd::reference_nn_f64(m, n, k, &a64, &b64, &mut fused64);
            native.nn_f64(m, n, k, &a64, &b64, &mut nat64);
            prop_assert_eq!(
                fused64.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                nat64.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "native f64 vs fused reference {}x{}x{} ({:?})", m, n, k, native.class()
            );
            for i in 0..m * n {
                prop_assert!(
                    (want32[i] - nat32[i]).abs() <= 1e-4 * want32[i].abs().max(1.0),
                    "native f32 drifted from naive at {}: {} vs {}", i, want32[i], nat32[i]
                );
                prop_assert!(
                    (want64[i] - nat64[i]).abs() <= 1e-12 * want64[i].abs().max(1.0),
                    "native f64 drifted from naive at {}: {} vs {}", i, want64[i], nat64[i]
                );
            }
        }
    }
}
