//! Deterministic weight initialization and model I/O.
//!
//! The original DeePMD-kit keeps TensorFlow around *solely* to load trained
//! model parameters (§III-B1: "we retain the TensorFlow library solely for
//! loading model parameters"). The analog here is a plain JSON checkpoint
//! format readable without the graph runtime.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::layers::{Dense, Mlp, Resnet};
use crate::matrix::Matrix;

/// Serializable checkpoint for one dense layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerCheckpoint {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Row-major `in_dim × out_dim` weights.
    pub weights: Vec<f64>,
    /// Bias of length `out_dim`.
    pub bias: Vec<f64>,
    /// Activation function.
    pub act: Activation,
    /// Residual style.
    pub resnet: Resnet,
}

/// Serializable checkpoint for a whole MLP.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MlpCheckpoint {
    /// Layers in application order.
    pub layers: Vec<LayerCheckpoint>,
}

impl From<&Mlp> for MlpCheckpoint {
    fn from(mlp: &Mlp) -> Self {
        MlpCheckpoint {
            layers: mlp
                .layers
                .iter()
                .map(|l| LayerCheckpoint {
                    in_dim: l.in_dim(),
                    out_dim: l.out_dim(),
                    weights: l.w.as_slice().to_vec(),
                    bias: l.b.clone(),
                    act: l.act,
                    resnet: l.resnet,
                })
                .collect(),
        }
    }
}

impl MlpCheckpoint {
    /// Reconstruct the MLP.
    ///
    /// # Panics
    /// If a layer's buffer lengths don't match its declared shape.
    pub fn restore(&self) -> Mlp {
        Mlp::new(
            self.layers
                .iter()
                .map(|l| Dense {
                    w: Matrix::from_vec(l.in_dim, l.out_dim, l.weights.clone()),
                    b: l.bias.clone(),
                    act: l.act,
                    resnet: l.resnet,
                })
                .collect(),
        )
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization cannot fail")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Build an MLP with the given hidden widths, Xavier-initialized from `seed`.
///
/// `resnet_policy` decides each hidden layer's skip from its (in, out) pair —
/// DeePMD convention: identity when `out == in`, doubling when `out == 2·in`,
/// plain otherwise. The final layer is linear with no skip.
pub fn build_mlp(in_dim: usize, hidden: &[usize], out_dim: usize, act: Activation, seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers = Vec::with_capacity(hidden.len() + 1);
    let mut prev = in_dim;
    for &h in hidden {
        let resnet = if h == prev {
            Resnet::Identity
        } else if h == 2 * prev {
            Resnet::Doubling
        } else {
            Resnet::None
        };
        layers.push(Dense::xavier(prev, h, act, resnet, &mut rng));
        prev = h;
    }
    layers.push(Dense::xavier(prev, out_dim, Activation::Linear, Resnet::None, &mut rng));
    Mlp::new(layers)
}

/// Draw a standard-normal sample via Box–Muller (keeps the dependency set to
/// plain `rand`).
pub fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let v = r * (2.0 * std::f64::consts::PI * u2).cos();
        if v.is_finite() {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_mlp_applies_deepmd_resnet_policy() {
        let mlp = build_mlp(1, &[25, 50, 100], 4, Activation::Tanh, 1);
        assert_eq!(mlp.layers[0].resnet, Resnet::None); // 1 -> 25
        assert_eq!(mlp.layers[1].resnet, Resnet::Doubling); // 25 -> 50
        assert_eq!(mlp.layers[2].resnet, Resnet::Doubling); // 50 -> 100
        assert_eq!(mlp.layers[3].resnet, Resnet::None); // output
        assert_eq!(mlp.layers[3].act, Activation::Linear);

        let fitting = build_mlp(64, &[240, 240, 240], 1, Activation::Tanh, 2);
        assert_eq!(fitting.layers[1].resnet, Resnet::Identity);
        assert_eq!(fitting.layers[2].resnet, Resnet::Identity);
    }

    #[test]
    fn same_seed_same_weights() {
        let a = build_mlp(2, &[8], 1, Activation::Tanh, 7);
        let b = build_mlp(2, &[8], 1, Activation::Tanh, 7);
        assert_eq!(a.layers[0].w, b.layers[0].w);
        let c = build_mlp(2, &[8], 1, Activation::Tanh, 8);
        assert_ne!(a.layers[0].w, c.layers[0].w);
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let mlp = build_mlp(3, &[6, 6], 2, Activation::Tanh, 42);
        let ckpt = MlpCheckpoint::from(&mlp);
        let json = ckpt.to_json();
        let back = MlpCheckpoint::from_json(&json).unwrap().restore();
        let x = Matrix::from_fn(4, 3, |r, c| (r + c) as f64 * 0.1);
        assert_eq!(mlp.forward_infer(&x), back.forward_infer(&x));
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(100);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
