//! GEMM kernels for Deep Potential inference.
//!
//! Three families of kernels, mirroring the paper's §III-B2:
//!
//! * [`naive`] — the textbook triple loop. Reference semantics for tests and
//!   the lower baseline for the micro-benchmarks.
//! * [`blocked`] — a cache-blocked i-k-j kernel standing in for the vendor
//!   BLAS (Fugaku BLAS / OpenBLAS) the original DeePMD-kit calls.
//! * [`simd`] — the **sve-gemm** tall-and-skinny specialization: each element
//!   of a row of `A` is broadcast against the matching row of `B` and fused
//!   into the output row, the exact multiply-accumulate (`svmla`) formulation
//!   of the paper. Written so LLVM auto-vectorizes the inner loop, standing
//!   in for hand-written SVE-512 intrinsics.
//!
//! Every family provides NN (`C = A·B`) and NT (`C = A·Bᵀ`) entry points —
//! the NT forms exist because the fitting-net backward pass multiplies the
//! gradient by the *transpose* of the parameter matrix, and the paper found
//! NT to run at roughly half the NN rate for small matrices (motivating the
//! preprocess-the-transpose optimization). An fp16-storage / fp32-accumulate
//! kernel backs the `MIX-fp16` precision path.
//!
//! [`auto_nn_f32`]/[`auto_nn_f64`] reproduce the paper's dispatch rule:
//! sve-gemm when `m ≤ 3`, BLAS otherwise.

pub mod blocked;
pub mod naive;
pub mod simd;

/// The M-dimension threshold below which the tall-and-skinny sve-gemm kernel
/// is selected (the paper activates sve-gemm for M ≤ 3).
pub const SVE_GEMM_M_THRESHOLD: usize = 3;

/// Floating point operations performed by an `m×k · k×n` GEMM.
#[inline]
pub fn flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Which kernel family executed a dispatched GEMM (for instrumentation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Textbook triple loop.
    Naive,
    /// Cache-blocked BLAS stand-in.
    Blocked,
    /// Tall-and-skinny sve-gemm.
    Sve,
}

/// `C = A·B` in f64 with the paper's dispatch rule; returns the kernel used.
pub fn auto_nn_f64(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) -> KernelKind {
    if m <= SVE_GEMM_M_THRESHOLD {
        simd::gemm_nn_f64(m, n, k, a, b, c);
        KernelKind::Sve
    } else {
        blocked::gemm_nn_f64(m, n, k, a, b, c);
        KernelKind::Blocked
    }
}

/// `C = A·B` in f32 with the paper's dispatch rule; returns the kernel used.
pub fn auto_nn_f32(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) -> KernelKind {
    if m <= SVE_GEMM_M_THRESHOLD {
        simd::gemm_nn_f32(m, n, k, a, b, c);
        KernelKind::Sve
    } else {
        blocked::gemm_nn_f32(m, n, k, a, b, c);
        KernelKind::Blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f16::F16;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn rand_vec(rng: &mut StdRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
    }

    /// Every f64 kernel must agree with the naive reference to tight tolerance.
    #[test]
    fn all_f64_kernels_agree() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, n, k) in &[(1, 240, 240), (2, 8, 16), (3, 240, 240), (5, 7, 9), (17, 33, 12), (64, 64, 64)] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            let mut c_sve = vec![0.0; m * n];
            naive::gemm_nn_f64(m, n, k, &a, &b, &mut c_ref);
            blocked::gemm_nn_f64(m, n, k, &a, &b, &mut c_blk);
            simd::gemm_nn_f64(m, n, k, &a, &b, &mut c_sve);
            for i in 0..m * n {
                assert!((c_ref[i] - c_blk[i]).abs() < 1e-12, "blocked {m}x{n}x{k} idx {i}");
                assert!((c_ref[i] - c_sve[i]).abs() < 1e-12, "sve {m}x{n}x{k} idx {i}");
            }
        }
    }

    #[test]
    fn nt_matches_nn_on_transposed_input() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, n, k) = (3, 24, 16);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n); // k x n
        // bt is n x k so that bt^T == b.
        let mut bt = vec![0.0; n * k];
        for r in 0..k {
            for c in 0..n {
                bt[c * k + r] = b[r * n + c];
            }
        }
        let mut c_nn = vec![0.0; m * n];
        let mut c_nt = vec![0.0; m * n];
        naive::gemm_nn_f64(m, n, k, &a, &b, &mut c_nn);
        naive::gemm_nt_f64(m, n, k, &a, &bt, &mut c_nt);
        for i in 0..m * n {
            assert!((c_nn[i] - c_nt[i]).abs() < 1e-12);
        }
        let mut c_nt_sve = vec![0.0; m * n];
        simd::gemm_nt_f64(m, n, k, &a, &bt, &mut c_nt_sve);
        for i in 0..m * n {
            assert!((c_nn[i] - c_nt_sve[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn fp16_kernel_matches_f32_within_half_precision() {
        let mut rng = StdRng::seed_from_u64(9);
        let (m, n, k) = (2, 240, 240);
        let a32: Vec<f32> = (0..m * k).map(|_| rng.random_range(-0.5..0.5)).collect();
        let b32: Vec<f32> = (0..k * n).map(|_| rng.random_range(-0.5..0.5)).collect();
        let a16: Vec<F16> = a32.iter().map(|&x| F16::from_f32(x)).collect();
        let b16: Vec<F16> = b32.iter().map(|&x| F16::from_f32(x)).collect();
        let mut c32 = vec![0.0f32; m * n];
        let mut c16 = vec![0.0f32; m * n];
        simd::gemm_nn_f32(m, n, k, &a32, &b32, &mut c32);
        simd::gemm_nn_f16(m, n, k, &a16, &b16, &mut c16);
        // Inputs rounded to f16 but accumulation in f32: error is bounded by
        // ~k * eps_f16 * |a||b| in the worst case; statistically far smaller.
        let mut max_err = 0.0f32;
        for i in 0..m * n {
            max_err = max_err.max((c32[i] - c16[i]).abs());
        }
        assert!(max_err < 0.05, "fp16 storage error too large: {max_err}");
        assert!(max_err > 0.0, "fp16 path must differ from f32 path");
    }

    #[test]
    fn dispatch_follows_m_threshold() {
        let a = vec![0.0f32; 3 * 4];
        let b = vec![0.0f32; 4 * 5];
        let mut c = vec![0.0f32; 3 * 5];
        assert_eq!(auto_nn_f32(3, 5, 4, &a, &b, &mut c), KernelKind::Sve);
        let a = vec![0.0f32; 4 * 4];
        let mut c = vec![0.0f32; 4 * 5];
        assert_eq!(auto_nn_f32(4, 5, 4, &a, &b, &mut c), KernelKind::Blocked);
    }

    #[test]
    fn flops_counts() {
        assert_eq!(flops(2, 240, 240), 2 * 2 * 240 * 240);
    }
}
