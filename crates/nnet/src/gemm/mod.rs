//! GEMM kernels for Deep Potential inference.
//!
//! Three families of kernels, mirroring the paper's §III-B2:
//!
//! * [`naive`] — the textbook triple loop. Reference semantics for tests and
//!   the lower baseline for the micro-benchmarks.
//! * [`blocked`] — a cache-blocked i-k-j kernel standing in for the vendor
//!   BLAS (Fugaku BLAS / OpenBLAS) the original DeePMD-kit calls.
//! * [`simd`] — the **sve-gemm** tall-and-skinny specialization: each element
//!   of a row of `A` is broadcast against the matching row of `B` and fused
//!   into the output row, the exact multiply-accumulate (`svmla`) formulation
//!   of the paper. Written so LLVM auto-vectorizes the inner loop, standing
//!   in for hand-written SVE-512 intrinsics.
//!
//! Every family provides NN (`C = A·B`) and NT (`C = A·Bᵀ`) entry points —
//! the NT forms exist because the fitting-net backward pass multiplies the
//! gradient by the *transpose* of the parameter matrix, and the paper found
//! NT to run at roughly half the NN rate for small matrices (motivating the
//! preprocess-the-transpose optimization). An fp16-storage / fp32-accumulate
//! kernel backs the `MIX-fp16` precision path.
//!
//! [`auto_nn_f32`]/[`auto_nn_f64`] reproduce the paper's dispatch rule:
//! sve-gemm when `m ≤ 3`, BLAS otherwise.
//!
//! On top of the shape rule sits **runtime class dispatch** ([`dispatch`]):
//! the f32 hot path runs on explicit AVX2/NEON microkernels from `dpmd-simd`
//! when the CPU has them, and on the portable kernels above otherwise (or
//! when `DPMD_FORCE_SCALAR` pins the scalar class). Determinism is bitwise
//! within each dispatch class; see the `dispatch` module docs for the exact
//! contract and for why `auto_nn_f64` stays on the scalar class.

pub mod blocked;
pub mod dispatch;
pub mod naive;
pub mod simd;

/// The M-dimension threshold below which the tall-and-skinny sve-gemm kernel
/// is selected (the paper activates sve-gemm for M ≤ 3).
pub const SVE_GEMM_M_THRESHOLD: usize = 3;

/// Floating point operations performed by an `m×k · k×n` GEMM.
#[inline]
pub fn flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Which shape family the paper's dispatch rule put a GEMM in (for
/// instrumentation): `Sve` is the tall-and-skinny `m ≤ 3` family, `Blocked`
/// the BLAS-shaped rest. The *instruction class* that actually executed the
/// call (scalar vs AVX2 vs NEON) is process-wide and reported separately by
/// [`dispatch::active_class`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Textbook triple loop.
    Naive,
    /// Cache-blocked BLAS stand-in.
    Blocked,
    /// Tall-and-skinny sve-gemm.
    Sve,
}

/// Shape family of the paper's dispatch rule for an `m`-row GEMM.
#[inline]
fn shape_family(m: usize) -> KernelKind {
    if m <= SVE_GEMM_M_THRESHOLD {
        KernelKind::Sve
    } else {
        KernelKind::Blocked
    }
}

/// `C = A·B` in f64 with the paper's shape rule; returns the family used.
///
/// Deliberately pinned to the scalar class (never the native SIMD kernels):
/// this entry point backs the f64 reference/training executors, whose
/// contract is bitwise equality with the naive graph interpreter on every
/// machine. The dispatched f64 kernels are reachable via [`dispatch`].
pub fn auto_nn_f64(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) -> KernelKind {
    dispatch::scalar().nn_f64(m, n, k, a, b, c);
    shape_family(m)
}

/// `C = A·B` in f32 on the process's active dispatch class (native SIMD
/// kernels when available, scalar otherwise or under `DPMD_FORCE_SCALAR`);
/// returns the shape family of the paper's dispatch rule.
pub fn auto_nn_f32(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) -> KernelKind {
    dispatch::active().nn_f32(m, n, k, a, b, c);
    shape_family(m)
}

// ---------------------------------------------------------------------------
// Batched entry points.
//
// A batch of `batch` independent `m×k · k×n` calls sharing the same `B` is
// computed as one `(batch·m)×k · k×n` call, with the per-call `A` and `C`
// panels stacked contiguously along the M dimension.
//
// Bitwise guarantee: every NN kernel in this module (naive, blocked, sve)
// accumulates each output element `c[i][j]` by walking `p = 0..k` in
// ascending order with exactly one rounding per add — Rust emits no FMA
// contraction or reassociation by default. A row of the output therefore
// depends only on (that row of `A`, `B`, `n`, `k`) and never on `m` or the
// kernel chosen, so stacking rows is bitwise-invisible: the batched result
// equals the concatenation of the per-call results bit for bit, at any batch
// size and under either dispatch outcome. `tests::stacked_rows_are_bitwise_
// kernel_invariant` enforces this property.
//
// The explicit-SIMD classes in `dpmd-simd` keep the same row independence
// (their fold is ascending-p fused multiply-add, never dependent on `m` or
// tiling), so batched == per-call holds bit for bit on every dispatch class
// — only the *cross-class* results differ (one rounding vs two per step).

/// Batched `C = A·B` in f64: `batch` stacked calls of shape `m×n×k` sharing
/// `B`, dispatched as one `(batch·m)×n×k` GEMM. Bitwise equal to calling
/// [`auto_nn_f64`] per slice (see module notes). Returns the kernel used.
pub fn batched_nn_f64(
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
    a_stacked: &[f64],
    b: &[f64],
    c_stacked: &mut [f64],
) -> KernelKind {
    auto_nn_f64(batch * m, n, k, a_stacked, b, c_stacked)
}

/// Batched `C = A·B` in f32; see [`batched_nn_f64`].
pub fn batched_nn_f32(
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
    a_stacked: &[f32],
    b: &[f32],
    c_stacked: &mut [f32],
) -> KernelKind {
    auto_nn_f32(batch * m, n, k, a_stacked, b, c_stacked)
}

/// Batched fp16-storage / fp32-accumulate `C = A·B`: `batch` stacked calls of
/// shape `m×n×k` sharing `B`. There is no blocked f16 kernel, so this always
/// runs the sve-gemm form; the same row-independence argument applies.
pub fn batched_nn_f16(
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
    a_stacked: &[crate::f16::F16],
    b: &[crate::f16::F16],
    c_stacked: &mut [f32],
) -> KernelKind {
    simd::gemm_nn_f16(batch * m, n, k, a_stacked, b, c_stacked);
    KernelKind::Sve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f16::F16;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn rand_vec(rng: &mut StdRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
    }

    /// Every f64 kernel must agree with the naive reference to tight tolerance.
    #[test]
    fn all_f64_kernels_agree() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, n, k) in &[(1, 240, 240), (2, 8, 16), (3, 240, 240), (5, 7, 9), (17, 33, 12), (64, 64, 64)] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            let mut c_sve = vec![0.0; m * n];
            naive::gemm_nn_f64(m, n, k, &a, &b, &mut c_ref);
            blocked::gemm_nn_f64(m, n, k, &a, &b, &mut c_blk);
            simd::gemm_nn_f64(m, n, k, &a, &b, &mut c_sve);
            for i in 0..m * n {
                assert!((c_ref[i] - c_blk[i]).abs() < 1e-12, "blocked {m}x{n}x{k} idx {i}");
                assert!((c_ref[i] - c_sve[i]).abs() < 1e-12, "sve {m}x{n}x{k} idx {i}");
            }
        }
    }

    #[test]
    fn nt_matches_nn_on_transposed_input() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, n, k) = (3, 24, 16);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n); // k x n
        // bt is n x k so that bt^T == b.
        let mut bt = vec![0.0; n * k];
        for r in 0..k {
            for c in 0..n {
                bt[c * k + r] = b[r * n + c];
            }
        }
        let mut c_nn = vec![0.0; m * n];
        let mut c_nt = vec![0.0; m * n];
        naive::gemm_nn_f64(m, n, k, &a, &b, &mut c_nn);
        naive::gemm_nt_f64(m, n, k, &a, &bt, &mut c_nt);
        for i in 0..m * n {
            assert!((c_nn[i] - c_nt[i]).abs() < 1e-12);
        }
        let mut c_nt_sve = vec![0.0; m * n];
        simd::gemm_nt_f64(m, n, k, &a, &bt, &mut c_nt_sve);
        for i in 0..m * n {
            assert!((c_nn[i] - c_nt_sve[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn fp16_kernel_matches_f32_within_half_precision() {
        let mut rng = StdRng::seed_from_u64(9);
        let (m, n, k) = (2, 240, 240);
        let a32: Vec<f32> = (0..m * k).map(|_| rng.random_range(-0.5..0.5)).collect();
        let b32: Vec<f32> = (0..k * n).map(|_| rng.random_range(-0.5..0.5)).collect();
        let a16: Vec<F16> = a32.iter().map(|&x| F16::from_f32(x)).collect();
        let b16: Vec<F16> = b32.iter().map(|&x| F16::from_f32(x)).collect();
        let mut c32 = vec![0.0f32; m * n];
        let mut c16 = vec![0.0f32; m * n];
        simd::gemm_nn_f32(m, n, k, &a32, &b32, &mut c32);
        simd::gemm_nn_f16(m, n, k, &a16, &b16, &mut c16);
        // Inputs rounded to f16 but accumulation in f32: error is bounded by
        // ~k * eps_f16 * |a||b| in the worst case; statistically far smaller.
        let mut max_err = 0.0f32;
        for i in 0..m * n {
            max_err = max_err.max((c32[i] - c16[i]).abs());
        }
        assert!(max_err < 0.05, "fp16 storage error too large: {max_err}");
        assert!(max_err > 0.0, "fp16 path must differ from f32 path");
    }

    #[test]
    fn dispatch_follows_m_threshold() {
        let a = vec![0.0f32; 3 * 4];
        let b = vec![0.0f32; 4 * 5];
        let mut c = vec![0.0f32; 3 * 5];
        assert_eq!(auto_nn_f32(3, 5, 4, &a, &b, &mut c), KernelKind::Sve);
        let a = vec![0.0f32; 4 * 4];
        let mut c = vec![0.0f32; 4 * 5];
        assert_eq!(auto_nn_f32(4, 5, 4, &a, &b, &mut c), KernelKind::Blocked);
    }

    #[test]
    fn flops_counts() {
        assert_eq!(flops(2, 240, 240), 2 * 2 * 240 * 240);
    }

    /// The batched entry points are only correct because every NN kernel
    /// produces bit-identical output rows regardless of M and of which kernel
    /// family runs. Enforce that exactly (==, not tolerance).
    #[test]
    fn stacked_rows_are_bitwise_kernel_invariant() {
        let mut rng = StdRng::seed_from_u64(41);
        for &(m, n, k) in &[(1, 8, 16), (3, 240, 240), (5, 7, 9), (17, 33, 12)] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            let mut c_sve = vec![0.0; m * n];
            naive::gemm_nn_f64(m, n, k, &a, &b, &mut c_ref);
            blocked::gemm_nn_f64(m, n, k, &a, &b, &mut c_blk);
            simd::gemm_nn_f64(m, n, k, &a, &b, &mut c_sve);
            assert_eq!(c_ref, c_blk, "blocked f64 {m}x{n}x{k} not bitwise");
            assert_eq!(c_ref, c_sve, "sve f64 {m}x{n}x{k} not bitwise");

            let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
            let mut c32_ref = vec![0.0f32; m * n];
            let mut c32_blk = vec![0.0f32; m * n];
            let mut c32_sve = vec![0.0f32; m * n];
            naive::gemm_nn_f32(m, n, k, &a32, &b32, &mut c32_ref);
            blocked::gemm_nn_f32(m, n, k, &a32, &b32, &mut c32_blk);
            simd::gemm_nn_f32(m, n, k, &a32, &b32, &mut c32_sve);
            assert_eq!(c32_ref, c32_blk, "blocked f32 {m}x{n}x{k} not bitwise");
            assert_eq!(c32_ref, c32_sve, "sve f32 {m}x{n}x{k} not bitwise");
        }
    }

    /// Batched == concatenation of per-call auto results, bit for bit, across
    /// batch sizes that land on both sides of the dispatch threshold.
    #[test]
    fn batched_equals_per_call_bitwise() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, n, k) in &[(1, 16, 8), (2, 25, 10), (3, 240, 240)] {
            for &batch in &[1usize, 2, 3, 8] {
                let b = rand_vec(&mut rng, k * n);
                let a_stacked = rand_vec(&mut rng, batch * m * k);
                let mut c_batched = vec![0.0; batch * m * n];
                batched_nn_f64(batch, m, n, k, &a_stacked, &b, &mut c_batched);
                let mut c_solo = vec![0.0; batch * m * n];
                for s in 0..batch {
                    auto_nn_f64(m, n, k, &a_stacked[s * m * k..(s + 1) * m * k], &b, &mut c_solo[s * m * n..(s + 1) * m * n]);
                }
                assert_eq!(c_batched, c_solo, "f64 batch={batch} {m}x{n}x{k}");

                let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
                let a32: Vec<f32> = a_stacked.iter().map(|&x| x as f32).collect();
                let mut c32_batched = vec![0.0f32; batch * m * n];
                batched_nn_f32(batch, m, n, k, &a32, &b32, &mut c32_batched);
                let mut c32_solo = vec![0.0f32; batch * m * n];
                for s in 0..batch {
                    auto_nn_f32(m, n, k, &a32[s * m * k..(s + 1) * m * k], &b32, &mut c32_solo[s * m * n..(s + 1) * m * n]);
                }
                assert_eq!(c32_batched, c32_solo, "f32 batch={batch} {m}x{n}x{k}");

                let a16: Vec<F16> = a32.iter().map(|&x| F16::from_f32(x)).collect();
                let b16: Vec<F16> = b32.iter().map(|&x| F16::from_f32(x)).collect();
                let mut c16_batched = vec![0.0f32; batch * m * n];
                batched_nn_f16(batch, m, n, k, &a16, &b16, &mut c16_batched);
                let mut c16_solo = vec![0.0f32; batch * m * n];
                for s in 0..batch {
                    simd::gemm_nn_f16(m, n, k, &a16[s * m * k..(s + 1) * m * k], &b16, &mut c16_solo[s * m * n..(s + 1) * m * n]);
                }
                assert_eq!(c16_batched, c16_solo, "f16 batch={batch} {m}x{n}x{k}");
            }
        }
    }
}
