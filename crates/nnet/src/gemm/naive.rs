//! Textbook triple-loop GEMM — the reference semantics.
//!
//! Deliberately unoptimized: every other kernel in [`crate::gemm`] is tested
//! against these, and the micro-benchmarks use them as the floor.

macro_rules! naive_nn {
    ($name:ident, $t:ty) => {
        /// `C = A·B` with `A: m×k`, `B: k×n`, `C: m×n`, all row-major.
        ///
        /// # Panics
        /// If any slice is shorter than its shape requires.
        pub fn $name(m: usize, n: usize, k: usize, a: &[$t], b: &[$t], c: &mut [$t]) {
            assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc: $t = 0.0;
                    for p in 0..k {
                        acc += a[i * k + p] * b[p * n + j];
                    }
                    c[i * n + j] = acc;
                }
            }
        }
    };
}

macro_rules! naive_nt {
    ($name:ident, $t:ty) => {
        /// `C = A·Bᵀ` with `A: m×k`, `B: n×k` (so `Bᵀ: k×n`), `C: m×n`.
        ///
        /// # Panics
        /// If any slice is shorter than its shape requires.
        pub fn $name(m: usize, n: usize, k: usize, a: &[$t], b: &[$t], c: &mut [$t]) {
            assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc: $t = 0.0;
                    for p in 0..k {
                        acc += a[i * k + p] * b[j * k + p];
                    }
                    c[i * n + j] = acc;
                }
            }
        }
    };
}

naive_nn!(gemm_nn_f64, f64);
naive_nn!(gemm_nn_f32, f32);
naive_nt!(gemm_nt_f64, f64);
naive_nt!(gemm_nt_f32, f32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_checked_2x2() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0f64; 4];
        gemm_nn_f64(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_noop() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [2.5f32, -1.0, 0.5, 3.0];
        let mut c = [0.0f32; 4];
        gemm_nn_f32(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn nt_hand_checked() {
        // A = [1 2], B (2x2 rows are B's rows, we compute A·Bᵀ)
        let a = [1.0, 2.0];
        let b = [3.0, 4.0, 5.0, 6.0]; // rows: [3,4], [5,6]
        let mut c = [0.0f64; 2];
        gemm_nt_f64(1, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [11.0, 17.0]); // [1*3+2*4, 1*5+2*6]
    }

    #[test]
    #[should_panic]
    fn short_buffer_panics() {
        let a = [0.0f64; 3];
        let b = [0.0f64; 4];
        let mut c = [0.0f64; 4];
        gemm_nn_f64(2, 2, 2, &a, &b, &mut c);
    }
}
