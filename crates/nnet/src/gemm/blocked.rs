//! Cache-blocked GEMM — the "vendor BLAS" stand-in.
//!
//! The original DeePMD-kit calls Fugaku BLAS (or OpenBLAS under the
//! threadpool build) for every fitting-net GEMM. We stand in for those
//! libraries with a classic three-level blocked kernel using the i-k-j loop
//! order, which streams rows of `B` and keeps a block of `C` hot — good
//! throughput at square-ish sizes, but it pays full blocking overhead when
//! `m` is 1–3, which is precisely the regime where the paper's sve-gemm
//! wins. Reproducing that crossover is the point of keeping both kernels.

/// Block edge for the k dimension (sized so an f64 block of B fits in L1).
const KC: usize = 256;
/// Block edge for the n dimension.
const NC: usize = 512;

macro_rules! blocked_nn {
    ($name:ident, $t:ty, $mr:expr, $lanes:expr) => {
        /// `C = A·B` with `A: m×k`, `B: k×n`, `C: m×n`, row-major, blocked
        /// over (k, n) with an i-k-j inner order and an `MR`-row microkernel.
        ///
        /// # Output contract
        /// `C[..m*n]` is **overwritten**: whatever the buffer held on entry is
        /// discarded (this kernel zero-fills, then accumulates block
        /// contributions). All GEMM families in [`crate::gemm`] share this
        /// contract — callers may pass an uninitialized or reused scratch
        /// buffer without clearing it first. `β ≠ 0` (BLAS-style `C += A·B`)
        /// is deliberately not offered.
        ///
        /// Every output element still accumulates in globally ascending `p`
        /// order with one rounding per add (the microkernel's local
        /// accumulators are exact copies in and out), so results are bitwise
        /// identical to the naive kernel at every shape — see the
        /// kernel-invariance tests in [`crate::gemm`].
        ///
        /// The microkernel streams each row of `B` against `MR` rows of `C`
        /// at once (cutting `B` traffic `MR`-fold versus the row-at-a-time
        /// loop — what makes a tall stacked batched GEMM beat per-row GEMV
        /// calls), and walks the accumulator row in fixed `LANES`-wide
        /// chunks through array references so LLVM emits straight-line
        /// vector code instead of a zipped-iterator chain.
        ///
        /// # Panics
        /// If any slice is shorter than its shape requires.
        pub fn $name(m: usize, n: usize, k: usize, a: &[$t], b: &[$t], c: &mut [$t]) {
            const MR: usize = $mr;
            const L: usize = $lanes;
            assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
            c[..m * n].fill(0.0);
            let mut acc = [[0.0 as $t; NC]; MR];
            let mut p0 = 0;
            while p0 < k {
                let pb = KC.min(k - p0);
                let mut j0 = 0;
                while j0 < n {
                    let jb = NC.min(n - j0);
                    let mut i = 0;
                    while i + MR <= m {
                        for (r, accr) in acc.iter_mut().enumerate() {
                            accr[..jb]
                                .copy_from_slice(&c[(i + r) * n + j0..(i + r) * n + j0 + jb]);
                        }
                        for dp in 0..pb {
                            let brow = &b[(p0 + dp) * n + j0..(p0 + dp) * n + j0 + jb];
                            let mut av = [0.0 as $t; MR];
                            for (r, v) in av.iter_mut().enumerate() {
                                *v = a[(i + r) * k + p0 + dp];
                            }
                            // Main vector body: exact chunks of L lanes.
                            let chunks = jb / L;
                            for ch in 0..chunks {
                                let base = ch * L;
                                let bb: &[$t; L] =
                                    (&brow[base..base + L]).try_into().unwrap();
                                for (r, accr) in acc.iter_mut().enumerate() {
                                    let cc: &mut [$t; L] =
                                        (&mut accr[base..base + L]).try_into().unwrap();
                                    for l in 0..L {
                                        cc[l] += av[r] * bb[l];
                                    }
                                }
                            }
                            // Predicated tail (jb % L columns).
                            for j in chunks * L..jb {
                                for (r, accr) in acc.iter_mut().enumerate() {
                                    accr[j] += av[r] * brow[j];
                                }
                            }
                        }
                        for (r, accr) in acc.iter().enumerate() {
                            c[(i + r) * n + j0..(i + r) * n + j0 + jb]
                                .copy_from_slice(&accr[..jb]);
                        }
                        i += MR;
                    }
                    // Remainder rows (m % MR), row at a time.
                    while i < m {
                        let arow = &a[i * k + p0..i * k + p0 + pb];
                        let crow = &mut c[i * n + j0..i * n + j0 + jb];
                        for (dp, &av) in arow.iter().enumerate() {
                            let brow = &b[(p0 + dp) * n + j0..(p0 + dp) * n + j0 + jb];
                            for (cv, &bv) in crow.iter_mut().zip(brow) {
                                *cv += av * bv;
                            }
                        }
                        i += 1;
                    }
                    j0 += jb;
                }
                p0 += pb;
            }
        }
    };
}

macro_rules! blocked_nt {
    ($name:ident, $t:ty) => {
        /// `C = A·Bᵀ` with `A: m×k`, `B: n×k`, `C: m×n`, blocked over k.
        ///
        /// NT form: each output element is a dot product over contiguous rows
        /// of both `A` and `B`; good locality but no row-level reuse of `C`,
        /// which is why BLAS NT lags NN at small sizes (§III-B2).
        ///
        /// # Output contract
        /// `C[..m*n]` is **overwritten**: every element is assigned exactly
        /// once, so entry contents never leak into the result. Same contract
        /// as the NN kernels — scratch buffers need no pre-clearing.
        ///
        /// # Panics
        /// If any slice is shorter than its shape requires.
        pub fn $name(m: usize, n: usize, k: usize, a: &[$t], b: &[$t], c: &mut [$t]) {
            assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc: $t = 0.0;
                    for (&av, &bv) in arow.iter().zip(brow) {
                        acc += av * bv;
                    }
                    c[i * n + j] = acc;
                }
            }
        }
    };
}

// Microkernel shapes: 8 C rows × 16 f32 lanes fills the vector register
// file on a 512-bit target without spilling (measured ~1.3× over the old
// 4-row zipped-iterator kernel at fitting-net shapes); f64 halves the lane
// width and row count to keep the accumulator block the same byte size.
blocked_nn!(gemm_nn_f64, f64, 4, 8);
blocked_nn!(gemm_nn_f32, f32, 8, 16);
blocked_nt!(gemm_nt_f64, f64);
blocked_nt!(gemm_nt_f32, f32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive;

    #[test]
    fn blocked_handles_non_multiple_blocks() {
        // Sizes straddling the block edges exercise the remainder handling.
        for &(m, n, k) in &[(4, NC + 3, KC + 5), (1, 2 * NC, 2 * KC + 1), (7, 13, 300)] {
            let a: Vec<f64> = (0..m * k).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
            let b: Vec<f64> = (0..k * n).map(|i| ((i * 53) % 7) as f64 - 3.0).collect();
            let mut c_ref = vec![0.0; m * n];
            let mut c_blk = vec![0.0; m * n];
            naive::gemm_nn_f64(m, n, k, &a, &b, &mut c_ref);
            gemm_nn_f64(m, n, k, &a, &b, &mut c_blk);
            for i in 0..m * n {
                assert!((c_ref[i] - c_blk[i]).abs() < 1e-9, "mismatch at {i} for {m}x{n}x{k}");
            }
        }
    }

    #[test]
    fn nt_agrees_with_naive() {
        let (m, n, k) = (3, 17, 29);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32).cos()).collect();
        let mut c_ref = vec![0.0; m * n];
        let mut c_blk = vec![0.0; m * n];
        naive::gemm_nt_f32(m, n, k, &a, &b, &mut c_ref);
        gemm_nt_f32(m, n, k, &a, &b, &mut c_blk);
        for i in 0..m * n {
            assert!((c_ref[i] - c_blk[i]).abs() < 1e-4);
        }
    }
}
