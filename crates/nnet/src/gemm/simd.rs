//! The **sve-gemm** tall-and-skinny kernel (§III-B2).
//!
//! In the strong-scaling limit each core evaluates one or two atoms, so the
//! fitting-net GEMMs have `m ∈ {1, 2, 3}` against 240-wide parameter
//! matrices. Generic BLAS wastes its blocking machinery there. The paper's
//! kernel broadcasts each element `A[i][p]` against row `p` of `B` and fuses
//! the products into the output row with SVE `svmla` — one streaming pass
//! over `B`, the whole `C` row living in vector registers.
//!
//! This module reproduces that formulation in portable Rust. The inner loop
//! is written over fixed-width 8-lane chunks (512 bits of f32, mirroring one
//! SVE-512 vector) so LLVM reliably auto-vectorizes it; on x86-64 it compiles
//! to FMA over YMM/ZMM, preserving the kernel's shape and its relative
//! advantage at small `m`.

use crate::f16::F16;

/// Vector lanes of one simulated SVE-512 register holding f32.
pub const LANES_F32: usize = 16;
/// Vector lanes of one simulated SVE-512 register holding f64.
pub const LANES_F64: usize = 8;

macro_rules! sve_nn {
    ($name:ident, $t:ty, $lanes:expr) => {
        /// `C = A·B` via broadcast-row multiply-accumulate (`svmla` shape).
        ///
        /// Optimal for `m ≤ 3`; correct for any `m`.
        ///
        /// # Panics
        /// If any slice is shorter than its shape requires.
        pub fn $name(m: usize, n: usize, k: usize, a: &[$t], b: &[$t], c: &mut [$t]) {
            assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
            const L: usize = $lanes;
            for i in 0..m {
                let crow = &mut c[i * n..(i + 1) * n];
                crow.fill(0.0);
                for p in 0..k {
                    let av = a[i * k + p];
                    let brow = &b[p * n..(p + 1) * n];
                    // Main vector body: exact chunks of one register width.
                    let chunks = n / L;
                    for ch in 0..chunks {
                        let base = ch * L;
                        // Fixed-size sub-slices let LLVM emit straight-line FMA.
                        let cc: &mut [$t; L] =
                            (&mut crow[base..base + L]).try_into().unwrap();
                        let bb: &[$t; L] = (&brow[base..base + L]).try_into().unwrap();
                        for l in 0..L {
                            cc[l] += av * bb[l];
                        }
                    }
                    // Predicated tail (the SVE whilelt remainder).
                    for j in chunks * L..n {
                        crow[j] += av * brow[j];
                    }
                }
            }
        }
    };
}

macro_rules! sve_nt {
    ($name:ident, $t:ty, $lanes:expr) => {
        /// `C = A·Bᵀ` with `B: n×k` — per-element dot products.
        ///
        /// Kept for the ablation: the paper measures NT at roughly half the
        /// NN rate for small matrices because each output element reduces a
        /// separate dot product instead of fusing into a resident `C` row,
        /// and then converts all NT calls to NN by pre-transposing the
        /// parameters at startup.
        ///
        /// # Panics
        /// If any slice is shorter than its shape requires.
        pub fn $name(m: usize, n: usize, k: usize, a: &[$t], b: &[$t], c: &mut [$t]) {
            assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
            const L: usize = $lanes;
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &b[j * k..(j + 1) * k];
                    let chunks = k / L;
                    let mut lanes = [0.0 as $t; L];
                    for ch in 0..chunks {
                        let base = ch * L;
                        let aa: &[$t; L] = (&arow[base..base + L]).try_into().unwrap();
                        let bb: &[$t; L] = (&brow[base..base + L]).try_into().unwrap();
                        for l in 0..L {
                            lanes[l] += aa[l] * bb[l];
                        }
                    }
                    let mut acc: $t = lanes.iter().sum();
                    for p in chunks * L..k {
                        acc += arow[p] * brow[p];
                    }
                    c[i * n + j] = acc;
                }
            }
        }
    };
}

sve_nn!(gemm_nn_f64, f64, LANES_F64);
sve_nn!(gemm_nn_f32, f32, LANES_F32);
sve_nt!(gemm_nt_f64, f64, LANES_F64);
sve_nt!(gemm_nt_f32, f32, LANES_F32);

/// `C = A·B` with `A`, `B` stored in binary16 and accumulation in f32 — the
/// fp16-sve-gemm of the `MIX-fp16` precision path.
///
/// Numerically this is exactly what an fp16 tensor unit with an f32
/// accumulator computes: inputs carry f16 rounding error, products and sums
/// are f32. The widening loads stand in for SVE's `fcvt` on load.
///
/// # Panics
/// If any slice is shorter than its shape requires.
pub fn gemm_nn_f16(m: usize, n: usize, k: usize, a: &[F16], b: &[F16], c: &mut [f32]) {
    assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    const L: usize = LANES_F32;
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        crow.fill(0.0);
        for p in 0..k {
            let av = a[i * k + p].to_f32();
            let brow = &b[p * n..(p + 1) * n];
            let chunks = n / L;
            for ch in 0..chunks {
                let base = ch * L;
                let cc: &mut [f32; L] = (&mut crow[base..base + L]).try_into().unwrap();
                let bb: &[F16; L] = (&brow[base..base + L]).try_into().unwrap();
                for l in 0..L {
                    cc[l] += av * bb[l].to_f32();
                }
            }
            for j in chunks * L..n {
                crow[j] += av * brow[j].to_f32();
            }
        }
    }
}

/// `C = A·Bᵀ` in fp16 storage with f32 accumulation (`B: n×k`).
///
/// # Panics
/// If any slice is shorter than its shape requires.
pub fn gemm_nt_f16(m: usize, n: usize, k: usize, a: &[F16], b: &[F16], c: &mut [f32]) {
    assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p].to_f32() * b[j * k + p].to_f32();
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive;

    #[test]
    fn tall_skinny_shapes_match_reference() {
        // The exact shapes of the strong-scaling fitting net: m in 1..=3,
        // 240-wide layers, plus awkward tails that exercise the remainder.
        for &(m, n, k) in &[(1, 240, 240), (2, 240, 240), (3, 240, 240), (1, 241, 239), (3, 7, 5)] {
            let a: Vec<f32> = (0..m * k).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i % 17) as f32 - 8.0) * 0.05).collect();
            let mut c_ref = vec![0.0; m * n];
            let mut c_sve = vec![0.0; m * n];
            naive::gemm_nn_f32(m, n, k, &a, &b, &mut c_ref);
            gemm_nn_f32(m, n, k, &a, &b, &mut c_sve);
            for i in 0..m * n {
                assert!((c_ref[i] - c_sve[i]).abs() < 1e-3, "{m}x{n}x{k} at {i}");
            }
        }
    }

    #[test]
    fn fp16_zero_inputs_give_zero() {
        let a = vec![F16::ZERO; 2 * 4];
        let b = vec![F16::ZERO; 4 * 6];
        let mut c = vec![1.0f32; 2 * 6];
        gemm_nn_f16(2, 6, 4, &a, &b, &mut c);
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn fp16_exact_on_small_integers() {
        // Small integers are exact in f16, so the kernel must be exact too.
        let a: Vec<F16> = [1.0f32, 2.0, 3.0, 4.0].iter().map(|&x| F16::from_f32(x)).collect();
        let b: Vec<F16> = [5.0f32, 6.0, 7.0, 8.0].iter().map(|&x| F16::from_f32(x)).collect();
        let mut c = vec![0.0f32; 4];
        gemm_nn_f16(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
        let mut cnt = vec![0.0f32; 4];
        // B as 2x2 rows [[5,6],[7,8]] -> A·Bᵀ = [[17,23],[39,53]]
        gemm_nt_f16(2, 2, 2, &a, &b, &mut cnt);
        assert_eq!(cnt, [17.0, 23.0, 39.0, 53.0]);
    }
}
