//! Runtime kernel dispatch for the f32 inference hot path.
//!
//! The engine's GEMMs run on one of the [`DispatchClass`]es defined by
//! `dpmd-simd`:
//!
//! * **Scalar** — the portable kernels of this module tree ([`ScalarKernel`]
//!   routes `m ≤ 3` to the auto-vectorized sve form and larger panels to the
//!   cache-blocked kernel; the two agree bit for bit with `naive`).
//! * **Avx2 / Neon** — the explicit-intrinsics microkernels in `dpmd-simd`,
//!   using fused multiply-add (one rounding per accumulate instead of two).
//!
//! Selection happens **once per process**: the native kernel if the CPU has
//! one, unless [`FORCE_SCALAR_ENV`] pins the scalar class (how CI proves the
//! fold-order equivalence of the portable kernels on SIMD machines, and how
//! a trajectory recorded on the scalar class can be reproduced anywhere).
//! Determinism is bitwise *within* a class — every machine selecting a class
//! computes identical results, and solo-vs-batched equality holds in every
//! class because all kernels are row-independent — but the classes are not
//! bitwise-interchangeable with each other (FMA removes a rounding).
//!
//! The f64 `auto_nn_f64` path deliberately stays on the scalar class: it
//! backs the reference/training executors whose contract is bitwise equality
//! with the naive graph interpreter across all machines. The native f64
//! kernels are still exposed (via [`active`]/[`native`]) for benches and
//! property tests.

use std::sync::OnceLock;

pub use dpmd_simd::{native, native_class, DispatchClass, Kernel};

use super::{blocked, simd, SVE_GEMM_M_THRESHOLD};

/// Environment variable that pins dispatch to the scalar class for the whole
/// process (any non-empty value other than `0`).
pub const FORCE_SCALAR_ENV: &str = "DPMD_FORCE_SCALAR";

/// The portable scalar-class kernel: the paper's dispatch rule over the
/// auto-vectorized sve kernel (`m ≤ 3`) and the cache-blocked kernel, both
/// bitwise-identical to `naive` at every shape.
pub struct ScalarKernel;

impl Kernel for ScalarKernel {
    fn class(&self) -> DispatchClass {
        DispatchClass::Scalar
    }

    fn nn_f32(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        if m <= SVE_GEMM_M_THRESHOLD {
            simd::gemm_nn_f32(m, n, k, a, b, c);
        } else {
            blocked::gemm_nn_f32(m, n, k, a, b, c);
        }
    }

    fn nn_f64(&self, m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        if m <= SVE_GEMM_M_THRESHOLD {
            simd::gemm_nn_f64(m, n, k, a, b, c);
        } else {
            blocked::gemm_nn_f64(m, n, k, a, b, c);
        }
    }
}

/// The shared scalar-class kernel instance.
pub fn scalar() -> &'static dyn Kernel {
    static SCALAR: ScalarKernel = ScalarKernel;
    &SCALAR
}

fn force_scalar() -> bool {
    match std::env::var(FORCE_SCALAR_ENV) {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    }
}

/// The kernel the f32 hot path runs on, selected once per process:
/// the native SIMD kernel when present, the scalar class otherwise or when
/// [`FORCE_SCALAR_ENV`] is set.
pub fn active() -> &'static dyn Kernel {
    static ACTIVE: OnceLock<&'static dyn Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if force_scalar() {
            scalar()
        } else {
            native().unwrap_or_else(|| scalar())
        }
    })
}

/// The [`DispatchClass`] of the active kernel (for CLI banners and metrics).
pub fn active_class() -> DispatchClass {
    active().class()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive;

    /// The scalar kernel must preserve the legacy dispatch semantics exactly:
    /// bitwise equal to naive on both sides of the m-threshold.
    #[test]
    fn scalar_kernel_is_bitwise_naive() {
        let kernel = scalar();
        assert_eq!(kernel.class(), DispatchClass::Scalar);
        for &(m, n, k) in &[(1usize, 17, 9), (3, 240, 240), (4, 16, 8), (33, 21, 12)] {
            let a32: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
            let b32: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
            let mut want = vec![0.0f32; m * n];
            let mut got = vec![0.0f32; m * n];
            naive::gemm_nn_f32(m, n, k, &a32, &b32, &mut want);
            kernel.nn_f32(m, n, k, &a32, &b32, &mut got);
            assert_eq!(want, got, "f32 {m}x{n}x{k}");

            let a64: Vec<f64> = a32.iter().map(|&x| x as f64).collect();
            let b64: Vec<f64> = b32.iter().map(|&x| x as f64).collect();
            let mut want64 = vec![0.0f64; m * n];
            let mut got64 = vec![0.0f64; m * n];
            naive::gemm_nn_f64(m, n, k, &a64, &b64, &mut want64);
            kernel.nn_f64(m, n, k, &a64, &b64, &mut got64);
            assert_eq!(want64, got64, "f64 {m}x{n}x{k}");
        }
    }

    /// `active()` is stable within a process and its class matches what the
    /// machine/environment implies.
    #[test]
    fn active_is_stable_and_classified() {
        let a = active();
        let b = active();
        assert_eq!(a.class(), b.class());
        assert_eq!(a.class(), active_class());
        if force_scalar() {
            assert_eq!(a.class(), DispatchClass::Scalar);
        }
    }
}
