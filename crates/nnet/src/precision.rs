//! Precision modes of the optimized DeePMD-kit (§III-B3, Table II).
//!
//! * `Double` — everything in f64 (the baseline).
//! * `Mix32` — embedding-net and fitting-net arithmetic in f32; descriptor
//!   assembly and force reduction stay f64.
//! * `Mix16` — like `Mix32`, but the fitting-net GEMMs run on fp16-stored
//!   operands with f32 accumulation (the fp16-sve-gemm).

use serde::{Deserialize, Serialize};

use crate::f16::F16;

/// The three precision configurations evaluated in the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// Full double precision.
    #[default]
    Double,
    /// Mixed single precision ("MIX-fp32").
    Mix32,
    /// Mixed half precision ("MIX-fp16").
    Mix16,
}

impl Precision {
    /// All modes, in the order Table II lists them.
    pub const ALL: [Precision; 3] = [Precision::Double, Precision::Mix32, Precision::Mix16];

    /// Human-readable name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Double => "Double",
            Precision::Mix32 => "MIX-fp32",
            Precision::Mix16 => "MIX-fp16",
        }
    }

    /// Relative GEMM throughput vs f64 on a 512-bit SIMD unit: lanes double
    /// with each halving of the element width.
    pub fn gemm_speedup_vs_f64(self) -> f64 {
        match self {
            Precision::Double => 1.0,
            Precision::Mix32 => 2.0,
            Precision::Mix16 => 4.0,
        }
    }
}

/// Round-trip a value through this precision's *storage* type.
///
/// Used to inject the storage rounding of a precision path into scalars that
/// never touch a matrix (e.g. tabulated coefficients).
pub fn quantize(p: Precision, x: f64) -> f64 {
    match p {
        Precision::Double => x,
        Precision::Mix32 => x as f32 as f64,
        Precision::Mix16 => F16::from_f64(x).to_f64(),
    }
}

/// Cast an f64 slice to f32.
pub fn to_f32_vec(xs: &[f64]) -> Vec<f32> {
    xs.iter().map(|&x| x as f32).collect()
}

/// Cast an f64 slice to software f16.
pub fn to_f16_vec(xs: &[f64]) -> Vec<F16> {
    xs.iter().map(|&x| F16::from_f64(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_is_identity_for_double() {
        let x = 0.123_456_789_012_345_68;
        assert_eq!(quantize(Precision::Double, x), x);
        assert_ne!(quantize(Precision::Mix32, x), x);
        assert_ne!(quantize(Precision::Mix16, x), x);
    }

    #[test]
    fn quantize_error_ordering() {
        // Coarser precision ⇒ larger rounding error, monotonically.
        let x = std::f64::consts::PI;
        let e32 = (quantize(Precision::Mix32, x) - x).abs();
        let e16 = (quantize(Precision::Mix16, x) - x).abs();
        assert!(e16 > e32);
        assert!(e32 > 0.0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Precision::Double.label(), "Double");
        assert_eq!(Precision::Mix32.label(), "MIX-fp32");
        assert_eq!(Precision::Mix16.label(), "MIX-fp16");
    }

    #[test]
    fn simd_speedups_double_per_halving() {
        assert_eq!(Precision::Double.gemm_speedup_vs_f64(), 1.0);
        assert_eq!(Precision::Mix32.gemm_speedup_vs_f64(), 2.0);
        assert_eq!(Precision::Mix16.gemm_speedup_vs_f64(), 4.0);
    }
}
