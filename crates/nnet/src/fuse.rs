//! Graph optimizer: kernel fusion and dead-kernel elimination.
//!
//! Two of the paper's TensorFlow-removal gains are *graph-shape* effects:
//! "we streamline our code by removing unnecessary kernels" and "we perform
//! kernel fusion for all relevant kernels". This pass applies both to the
//! graph runtime so they can be measured in isolation from the framework
//! overhead:
//!
//! * **dense fusion** — the `MatMulNN(x, W) → AddBias(·, b) → Activation`
//!   chain (with parameter operands and single consumers) collapses into
//!   one [`Op::FusedDense`] kernel: one launch, one intermediate, one pass
//!   over the output;
//! * **dead-kernel elimination** — nodes unreachable from the fetch set
//!   (e.g. gradient nodes for inputs nobody asked about, or forward heads
//!   superseded by fusion) are dropped;
//! * **constant folding** — ops whose operands are all `Param`s (the
//!   pre-transposed weights, scaled constants, parameter sums the autodiff
//!   materializes) are evaluated once at optimization time and baked in as
//!   new `Param`s — the paper's "preprocess in the initial phase" moves.
//!
//! The optimizer is semantics-preserving: outputs are bit-identical (the
//! fused kernel performs the same f64 operations in the same order).

use std::collections::HashMap;

use crate::graph::{Graph, NodeId, Op};

/// Result of optimizing a graph for a fetch set.
#[derive(Debug)]
pub struct Optimized {
    /// The rewritten graph.
    pub graph: Graph,
    /// Fetch handles in the new graph, aligned with the input fetches.
    pub fetches: Vec<NodeId>,
    /// Kernels before optimization.
    pub kernels_before: usize,
    /// Kernels after optimization.
    pub kernels_after: usize,
}

/// Optimize `graph` for the given `fetches`.
pub fn optimize(graph: &Graph, fetches: &[NodeId]) -> Optimized {
    let n = graph.len();
    let kernels_before = graph.kernel_count();

    // --- reachability from the fetch set (dead-kernel elimination) ---
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = fetches.iter().map(|f| f.0).collect();
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for dep in graph.operands(NodeId(i)) {
            stack.push(dep.0);
        }
    }

    // --- consumer counts among live nodes (fusion safety) ---
    let mut consumers = vec![0usize; n];
    for (i, &alive) in live.iter().enumerate() {
        if !alive {
            continue;
        }
        for dep in graph.operands(NodeId(i)) {
            consumers[dep.0] += 1;
        }
    }
    for f in fetches {
        consumers[f.0] += 1; // fetched nodes are externally consumed
    }

    // --- rebuild with fusion ---
    let mut out = Graph::new();
    let mut map: HashMap<usize, NodeId> = HashMap::new();
    let remap = |map: &HashMap<usize, NodeId>, id: &NodeId| -> NodeId {
        *map.get(&id.0).expect("operand must already be mapped (topological order)")
    };
    for (i, &alive) in live.iter().enumerate() {
        if !alive {
            continue;
        }
        // Constant folding: any non-Param op whose operands have already
        // folded to Params evaluates now (Transpose/Scale/Add of weights,
        // including chains — each link folds as its operands fold).
        if let Some(folded) = try_fold(graph, i, &out, &map) {
            let id = out.add(Op::Param(folded));
            map.insert(i, id);
            continue;
        }
        // Try the dense-fusion pattern rooted at an Activation node.
        if let Op::Activation(a, act) = graph.op(i) {
            if let Op::AddBias(m, b) = graph.op(a.0) {
                if let Op::MatMulNN(x, w) = graph.op(m.0) {
                    let params_ok = matches!(graph.op(w.0), Op::Param(_))
                        && matches!(graph.op(b.0), Op::Param(_));
                    let single_use = consumers[a.0] == 1 && consumers[m.0] == 1;
                    if params_ok && single_use {
                        let id = out.add(Op::FusedDense(
                            remap(&map, x),
                            remap(&map, w),
                            remap(&map, b),
                            *act,
                        ));
                        map.insert(i, id);
                        continue;
                    }
                }
            }
        }
        // Default: re-emit with remapped operands. The intermediate nodes of
        // a *fused* pattern were never visited as roots, so mark them when
        // their consumer fused them away — handled by liveness: they remain
        // live but unconsumed copies would linger, so emit-on-demand: a node
        // is emitted here only if some retained node references it, which
        // the topological sweep guarantees via `map` lookups below.
        let op = graph.op(i).clone_remapped(&|id| remap(&map, &id));
        let id = out.add(op);
        map.insert(i, id);
    }

    // Second liveness pass over the rebuilt graph to drop fusion leftovers
    // (the AddBias/MatMul bodies that nothing references any more).
    let new_fetches: Vec<NodeId> = fetches.iter().map(|f| remap(&map, f)).collect();
    let (graph, new_fetches) = strip_dead(&out, &new_fetches);
    let kernels_after = graph.kernel_count();
    Optimized { graph, fetches: new_fetches, kernels_before, kernels_after }
}

/// Evaluate node `i` now if all of its operands map to `Param`s in the
/// rebuilt graph (so fold chains propagate). Returns the folded constant.
fn try_fold(
    graph: &Graph,
    i: usize,
    out: &Graph,
    map: &HashMap<usize, NodeId>,
) -> Option<crate::matrix::Matrix<f64>> {
    let op = graph.op(i);
    if matches!(op, Op::Param(_) | Op::Input(_)) {
        return None;
    }
    let operands = op.operand_ids();
    if operands.is_empty() {
        return None;
    }
    let mut values = Vec::with_capacity(operands.len());
    for dep in &operands {
        match out.op(map.get(&dep.0)?.0) {
            Op::Param(m) => values.push(m.clone()),
            _ => return None,
        }
    }
    // Evaluate the single op in a throwaway session: rebuild it over fresh
    // Param nodes (the same original operand may appear twice, e.g.
    // Add(w, w) — the index map handles that).
    let mut g = Graph::new();
    let ids: Vec<_> = values.into_iter().map(|m| g.param(m)).collect();
    let mut idx = std::collections::HashMap::new();
    for (orig, new_id) in operands.iter().zip(&ids) {
        idx.insert(orig.0, *new_id);
    }
    let node = g.add(op.clone_remapped(&|id| idx[&id.0]));
    let mut sess = crate::graph::Session::new(g);
    let (outs, _) = sess.run(&std::collections::HashMap::new(), &[node]);
    Some(outs.into_iter().next().expect("one fetch"))
}

/// Drop nodes unreachable from `fetches`, compacting ids.
fn strip_dead(graph: &Graph, fetches: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let n = graph.len();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = fetches.iter().map(|f| f.0).collect();
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for dep in graph.operands(NodeId(i)) {
            stack.push(dep.0);
        }
    }
    let mut out = Graph::new();
    let mut map: HashMap<usize, NodeId> = HashMap::new();
    for (i, &alive) in live.iter().enumerate() {
        if !alive {
            continue;
        }
        let op = graph.op(i).clone_remapped(&|id| map[&id.0]);
        let new_id = out.add(op);
        map.insert(i, new_id);
    }
    (out, fetches.iter().map(|f| map[&f.0]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::graph::Session;
    use crate::init::build_mlp;
    use crate::layers::Resnet;
    use crate::matrix::Matrix;
    use std::collections::HashMap as Feeds;

    fn mlp_graph(layers: usize) -> (Graph, NodeId) {
        let mut mlp = build_mlp(4, &vec![8; layers], 1, Activation::Tanh, 77);
        for l in &mut mlp.layers {
            l.resnet = Resnet::None;
        }
        let mut g = Graph::new();
        let mut cur = g.input("x");
        for layer in &mlp.layers {
            let w = g.param(layer.w.clone());
            let b = g.param(Matrix::from_vec(1, layer.b.len(), layer.b.clone()));
            let mm = g.add(Op::MatMulNN(cur, w));
            let ab = g.add(Op::AddBias(mm, b));
            cur = g.add(Op::Activation(ab, layer.act));
        }
        (g, cur)
    }

    #[test]
    fn fusion_preserves_outputs_bitwise_and_cuts_kernels_by_3x() {
        let (g, out) = mlp_graph(3);
        let x = Matrix::from_fn(2, 4, |r, c| 0.1 * (r as f64 + 1.0) * (c as f64 - 1.5));
        let feeds: Feeds<String, Matrix<f64>> = [("x".to_string(), x)].into();

        let mut plain = Session::new(g.clone());
        let (ref_out, ref_stats) = plain.run(&feeds, &[out]);

        let opt = optimize(&g, &[out]);
        assert_eq!(opt.kernels_before, 12, "4 layers × 3 kernels");
        assert_eq!(opt.kernels_after, 4, "one fused kernel per layer");
        let mut fused = Session::new(opt.graph);
        let (fused_out, fused_stats) = fused.run(&feeds, &opt.fetches);
        assert_eq!(ref_out[0], fused_out[0], "bit-identical outputs");
        assert!(fused_stats.kernels_launched < ref_stats.kernels_launched);
        assert!(fused_stats.tensors_allocated < ref_stats.tensors_allocated);
    }

    #[test]
    fn dead_gradient_kernels_are_eliminated() {
        // Build forward + gradients for TWO inputs, then fetch only the
        // energy and ONE gradient: the other gradient's kernels must go.
        let mut g = Graph::new();
        let x = g.input("x");
        let y = g.input("y");
        let w = g.param(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mx = g.add(Op::MatMulNN(x, w));
        let my = g.add(Op::MatMulNN(y, w));
        let sum = g.add(Op::Add(mx, my));
        let loss = g.add(Op::SumAll(sum));
        let grads = g.gradients(loss, &[x, y]);
        let full_kernels = g.kernel_count();

        let opt = optimize(&g, &[loss, grads[0]]);
        assert!(opt.kernels_after < full_kernels, "{} vs {full_kernels}", opt.kernels_after);

        // And it still computes the right values.
        let feeds: Feeds<String, Matrix<f64>> = [
            ("x".to_string(), Matrix::from_vec(1, 2, vec![1.0, 2.0])),
            ("y".to_string(), Matrix::from_vec(1, 2, vec![-1.0, 0.5])),
        ]
        .into();
        let mut ref_sess = Session::new(g.clone());
        let (ref_vals, _) = ref_sess.run(&feeds, &[loss, grads[0]]);
        let mut opt_sess = Session::new(opt.graph);
        let (opt_vals, _) = opt_sess.run(&feeds, &opt.fetches);
        assert_eq!(ref_vals[0], opt_vals[0]);
        assert_eq!(ref_vals[1], opt_vals[1]);
    }


    #[test]
    fn parameter_expressions_fold_to_constants() {
        // The paper preprocesses the transposed weights at startup; after
        // autodiff, Transpose(Param)/Scale(Param) nodes appear — folding
        // turns them into plain Params, removing their per-run kernels.
        let mut g = Graph::new();
        let x = g.input("x");
        let w = g.param(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let wt = g.add(Op::Transpose(w)); // foldable
        let ws = g.add(Op::Scale(wt, 0.5)); // foldable (operand folds first)
        let mm = g.add(Op::MatMulNN(x, ws));
        let opt = optimize(&g, &[mm]);
        // Only the data-dependent MatMul survives as a kernel.
        assert_eq!(opt.kernels_after, 1, "before {}", opt.kernels_before);
        let feeds: Feeds<String, Matrix<f64>> =
            [("x".to_string(), Matrix::from_vec(1, 2, vec![1.0, 1.0]))].into();
        let mut ref_sess = Session::new(g.clone());
        let (a, _) = ref_sess.run(&feeds, &[mm]);
        let mut opt_sess = Session::new(opt.graph);
        let (b, _) = opt_sess.run(&feeds, &opt.fetches);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn shared_intermediates_are_not_fused() {
        // If the MatMul output feeds two consumers, fusing would duplicate
        // work/change semantics — the pass must leave it alone.
        let mut g = Graph::new();
        let x = g.input("x");
        let w = g.param(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let b = g.param(Matrix::from_vec(1, 2, vec![0.5, 0.5]));
        let mm = g.add(Op::MatMulNN(x, w));
        let ab = g.add(Op::AddBias(mm, b));
        let act = g.add(Op::Activation(ab, Activation::Tanh));
        let extra = g.add(Op::SumAll(mm)); // second consumer of mm
        let both = g.add(Op::Add(act, act));
        let opt = optimize(&g, &[both, extra]);
        // No fusion happened (MatMul output is shared) and nothing was
        // dead, so the kernel count is unchanged.
        assert_eq!(opt.kernels_after, opt.kernels_before);
    }
}
