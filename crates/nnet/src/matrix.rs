//! Dense row-major matrices over the scalar types used in the reproduction.
//!
//! DeePMD inference is dominated by small dense GEMMs (the fitting net is a
//! 3-layer 240×240 MLP evaluated on a tall-and-skinny batch of atoms), so a
//! simple contiguous row-major layout is both sufficient and optimal: rows of
//! `B` stream linearly through cache exactly the way the paper's sve-gemm
//! wants them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

use crate::f16::F16;

/// Element types matrices can hold.
///
/// Implemented for `f64`, `f32` and the software [`F16`]. Conversions route
/// through `f64`, which is exact for every value in all three types.
pub trait Scalar: Copy + Default + PartialEq + fmt::Debug + Send + Sync + 'static {
    /// Exact widening (f16/f32) or identity (f64) conversion.
    fn to_f64(self) -> f64;
    /// Rounding conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
}

impl Scalar for f64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
}

impl Scalar for f32 {
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
}

impl Scalar for F16 {
    #[inline]
    fn to_f64(self) -> f64 {
        self.to_f64()
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        F16::from_f64(x)
    }
    #[inline]
    fn zero() -> Self {
        F16::ZERO
    }
    #[inline]
    fn one() -> Self {
        F16::ONE
    }
}

/// A dense row-major matrix.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![T::zero(); rows * cols] }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The backing row-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transposed matrix (fresh allocation).
    ///
    /// The paper preprocesses fitting-net parameter matrices into transposed
    /// form once at startup so every GEMM-NT in the backward pass becomes a
    /// GEMM-NN; this is the primitive that enables that conversion.
    pub fn transpose(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Cast every element to another scalar type, rounding as needed.
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| U::from_f64(x.to_f64())).collect(),
        }
    }

    /// Maximum absolute element-wise difference against another matrix.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x.to_f64() * x.to_f64()).sum::<f64>().sqrt()
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            write!(f, "  ")?;
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                write!(f, "{:?} ", self.data[r * self.cols + c])?;
            }
            if self.cols > show_cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m[(2, 3)], 23.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 5);
        assert_eq!(t[(2, 4)], m[(4, 2)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn cast_f64_f32_f16_chain() {
        let m = Matrix::from_fn(2, 2, |r, c| 1.0 + 0.1 * (r * 2 + c) as f64);
        let m32: Matrix<f32> = m.cast();
        let m16: Matrix<F16> = m.cast();
        assert!(m.max_abs_diff(&m32.cast()) < 1e-7);
        assert!(m.max_abs_diff(&m16.cast()) < 1e-3);
        assert!(m.max_abs_diff(&m16.cast()) > 0.0, "f16 must actually round");
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_length_checked() {
        let _ = Matrix::<f64>::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn frobenius_norm_matches_hand_value() {
        let m = Matrix::from_vec(2, 2, vec![3.0f64, 0.0, 4.0, 0.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
