//! # nnet — neural-network substrate
//!
//! A from-scratch neural-network substrate for the DeePMD reproduction:
//!
//! * [`f16`] — software IEEE 754 binary16 with round-to-nearest-even, the
//!   storage type of the paper's fp16 fitting-net GEMM;
//! * [`matrix`] — a dense row-major matrix over [`Scalar`] element types;
//! * [`gemm`] — GEMM kernels: a naive reference, a cache-blocked "BLAS-like"
//!   kernel, and the paper's tall-and-skinny **sve-gemm** specialization
//!   (M ≤ 3) in NN and NT forms, plus an fp16-storage/fp32-accumulate kernel;
//! * [`activation`] — activations used by Deep Potential (tanh and friends);
//! * [`layers`] — fully connected layers with analytic backward passes;
//! * [`graph`] — a small computation-graph runtime standing in for the
//!   TensorFlow 2.2 baseline (sessions, per-run scheduling overhead, autodiff
//!   that materializes redundant gradient kernels);
//! * [`direct`] — the "TensorFlow removed" execution path: preallocated
//!   workspaces, fused kernels, zero framework overhead;
//! * [`init`] — deterministic weight initialization and JSON model I/O;
//! * [`stats`] — GEMM call accounting by M×N×K shape class and precision
//!   for the observability layer (no-op unless `dpmd-obs/capture` is on).
//!
//! The crate is deliberately dependency-light and deterministic: every random
//! draw is seeded, so experiments are reproducible bit-for-bit at a given
//! precision.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod activation;
pub mod direct;
pub mod f16;
pub mod fuse;
pub mod gemm;
pub mod graph;
pub mod init;
pub mod layers;
pub mod matrix;
pub mod precision;
pub mod stats;

pub use f16::F16;
pub use matrix::{Matrix, Scalar};
pub use precision::Precision;
