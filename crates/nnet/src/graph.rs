//! A miniature computation-graph runtime — the TensorFlow 2.2 stand-in.
//!
//! The baseline DeePMD-kit drives every force evaluation through a TensorFlow
//! session. The paper measured a fixed ≈4 ms overhead per `session.run`
//! (kernel scheduling, memory management) that dominates once each thread
//! only evaluates one or two atoms, plus redundant kernels materialized by
//! the autodiff graph. This module reproduces that execution model:
//!
//! * a [`Graph`] of dataflow nodes built ahead of time;
//! * [`Graph::gradients`] — reverse-mode autodiff that *appends gradient
//!   nodes to the graph*, faithfully materializing the recomputation
//!   (e.g. `ActGrad` re-evaluates the activation the forward pass already
//!   computed) that the paper's kernel-trimming removes;
//! * a [`Session`] that interprets the graph, allocating every intermediate
//!   per run (the dynamic-allocation behaviour the direct path eliminates)
//!   and accounting a fixed per-run scheduling overhead in its [`RunStats`].
//!
//! The overhead is *accounted*, not slept: `RunStats::framework_overhead_ns`
//! feeds the performance model, while the functional outputs are bit-exact
//! f64 results used to validate the direct executor.

use std::collections::HashMap;

use crate::activation::Activation;
use crate::gemm::naive;
use crate::matrix::Matrix;

/// Fixed per-`Session::run` framework overhead, in nanoseconds.
///
/// The paper (§III-B1) reports "a fixed overhead of approximately
/// 4 milliseconds per session run" in TensorFlow 2.2 on A64FX.
pub const SESSION_FIXED_OVERHEAD_NS: u64 = 4_000_000;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Dataflow operations supported by the runtime.
#[derive(Clone, Debug)]
pub enum Op {
    /// Named placeholder fed at run time.
    Input(String),
    /// Constant parameter baked into the graph.
    Param(Matrix<f64>),
    /// `A·B`.
    MatMulNN(NodeId, NodeId),
    /// `A·Bᵀ` (B stored `n×k`) — the form the paper converts to NN.
    MatMulNT(NodeId, NodeId),
    /// `Aᵀ·B` (A stored `k×m`).
    MatMulTN(NodeId, NodeId),
    /// Element-wise sum (same shape).
    Add(NodeId, NodeId),
    /// Row-broadcast bias add: `X + 1·b` with `b: 1×n`.
    AddBias(NodeId, NodeId),
    /// Column sums producing `1×n`.
    ColSum(NodeId),
    /// Element-wise product (same shape).
    Mul(NodeId, NodeId),
    /// Multiply by a scalar constant.
    Scale(NodeId, f64),
    /// Element-wise activation.
    Activation(NodeId, Activation),
    /// Element-wise activation *derivative* (a recompute node: autodiff
    /// re-evaluates the nonlinearity instead of caching it).
    ActGrad(NodeId, Activation),
    /// Sum of all elements, producing `1×1`.
    SumAll(NodeId),
    /// Broadcast a `1×1` to the shape of the second operand.
    BroadcastLike(NodeId, NodeId),
    /// Horizontal concatenation (same row count).
    ConcatCols(NodeId, NodeId),
    /// Column slice `[lo, hi)`.
    SliceCols(NodeId, usize, usize),
    /// Matrix transpose.
    Transpose(NodeId),
    /// Reinterpret the buffer as `rows × cols` (element count must match).
    Reshape(NodeId, usize, usize),
    /// Zero-pad a column slice back into the shape of the 4th operand:
    /// `PadCols(g, lo, hi, like)` scatters `g` into columns `[lo, hi)` of a
    /// zero matrix shaped like `like` (the gradient of `SliceCols`).
    PadCols(NodeId, usize, usize, NodeId),
    /// Reshape to the shape of the second operand (gradient of `Reshape`).
    ReshapeLike(NodeId, NodeId),
    /// Fused dense layer `act(x·W + b)` — produced by the fusion optimizer
    /// (`crate::fuse`); one kernel launch, one output tensor.
    FusedDense(NodeId, NodeId, NodeId, Activation),
}

impl Op {
    /// Clone this op with every operand id rewritten by `f` — the primitive
    /// graph rewrites are built from.
    pub fn clone_remapped(&self, f: &dyn Fn(NodeId) -> NodeId) -> Op {
        match self {
            Op::Input(n) => Op::Input(n.clone()),
            Op::Param(m) => Op::Param(m.clone()),
            Op::MatMulNN(a, b) => Op::MatMulNN(f(*a), f(*b)),
            Op::MatMulNT(a, b) => Op::MatMulNT(f(*a), f(*b)),
            Op::MatMulTN(a, b) => Op::MatMulTN(f(*a), f(*b)),
            Op::Add(a, b) => Op::Add(f(*a), f(*b)),
            Op::AddBias(a, b) => Op::AddBias(f(*a), f(*b)),
            Op::ColSum(a) => Op::ColSum(f(*a)),
            Op::Mul(a, b) => Op::Mul(f(*a), f(*b)),
            Op::Scale(a, s) => Op::Scale(f(*a), *s),
            Op::Activation(a, act) => Op::Activation(f(*a), *act),
            Op::ActGrad(a, act) => Op::ActGrad(f(*a), *act),
            Op::SumAll(a) => Op::SumAll(f(*a)),
            Op::BroadcastLike(a, b) => Op::BroadcastLike(f(*a), f(*b)),
            Op::ConcatCols(a, b) => Op::ConcatCols(f(*a), f(*b)),
            Op::SliceCols(a, lo, hi) => Op::SliceCols(f(*a), *lo, *hi),
            Op::Transpose(a) => Op::Transpose(f(*a)),
            Op::Reshape(a, r, c) => Op::Reshape(f(*a), *r, *c),
            Op::PadCols(a, lo, hi, like) => Op::PadCols(f(*a), *lo, *hi, f(*like)),
            Op::ReshapeLike(a, like) => Op::ReshapeLike(f(*a), f(*like)),
            Op::FusedDense(x, w, b, act) => Op::FusedDense(f(*x), f(*w), f(*b), *act),
        }
    }

    /// Operand ids of this op, in order.
    pub fn operand_ids(&self) -> Vec<NodeId> {
        match self {
            Op::Input(_) | Op::Param(_) => vec![],
            Op::MatMulNN(a, b)
            | Op::MatMulNT(a, b)
            | Op::MatMulTN(a, b)
            | Op::Add(a, b)
            | Op::AddBias(a, b)
            | Op::Mul(a, b)
            | Op::BroadcastLike(a, b)
            | Op::ConcatCols(a, b)
            | Op::ReshapeLike(a, b) => vec![*a, *b],
            Op::ColSum(a)
            | Op::Scale(a, _)
            | Op::Activation(a, _)
            | Op::ActGrad(a, _)
            | Op::SumAll(a)
            | Op::SliceCols(a, _, _)
            | Op::Transpose(a)
            | Op::Reshape(a, _, _) => vec![*a],
            Op::PadCols(a, _, _, like) => vec![*a, *like],
            Op::FusedDense(x, w, b, _) => vec![*x, *w, *b],
        }
    }
}

/// A computation graph: nodes are appended in topological order (operands
/// must already exist), so evaluation is a single forward sweep.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<Op>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Append a node and get its handle.
    pub fn add(&mut self, op: Op) -> NodeId {
        let check = |id: &NodeId| assert!(id.0 < self.nodes.len(), "operand must precede node");
        match &op {
            Op::MatMulNN(a, b)
            | Op::MatMulNT(a, b)
            | Op::MatMulTN(a, b)
            | Op::Add(a, b)
            | Op::AddBias(a, b)
            | Op::Mul(a, b)
            | Op::BroadcastLike(a, b)
            | Op::ConcatCols(a, b) => {
                check(a);
                check(b);
            }
            Op::ColSum(a)
            | Op::Scale(a, _)
            | Op::Activation(a, _)
            | Op::ActGrad(a, _)
            | Op::SumAll(a)
            | Op::SliceCols(a, _, _)
            | Op::Transpose(a)
            | Op::Reshape(a, _, _) => check(a),
            Op::PadCols(a, _, _, like) => {
                check(a);
                check(like);
            }
            Op::ReshapeLike(a, like) => {
                check(a);
                check(like);
            }
            Op::FusedDense(x, w, b, _) => {
                check(x);
                check(w);
                check(b);
            }
            Op::Input(_) | Op::Param(_) => {}
        }
        self.nodes.push(op);
        NodeId(self.nodes.len() - 1)
    }

    /// Convenience: placeholder input.
    pub fn input(&mut self, name: &str) -> NodeId {
        self.add(Op::Input(name.to_string()))
    }

    /// Convenience: constant parameter.
    pub fn param(&mut self, m: Matrix<f64>) -> NodeId {
        self.add(Op::Param(m))
    }

    /// Number of nodes in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// The op at index `i`.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn op(&self, i: usize) -> &Op {
        &self.nodes[i]
    }

    /// Operand ids of node `id`.
    pub fn operands(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes[id.0].operand_ids()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of *compute* kernels (everything except inputs/params).
    pub fn kernel_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|op| !matches!(op, Op::Input(_) | Op::Param(_)))
            .count()
    }

    /// Statically derivable column count of a node (None when it depends on
    /// a runtime feed). Used by the `ConcatCols` gradient to split widths.
    pub fn static_cols(&self, id: NodeId) -> Option<usize> {
        match &self.nodes[id.0] {
            Op::Input(_) => None,
            Op::Param(m) => Some(m.cols()),
            Op::MatMulNN(_, b) => self.static_cols(*b),
            Op::MatMulNT(_, b) => self.static_rows(*b),
            Op::MatMulTN(_, b) => self.static_cols(*b),
            Op::Add(a, b) | Op::Mul(a, b) => self.static_cols(*a).or(self.static_cols(*b)),
            Op::AddBias(x, b) => self.static_cols(*x).or(self.static_cols(*b)),
            Op::ColSum(x) | Op::Scale(x, _) | Op::Activation(x, _) | Op::ActGrad(x, _) => {
                self.static_cols(*x)
            }
            Op::SumAll(_) => Some(1),
            Op::BroadcastLike(_, x) => self.static_cols(*x),
            Op::ConcatCols(a, b) => Some(self.static_cols(*a)? + self.static_cols(*b)?),
            Op::SliceCols(_, lo, hi) => Some(hi - lo),
            Op::Transpose(x) => self.static_rows(*x),
            Op::Reshape(_, _, cols) => Some(*cols),
            Op::PadCols(_, _, _, like) => self.static_cols(*like),
            Op::ReshapeLike(_, like) => self.static_cols(*like),
            Op::FusedDense(_, w, _, _) => self.static_cols(*w),
        }
    }

    /// Statically derivable row count of a node.
    pub fn static_rows(&self, id: NodeId) -> Option<usize> {
        match &self.nodes[id.0] {
            Op::Input(_) => None,
            Op::Param(m) => Some(m.rows()),
            Op::MatMulNN(a, _) | Op::MatMulNT(a, _) => self.static_rows(*a),
            Op::MatMulTN(a, _) => self.static_cols(*a),
            Op::Add(a, b) | Op::Mul(a, b) => self.static_rows(*a).or(self.static_rows(*b)),
            Op::AddBias(x, _) => self.static_rows(*x),
            Op::ColSum(_) | Op::SumAll(_) => Some(1),
            Op::Scale(x, _) | Op::Activation(x, _) | Op::ActGrad(x, _) => self.static_rows(*x),
            Op::BroadcastLike(_, x) => self.static_rows(*x),
            Op::ConcatCols(a, b) => self.static_rows(*a).or(self.static_rows(*b)),
            Op::SliceCols(x, _, _) => self.static_rows(*x),
            Op::Transpose(x) => self.static_cols(*x),
            Op::Reshape(_, rows, _) => Some(*rows),
            Op::PadCols(_, _, _, like) => self.static_rows(*like),
            Op::ReshapeLike(_, like) => self.static_rows(*like),
            Op::FusedDense(x, _, _, _) => self.static_rows(*x),
        }
    }

    /// Reverse-mode autodiff: append gradient nodes for `d(loss)/d(wrt)`.
    ///
    /// `loss` must evaluate to `1×1`. Returns one gradient node per entry of
    /// `wrt`. Like TF's `tf.gradients`, this *grows the graph*: derivative
    /// recomputation (`ActGrad`) and NT matmuls are materialized as fresh
    /// kernels rather than reusing forward intermediates — the redundancy the
    /// paper's TensorFlow removal eliminates.
    ///
    /// # Panics
    /// On ops without a registered gradient (`ConcatCols`/`SliceCols`/
    /// `Transpose` are forward-only conveniences here).
    pub fn gradients(&mut self, loss: NodeId, wrt: &[NodeId]) -> Vec<NodeId> {
        let n = self.nodes.len();
        assert!(loss.0 < n);
        // grad[i] accumulates dL/d(node i) as a node id.
        let mut grad: Vec<Option<NodeId>> = vec![None; n];
        let one = self.add(Op::Param(Matrix::from_vec(1, 1, vec![1.0])));
        grad[loss.0] = Some(one);

        // Walk original nodes in reverse topological (= reverse insertion) order.
        for i in (0..n).rev() {
            let Some(g) = grad[i] else { continue };
            // Clone to appease the borrow checker while we append nodes.
            let op = self.nodes[i].clone();
            let accum = |slf: &mut Graph, grad: &mut Vec<Option<NodeId>>, target: NodeId, contrib: NodeId| {
                let entry = &mut grad[target.0];
                *entry = Some(match *entry {
                    None => contrib,
                    Some(prev) => slf.add(Op::Add(prev, contrib)),
                });
            };
            match op {
                Op::Input(_) | Op::Param(_) => {}
                Op::MatMulNN(a, b) => {
                    // dA = G·Bᵀ ; dB = Aᵀ·G
                    let da = self.add(Op::MatMulNT(g, b));
                    let db = self.add(Op::MatMulTN(a, g));
                    accum(self, &mut grad, a, da);
                    accum(self, &mut grad, b, db);
                }
                Op::MatMulNT(a, b) => {
                    // C = A·Bᵀ: dA = G·B ; dB = Gᵀ·A
                    let da = self.add(Op::MatMulNN(g, b));
                    let db = self.add(Op::MatMulTN(g, a));
                    accum(self, &mut grad, a, da);
                    accum(self, &mut grad, b, db);
                }
                Op::MatMulTN(a, b) => {
                    // C = Aᵀ·B with A: k×m, B: k×n, G: m×n.
                    // dA = B·Gᵀ (k×m) ; dB = A·G (k×n).
                    let da = self.add(Op::MatMulNT(b, g));
                    let db = self.add(Op::MatMulNN(a, g));
                    accum(self, &mut grad, a, da);
                    accum(self, &mut grad, b, db);
                }
                Op::Add(a, b) => {
                    accum(self, &mut grad, a, g);
                    accum(self, &mut grad, b, g);
                }
                Op::AddBias(x, b) => {
                    accum(self, &mut grad, x, g);
                    let db = self.add(Op::ColSum(g));
                    accum(self, &mut grad, b, db);
                }
                Op::Mul(a, b) => {
                    let da = self.add(Op::Mul(g, b));
                    let db = self.add(Op::Mul(g, a));
                    accum(self, &mut grad, a, da);
                    accum(self, &mut grad, b, db);
                }
                Op::Scale(x, s) => {
                    let dx = self.add(Op::Scale(g, s));
                    accum(self, &mut grad, x, dx);
                }
                Op::Activation(x, act) => {
                    // Redundant recompute: derivative from the *input*, even
                    // though the forward value exists.
                    let d = self.add(Op::ActGrad(x, act));
                    let dx = self.add(Op::Mul(g, d));
                    accum(self, &mut grad, x, dx);
                }
                Op::SumAll(x) => {
                    let dx = self.add(Op::BroadcastLike(g, x));
                    accum(self, &mut grad, x, dx);
                }
                Op::ColSum(_) | Op::ActGrad(_, _) | Op::BroadcastLike(_, _) => {
                    panic!("gradient of gradient is not supported by this runtime");
                }
                Op::ConcatCols(a, b) => {
                    // Gradient splits column-wise; widths are recovered at
                    // run time via shape-aware slice nodes, so we need the
                    // operand widths. They are only known for Param/Reshape
                    // operands statically; use SliceColsOfLike semantics by
                    // storing explicit widths when available.
                    let wa = self.static_cols(a).expect("ConcatCols grad needs static width of lhs");
                    let wtotal = wa + self.static_cols(b).expect("ConcatCols grad needs static width of rhs");
                    let da = self.add(Op::SliceCols(g, 0, wa));
                    let db = self.add(Op::SliceCols(g, wa, wtotal));
                    accum(self, &mut grad, a, da);
                    accum(self, &mut grad, b, db);
                }
                Op::SliceCols(x, lo, hi) => {
                    let dx = self.add(Op::PadCols(g, lo, hi, x));
                    accum(self, &mut grad, x, dx);
                }
                Op::Transpose(x) => {
                    let dx = self.add(Op::Transpose(g));
                    accum(self, &mut grad, x, dx);
                }
                Op::Reshape(x, _, _) => {
                    let dx = self.add(Op::ReshapeLike(g, x));
                    accum(self, &mut grad, x, dx);
                }
                Op::PadCols(..) | Op::ReshapeLike(..) => {
                    panic!("gradient of gradient is not supported by this runtime");
                }
                Op::FusedDense(..) => {
                    panic!("build gradients before running the fusion optimizer");
                }
            }
        }

        wrt.iter()
            .map(|w| grad[w.0].unwrap_or_else(|| self.add(Op::Param(Matrix::zeros(0, 0)))))
            .collect()
    }
}

/// Statistics from one [`Session::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Compute kernels launched (excludes inputs/params).
    pub kernels_launched: u64,
    /// Intermediate tensors allocated during the run.
    pub tensors_allocated: u64,
    /// Modeled fixed framework overhead for this run, in nanoseconds.
    pub framework_overhead_ns: u64,
    /// FLOPs executed by matmul kernels.
    pub matmul_flops: u64,
}

/// A session interprets a [`Graph`], TensorFlow-style.
pub struct Session {
    graph: Graph,
    runs: u64,
    cumulative: RunStats,
}

impl Session {
    /// Wrap a finished graph in a session.
    pub fn new(graph: Graph) -> Self {
        Session { graph, runs: 0, cumulative: RunStats::default() }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of completed runs.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Cumulative statistics over all runs.
    pub fn cumulative_stats(&self) -> RunStats {
        self.cumulative
    }

    /// Execute the graph on `feeds`, returning the requested `fetches` and
    /// the per-run statistics.
    ///
    /// Every intermediate is freshly allocated — deliberately: the direct
    /// executor's preallocated workspace is the optimization under test.
    ///
    /// # Panics
    /// If a required input is missing from `feeds` or shapes are inconsistent.
    pub fn run(
        &mut self,
        feeds: &HashMap<String, Matrix<f64>>,
        fetches: &[NodeId],
    ) -> (Vec<Matrix<f64>>, RunStats) {
        let mut values: Vec<Option<Matrix<f64>>> = vec![None; self.graph.nodes.len()];
        let mut stats = RunStats { framework_overhead_ns: SESSION_FIXED_OVERHEAD_NS, ..Default::default() };

        for (i, op) in self.graph.nodes.iter().enumerate() {
            let val = |id: &NodeId| -> &Matrix<f64> { values[id.0].as_ref().expect("topological order") };
            let out = match op {
                Op::Input(name) => feeds
                    .get(name)
                    .unwrap_or_else(|| panic!("missing feed '{name}'"))
                    .clone(),
                Op::Param(m) => m.clone(),
                Op::MatMulNN(a, b) => {
                    let (a, b) = (val(a), val(b));
                    let (m, k, n) = (a.rows(), a.cols(), b.cols());
                    assert_eq!(k, b.rows(), "NN inner dim");
                    let mut c = Matrix::zeros(m, n);
                    naive::gemm_nn_f64(m, n, k, a.as_slice(), b.as_slice(), c.as_mut_slice());
                    stats.matmul_flops += crate::gemm::flops(m, n, k);
                    c
                }
                Op::MatMulNT(a, b) => {
                    let (a, b) = (val(a), val(b));
                    let (m, k, n) = (a.rows(), a.cols(), b.rows());
                    assert_eq!(k, b.cols(), "NT inner dim");
                    let mut c = Matrix::zeros(m, n);
                    naive::gemm_nt_f64(m, n, k, a.as_slice(), b.as_slice(), c.as_mut_slice());
                    stats.matmul_flops += crate::gemm::flops(m, n, k);
                    c
                }
                Op::MatMulTN(a, b) => {
                    let (a, b) = (val(a), val(b));
                    // A is k×m stored, result is m×n.
                    let (k, m, n) = (a.rows(), a.cols(), b.cols());
                    assert_eq!(k, b.rows(), "TN inner dim");
                    let at = a.transpose();
                    let mut c = Matrix::zeros(m, n);
                    naive::gemm_nn_f64(m, n, k, at.as_slice(), b.as_slice(), c.as_mut_slice());
                    stats.matmul_flops += crate::gemm::flops(m, n, k);
                    stats.tensors_allocated += 1; // the explicit transpose temp
                    c
                }
                Op::Add(a, b) => {
                    let (a, b) = (val(a), val(b));
                    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
                    let mut c = a.clone();
                    for (x, &y) in c.as_mut_slice().iter_mut().zip(b.as_slice()) {
                        *x += y;
                    }
                    c
                }
                Op::AddBias(x, b) => {
                    let (x, b) = (val(x), val(b));
                    assert_eq!(b.rows(), 1);
                    assert_eq!(b.cols(), x.cols());
                    let mut c = x.clone();
                    for r in 0..c.rows() {
                        for (v, &bb) in c.row_mut(r).iter_mut().zip(b.as_slice()) {
                            *v += bb;
                        }
                    }
                    c
                }
                Op::ColSum(x) => {
                    let x = val(x);
                    let mut c = Matrix::zeros(1, x.cols());
                    for r in 0..x.rows() {
                        for (s, &v) in c.as_mut_slice().iter_mut().zip(x.row(r)) {
                            *s += v;
                        }
                    }
                    c
                }
                Op::Mul(a, b) => {
                    let (a, b) = (val(a), val(b));
                    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
                    let mut c = a.clone();
                    for (x, &y) in c.as_mut_slice().iter_mut().zip(b.as_slice()) {
                        *x *= y;
                    }
                    c
                }
                Op::Scale(x, s) => {
                    let mut c = val(x).clone();
                    for v in c.as_mut_slice() {
                        *v *= s;
                    }
                    c
                }
                Op::Activation(x, act) => {
                    let mut c = val(x).clone();
                    act.apply_slice(c.as_mut_slice());
                    c
                }
                Op::ActGrad(x, act) => {
                    let mut c = val(x).clone();
                    for v in c.as_mut_slice() {
                        *v = act.derivative(*v);
                    }
                    c
                }
                Op::SumAll(x) => {
                    let s: f64 = val(x).as_slice().iter().sum();
                    Matrix::from_vec(1, 1, vec![s])
                }
                Op::BroadcastLike(g, x) => {
                    let gv = val(g);
                    assert_eq!((gv.rows(), gv.cols()), (1, 1));
                    let s = gv[(0, 0)];
                    let x = val(x);
                    Matrix::from_fn(x.rows(), x.cols(), |_, _| s)
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (val(a), val(b));
                    assert_eq!(a.rows(), b.rows());
                    let mut c = Matrix::zeros(a.rows(), a.cols() + b.cols());
                    for r in 0..a.rows() {
                        c.row_mut(r)[..a.cols()].copy_from_slice(a.row(r));
                        c.row_mut(r)[a.cols()..].copy_from_slice(b.row(r));
                    }
                    c
                }
                Op::SliceCols(x, lo, hi) => {
                    let x = val(x);
                    assert!(*lo <= *hi && *hi <= x.cols());
                    Matrix::from_fn(x.rows(), hi - lo, |r, c| x[(r, lo + c)])
                }
                Op::Transpose(x) => val(x).transpose(),
                Op::Reshape(x, rows, cols) => {
                    let x = val(x);
                    assert_eq!(x.len(), rows * cols, "reshape element count");
                    Matrix::from_vec(*rows, *cols, x.as_slice().to_vec())
                }
                Op::PadCols(gv, lo, hi, like) => {
                    let g = val(gv);
                    let like = val(like);
                    assert_eq!(g.cols(), hi - lo);
                    assert_eq!(g.rows(), like.rows());
                    let mut out = Matrix::zeros(like.rows(), like.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            out[(r, lo + c)] = g[(r, c)];
                        }
                    }
                    out
                }
                Op::ReshapeLike(x, like) => {
                    let x = val(x);
                    let like = val(like);
                    assert_eq!(x.len(), like.len(), "reshape-like element count");
                    Matrix::from_vec(like.rows(), like.cols(), x.as_slice().to_vec())
                }
                Op::FusedDense(x, w, b, act) => {
                    let (x, w, b) = (val(x), val(w), val(b));
                    let (m, k, n) = (x.rows(), x.cols(), w.cols());
                    assert_eq!(k, w.rows(), "fused dense inner dim");
                    assert_eq!(b.cols(), n, "fused dense bias width");
                    let mut c = Matrix::zeros(m, n);
                    naive::gemm_nn_f64(m, n, k, x.as_slice(), w.as_slice(), c.as_mut_slice());
                    stats.matmul_flops += crate::gemm::flops(m, n, k);
                    crate::direct::fused_bias_act(m, n, c.as_mut_slice(), b.as_slice(), *act);
                    c
                }
            };
            if !matches!(op, Op::Input(_) | Op::Param(_)) {
                stats.kernels_launched += 1;
                stats.tensors_allocated += 1;
            }
            values[i] = Some(out);
        }

        let outs = fetches
            .iter()
            .map(|f| values[f.0].clone().expect("fetch must be a graph node"))
            .collect();
        self.runs += 1;
        self.cumulative.kernels_launched += stats.kernels_launched;
        self.cumulative.tensors_allocated += stats.tensors_allocated;
        self.cumulative.framework_overhead_ns += stats.framework_overhead_ns;
        self.cumulative.matmul_flops += stats.matmul_flops;
        (outs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn feeds(pairs: &[(&str, Matrix<f64>)]) -> HashMap<String, Matrix<f64>> {
        pairs.iter().map(|(n, m)| (n.to_string(), m.clone())).collect()
    }

    #[test]
    fn matmul_bias_tanh_pipeline() {
        let mut g = Graph::new();
        let x = g.input("x");
        let w = g.param(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let b = g.param(Matrix::from_vec(1, 2, vec![0.5, -0.5]));
        let mm = g.add(Op::MatMulNN(x, w));
        let ab = g.add(Op::AddBias(mm, b));
        let y = g.add(Op::Activation(ab, Activation::Tanh));
        let mut sess = Session::new(g);
        let (out, stats) = sess.run(&feeds(&[("x", Matrix::from_vec(1, 2, vec![0.5, 0.5]))]), &[y]);
        assert!((out[0][(0, 0)] - 1.0f64.tanh()).abs() < 1e-12);
        assert!((out[0][(0, 1)] - 0.0f64.tanh()).abs() < 1e-12);
        assert_eq!(stats.kernels_launched, 3);
        assert_eq!(stats.framework_overhead_ns, SESSION_FIXED_OVERHEAD_NS);
    }

    #[test]
    fn autodiff_matches_finite_difference() {
        // loss = sum(tanh(x·W + b)); check dL/dx and dL/dW.
        let mut rng = StdRng::seed_from_u64(5);
        let wm = Matrix::from_fn(3, 2, |_, _| rng.random_range(-1.0..1.0));
        let bm = Matrix::from_fn(1, 2, |_, _| rng.random_range(-0.2..0.2));
        let xm = Matrix::from_fn(2, 3, |_, _| rng.random_range(-1.0..1.0));

        let mut g = Graph::new();
        let x = g.input("x");
        let w = g.param(wm.clone());
        let b = g.param(bm.clone());
        let mm = g.add(Op::MatMulNN(x, w));
        let ab = g.add(Op::AddBias(mm, b));
        let y = g.add(Op::Activation(ab, Activation::Tanh));
        let loss = g.add(Op::SumAll(y));
        let grads = g.gradients(loss, &[x, w]);
        let mut sess = Session::new(g);

        let (outs, _) = sess.run(&feeds(&[("x", xm.clone())]), &[loss, grads[0], grads[1]]);
        let (dx, dw) = (&outs[1], &outs[2]);

        let h = 1e-6;
        let eval = |sess: &mut Session, x: &Matrix<f64>| -> f64 {
            sess.run(&feeds(&[("x", x.clone())]), &[loss]).0[0][(0, 0)]
        };
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = xm.clone();
                xp[(r, c)] += h;
                let mut xn = xm.clone();
                xn[(r, c)] -= h;
                let fd = (eval(&mut sess, &xp) - eval(&mut sess, &xn)) / (2.0 * h);
                assert!((fd - dx[(r, c)]).abs() < 1e-6, "dx ({r},{c})");
            }
        }
        // Weight gradient via direct formula dW = xᵀ·(g ⊙ tanh'(pre)).
        assert_eq!(dw.rows(), 3);
        assert_eq!(dw.cols(), 2);
    }

    #[test]
    fn gradient_graph_adds_redundant_kernels() {
        let mut g = Graph::new();
        let x = g.input("x");
        let w = g.param(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mm = g.add(Op::MatMulNN(x, w));
        let y = g.add(Op::Activation(mm, Activation::Tanh));
        let loss = g.add(Op::SumAll(y));
        let before = g.kernel_count();
        let _ = g.gradients(loss, &[x]);
        let after = g.kernel_count();
        // Backward must materialize strictly more kernels than forward had —
        // the redundancy the paper's TF removal trims.
        assert!(after > before + 2, "before={before} after={after}");
    }

    #[test]
    fn concat_slice_roundtrip() {
        let mut g = Graph::new();
        let a = g.input("a");
        let b = g.input("b");
        let cat = g.add(Op::ConcatCols(a, b));
        let sl = g.add(Op::SliceCols(cat, 2, 3));
        let mut sess = Session::new(g);
        let am = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let bm = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let (outs, _) = sess.run(&feeds(&[("a", am), ("b", bm)]), &[sl]);
        assert_eq!(outs[0].as_slice(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "missing feed")]
    fn missing_feed_panics() {
        let mut g = Graph::new();
        let x = g.input("x");
        let mut sess = Session::new(g.clone());
        let _ = sess.run(&HashMap::new(), &[x]);
    }

    #[test]
    fn cumulative_stats_accumulate() {
        let mut g = Graph::new();
        let x = g.input("x");
        let s = g.add(Op::SumAll(x));
        let mut sess = Session::new(g);
        let f = feeds(&[("x", Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]))]);
        sess.run(&f, &[s]);
        sess.run(&f, &[s]);
        assert_eq!(sess.runs(), 2);
        assert_eq!(sess.cumulative_stats().framework_overhead_ns, 2 * SESSION_FIXED_OVERHEAD_NS);
    }
}
