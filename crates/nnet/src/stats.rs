//! GEMM call accounting for the observability layer.
//!
//! The paper's optimization story is dominated by a handful of GEMM shape
//! classes (the tall-and-skinny M ≤ 3 fitting-net calls, the per-neighbour
//! embedding matvecs), so the profile keys call counts by `M×N×K` shape and
//! precision class rather than by call site. [`GemmTally`] is a fixed table
//! of pre-registered `(shape, counter)` slots: recording is a linear scan
//! over a short slice plus one relaxed atomic increment — no allocation, no
//! locking, no hashing on the hot path. Shapes nobody registered fall into a
//! shared `nnet.gemm.other.calls` bucket, so the counters always sum to the
//! total number of calls.
//!
//! With the `capture` feature of `dpmd-obs` disabled the counters are ZSTs
//! and everything here compiles to nothing.

use std::sync::Arc;

use dpmd_obs::{Counter, MetricsRegistry};

/// Precision class of a GEMM call (storage type of the operands; the f16
/// kernels still accumulate in f32, per the paper's fp16-sve-gemm).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrecClass {
    /// f64 storage and accumulation (reference path).
    F64,
    /// f32 storage and accumulation.
    F32,
    /// binary16 storage, f32 accumulation.
    F16,
}

impl PrecClass {
    /// Short tag used in metric names (`fp64`/`fp32`/`fp16`).
    pub fn tag(self) -> &'static str {
        match self {
            PrecClass::F64 => "fp64",
            PrecClass::F32 => "fp32",
            PrecClass::F16 => "fp16",
        }
    }

    fn bits(self) -> u64 {
        match self {
            PrecClass::F64 => 0,
            PrecClass::F32 => 1,
            PrecClass::F16 => 2,
        }
    }
}

/// Bit-pack a GEMM shape + precision into one comparable key (16 bits per
/// dimension — far beyond any shape this codebase runs — plus 2 tag bits).
#[inline]
pub fn shape_key(m: usize, n: usize, k: usize, p: PrecClass) -> u64 {
    ((m as u64 & 0xFFFF) << 34) | ((n as u64 & 0xFFFF) << 18) | ((k as u64 & 0xFFFF) << 2) | p.bits()
}

/// M-dimension shape classes of the dispatch rule, from the dedicated
/// tall-skinny rows up to large stacked panels. The class tally (always
/// registered, independent of the exact-shape slots) is what shows the
/// call-count shift when type-sorting batches per-neighbour matvecs into
/// multi-row GEMMs.
const M_CLASS_TAGS: [&str; 6] = ["m1", "m2", "m3", "m4_8", "m9_64", "m65p"];

#[inline]
fn m_class(m: usize) -> usize {
    match m {
        0 | 1 => 0,
        2 => 1,
        3 => 2,
        4..=8 => 3,
        9..=64 => 4,
        _ => 5,
    }
}

/// Pre-registered per-shape GEMM call counters plus an `other` overflow
/// bucket, per-precision M-shape-class counters, and a per-process dispatch
/// class counter. Cloning is cheap (the tables are shared).
#[derive(Clone, Debug)]
pub struct GemmTally {
    slots: Arc<Vec<(u64, Counter)>>,
    other: Counter,
    /// `nnet.gemm.{prec}.{mclass}.calls`, indexed `prec_idx * 6 + m_class`.
    classes: Arc<Vec<Counter>>,
    /// `nnet.gemm.dispatch.{scalar|avx2|neon}.calls` — one per record, named
    /// for the class the f32 hot path dispatches to in this process.
    dispatch: Counter,
}

impl GemmTally {
    /// Register counters for the given `(m, n, k, precision)` shape classes
    /// (duplicates collapse to one slot). Metric names look like
    /// `nnet.gemm.fp16.m1n32k64.calls`.
    pub fn register(reg: &MetricsRegistry, shapes: &[(usize, usize, usize, PrecClass)]) -> Self {
        let dispatch_tag = crate::gemm::dispatch::active_class().tag();
        let dispatch = reg.counter(
            &format!("nnet.gemm.dispatch.{dispatch_tag}.calls"),
            dpmd_obs::Unit::Count,
        );
        let mut classes = Vec::with_capacity(3 * M_CLASS_TAGS.len());
        for prec in [PrecClass::F64, PrecClass::F32, PrecClass::F16] {
            for tag in M_CLASS_TAGS {
                let name = format!("nnet.gemm.{}.{tag}.calls", prec.tag());
                classes.push(reg.counter(&name, dpmd_obs::Unit::Count));
            }
        }
        let other = reg.counter("nnet.gemm.other.calls", dpmd_obs::Unit::Count);
        let mut slots: Vec<(u64, Counter)> = Vec::with_capacity(shapes.len());
        if !reg.is_enabled() {
            // Capture disabled: keep the slot table empty so record() is a
            // key pack + empty scan + ZST increments.
            return GemmTally { slots: Arc::new(slots), other, classes: Arc::new(classes), dispatch };
        }
        for &(m, n, k, p) in shapes {
            let key = shape_key(m, n, k, p);
            if slots.iter().any(|(s, _)| *s == key) {
                continue;
            }
            let name = format!("nnet.gemm.{}.m{m}n{n}k{k}.calls", p.tag());
            slots.push((key, reg.counter(&name, dpmd_obs::Unit::Count)));
        }
        GemmTally { slots: Arc::new(slots), other, classes: Arc::new(classes), dispatch }
    }

    /// Count one GEMM call of the given shape and precision.
    #[inline]
    pub fn record(&self, m: usize, n: usize, k: usize, p: PrecClass) {
        self.dispatch.inc();
        self.classes[p.bits() as usize * M_CLASS_TAGS.len() + m_class(m)].inc();
        let key = shape_key(m, n, k, p);
        for (s, c) in self.slots.iter() {
            if *s == key {
                c.inc();
                return;
            }
        }
        self.other.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_key_is_injective_over_small_shapes() {
        let mut seen = std::collections::HashSet::new();
        for m in [1usize, 2, 3, 64] {
            for n in [1usize, 32, 240] {
                for k in [4usize, 32, 64] {
                    for p in [PrecClass::F64, PrecClass::F32, PrecClass::F16] {
                        assert!(seen.insert(shape_key(m, n, k, p)), "collision at {m}x{n}x{k}");
                    }
                }
            }
        }
    }

    #[test]
    fn registered_shapes_count_and_unknown_shapes_overflow() {
        let reg = MetricsRegistry::default();
        let tally =
            GemmTally::register(&reg, &[(1, 32, 64, PrecClass::F32), (1, 32, 64, PrecClass::F32)]);
        if !reg.is_enabled() {
            return;
        }
        tally.record(1, 32, 64, PrecClass::F32);
        tally.record(1, 32, 64, PrecClass::F32);
        tally.record(1, 32, 64, PrecClass::F16); // different precision → other
        tally.record(9, 9, 9, PrecClass::F32);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("nnet.gemm.fp32.m1n32k64.calls"), Some(2));
        assert_eq!(snap.counter("nnet.gemm.other.calls"), Some(2));
    }

    /// The always-on class counters see every call (registered or not), and
    /// the dispatch counter carries the process's active class tag.
    #[test]
    fn shape_class_and_dispatch_counters_accumulate() {
        let reg = MetricsRegistry::default();
        let tally = GemmTally::register(&reg, &[]);
        if !reg.is_enabled() {
            return;
        }
        tally.record(1, 32, 64, PrecClass::F32);
        tally.record(40, 32, 64, PrecClass::F32);
        tally.record(40, 32, 64, PrecClass::F16);
        tally.record(3, 8, 8, PrecClass::F64);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("nnet.gemm.fp32.m1.calls"), Some(1));
        assert_eq!(snap.counter("nnet.gemm.fp32.m9_64.calls"), Some(1));
        assert_eq!(snap.counter("nnet.gemm.fp16.m9_64.calls"), Some(1));
        assert_eq!(snap.counter("nnet.gemm.fp64.m3.calls"), Some(1));
        let tag = crate::gemm::dispatch::active_class().tag();
        assert_eq!(snap.counter(&format!("nnet.gemm.dispatch.{tag}.calls")), Some(4));
    }
}
