//! Software IEEE 754 binary16 ("half precision").
//!
//! The paper converts the first-layer GEMM of the fitting net to fp16
//! (`MIX-fp16`). Fugaku's A64FX executes fp16 natively through SVE; here the
//! numerics are reproduced in software: values are *stored* as binary16 and
//! arithmetic is performed by widening to `f32`, exactly like an
//! fp16-storage / fp32-accumulate tensor kernel. Conversion uses
//! round-to-nearest-even, matching hardware `fcvt` behaviour, so the rounding
//! error injected into Table II / Fig. 6 experiments is the real fp16 error.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An IEEE 754 binary16 floating-point number stored as its bit pattern.
#[derive(Clone, Copy, Default, PartialEq)]
pub struct F16(pub u16);

/// Convert an `f32` to binary16 bits with round-to-nearest-even.
///
/// Handles normals, subnormals, signed zero, infinities and NaN (NaN payload
/// is truncated but kept non-zero so NaN stays NaN).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Infinity or NaN.
        return if mant == 0 {
            sign | 0x7c00
        } else {
            // Keep a non-zero payload so the NaN survives the conversion.
            sign | 0x7c00 | 0x0200 | ((mant >> 13) as u16 & 0x03ff)
        };
    }

    let unbiased = exp - 127;
    let h_exp = unbiased + 15;

    if h_exp >= 0x1f {
        // Overflow: round to infinity.
        return sign | 0x7c00;
    }

    if h_exp <= 0 {
        // Subnormal half (or underflow to zero).
        if h_exp < -10 {
            // Too small even for the largest subnormal shift: flush to zero.
            return sign;
        }
        // Add the implicit leading one, then shift into the 10-bit field.
        let m = mant | 0x0080_0000;
        let shift = (14 - h_exp) as u32;
        // Round-to-nearest-even: add (half - 1) plus the low bit of the result.
        let half = 1u32 << (shift - 1);
        let rounded = (m + half - 1 + ((m >> shift) & 1)) >> shift;
        return sign | rounded as u16;
    }

    // Normal half.
    let mut out = ((h_exp as u32) << 10) | (mant >> 13);
    let round_bit = 1u32 << 12;
    if (mant & round_bit) != 0 && ((mant & (round_bit - 1)) != 0 || (out & 1) != 0) {
        // A carry out of the mantissa rolls into the exponent and, at the
        // top, naturally produces infinity — the IEEE-correct behaviour.
        out += 1;
    }
    sign | out as u16
}

/// Convert binary16 bits to `f32` (exact: every f16 is representable).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;

    match exp {
        0 => {
            if mant == 0 {
                f32::from_bits(sign)
            } else {
                // Subnormal: value = mant * 2^-24. Exact in f32.
                let v = mant as f32 * (1.0 / 16_777_216.0);
                if sign != 0 {
                    -v
                } else {
                    v
                }
            }
        }
        0x1f => f32::from_bits(sign | 0x7f80_0000 | (mant << 13)),
        _ => f32::from_bits(sign | ((exp + 112) << 23) | (mant << 13)),
    }
}

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Machine epsilon (2^-10) — the unit roundoff scale that drives the
    /// MIX-fp16 row of Table II.
    pub const EPSILON: F16 = F16(0x1400);

    /// Round an `f32` to the nearest representable binary16.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        F16(f32_to_f16_bits(x))
    }

    /// Round an `f64` to the nearest representable binary16.
    ///
    /// Double rounding through f32 is harmless here: f32 has 13 more mantissa
    /// bits than f16, so the f32 intermediate never sits exactly on an f16
    /// rounding boundary unless the f64 did.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        F16(f32_to_f16_bits(x as f32))
    }

    /// Widen to `f32` (exact).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Widen to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Build from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x03ff) != 0
    }

    /// `true` if the value is +/- infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == 0x7c00
    }

    /// `true` if the value is finite (neither infinite nor NaN).
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7c00) != 0x7c00
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & 0x7fff)
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> f32 {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> f64 {
        x.to_f64()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! f16_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

f16_binop!(Add, add, +);
f16_binop!(Sub, sub, -);
f16_binop!(Mul, mul, *);
f16_binop!(Div, div, /);

impl AddAssign for F16 {
    #[inline]
    fn add_assign(&mut self, rhs: F16) {
        *self = *self + rhs;
    }
}

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Cast a slice of `f64` to a freshly allocated vector of `F16`.
pub fn cast_f64_slice(xs: &[f64]) -> Vec<F16> {
    xs.iter().map(|&x| F16::from_f64(x)).collect()
}

/// Cast a slice of `f32` to a freshly allocated vector of `F16`.
pub fn cast_f32_slice(xs: &[f32]) -> Vec<F16> {
    xs.iter().map(|&x| F16::from_f32(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048i32..=2048 {
            let x = i as f32;
            assert_eq!(F16::from_f32(x).to_f32(), x, "integer {i} must be exact");
        }
    }

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3c00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xc000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7bff);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert_eq!(F16::from_f32(1.0e5), F16::INFINITY);
        assert_eq!(F16::from_f32(-1.0e5), F16::NEG_INFINITY);
        // 65520 is the first value that rounds up to infinity (midpoint,
        // ties-to-even picks the "even" infinity side per IEEE).
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f32(65519.0).to_bits(), 0x7bff);
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_bits(), 0x0001);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)).to_bits(), 0x0000);
        // Largest subnormal.
        let lsd = 1023.0 * 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(lsd).to_bits(), 0x03ff);
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even
        // (mantissa 0 -> stays 1.0).
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie).to_bits(), 0x3c00);
        // (1 + 2^-10) + 2^-11 is halfway between consecutive halves with odd
        // low bit -> rounds up to even.
        let tie2 = 1.0 + 2.0f32.powi(-10) + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie2).to_bits(), 0x3c02);
    }

    #[test]
    fn nan_survives() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
        assert!(!F16::from_f32(1.0).is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(!F16::INFINITY.is_nan());
    }

    #[test]
    fn arithmetic_goes_through_f32() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((-a).to_f32(), -1.5);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((b / a).to_f32(), 1.5);
    }

    #[test]
    fn relative_error_bound_is_2_pow_minus_11() {
        // Unit roundoff for RTNE binary16 is 2^-11 for normal values.
        let mut worst: f64 = 0.0;
        let mut x = 1.000001f32;
        while x < 1000.0 {
            let r = F16::from_f32(x).to_f32();
            let rel = ((r - x) / x).abs() as f64;
            worst = worst.max(rel);
            x *= 1.01;
        }
        assert!(worst <= 2.0f64.powi(-11) + 1e-9, "worst rel err {worst}");
        assert!(worst > 2.0f64.powi(-13), "sampling should see real rounding");
    }

    /// Independent reference for the value of a *positive* f16 bit pattern,
    /// computed straight from the IEEE 754 binary16 encoding in f64 (every
    /// binary16 value is exact in f64). Deliberately shares no code with
    /// `f16_bits_to_f32`.
    fn ref_value(bits: u16) -> f64 {
        assert_eq!(bits & 0x8000, 0);
        let exp = ((bits >> 10) & 0x1f) as i32;
        let mant = (bits & 0x03ff) as f64;
        match exp {
            0 => mant * 2.0f64.powi(-24),
            0x1f => f64::INFINITY,
            _ => (1.0 + mant / 1024.0) * 2.0f64.powi(exp - 15),
        }
    }

    /// Independent reference RTNE f32 → binary16: nearest representable by
    /// binary search over the (monotone) positive bit patterns, ties to the
    /// even pattern. Overflow: anything at or beyond 65520 (the midpoint
    /// between MAX = 65504 and the next power-of-two step) rounds to
    /// infinity — at the midpoint itself because 0x7bff is odd.
    fn ref_f32_to_f16(x: f32) -> u16 {
        let sign = if x.is_sign_negative() { 0x8000u16 } else { 0 };
        if x.is_nan() {
            return 0x7e00;
        }
        let a = x.abs() as f64;
        if a >= 65520.0 {
            return sign | 0x7c00;
        }
        // Largest positive pattern whose value is <= a.
        let (mut lo, mut hi) = (0u16, 0x7bffu16);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if ref_value(mid) <= a {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let nearest = if lo == 0x7bff {
            lo
        } else {
            let (v0, v1) = (ref_value(lo), ref_value(lo + 1));
            match (a - v0).partial_cmp(&(v1 - a)).unwrap() {
                Ordering::Less => lo,
                Ordering::Greater => lo + 1,
                Ordering::Equal => {
                    if lo & 1 == 0 {
                        lo
                    } else {
                        lo + 1
                    }
                }
            }
        };
        sign | nearest
    }

    /// `f16_bits_to_f32` must agree with the encoding-level reference on
    /// every one of the 2^16 bit patterns (bitwise, so ±0 are separated).
    #[test]
    fn widening_matches_reference_for_all_bit_patterns() {
        for bits in 0u16..=u16::MAX {
            let got = f16_bits_to_f32(bits);
            if F16(bits).is_nan() {
                assert!(got.is_nan(), "bits {bits:#06x} must widen to NaN");
                continue;
            }
            let mag = ref_value(bits & 0x7fff) as f32;
            let want = if bits & 0x8000 != 0 { -mag } else { mag };
            assert_eq!(got.to_bits(), want.to_bits(), "bits {bits:#06x}");
        }
    }

    /// `f32_to_f16_bits` must agree with the reference at every rounding
    /// boundary: for each pair of adjacent finite f16 values, probe both
    /// endpoints, the exact midpoint (representable in f32: binary16 has 11
    /// significand bits, so midpoints need 12 of f32's 24) and one f32 ulp
    /// to either side of it — the inputs where a rounding bug would show.
    #[test]
    fn narrowing_matches_reference_at_all_rounding_boundaries() {
        for b in 0u16..0x7bff {
            let v0 = ref_value(b) as f32;
            let v1 = ref_value(b + 1) as f32;
            let mid = ((ref_value(b) + ref_value(b + 1)) * 0.5) as f32;
            let above = f32::from_bits(mid.to_bits() + 1);
            let below = if mid == 0.0 { -above } else { f32::from_bits(mid.to_bits() - 1) };
            for p in [v0, v1, mid, above, below] {
                assert_eq!(
                    f32_to_f16_bits(p),
                    ref_f32_to_f16(p),
                    "boundary pair {b:#06x}/{:#06x}, probe {p:e}",
                    b + 1
                );
                assert_eq!(
                    f32_to_f16_bits(-p),
                    ref_f32_to_f16(-p),
                    "boundary pair {b:#06x}/{:#06x}, probe {:e}",
                    b + 1,
                    -p
                );
            }
        }
    }

    /// Boundary probes the pair sweep cannot reach: the overflow midpoint,
    /// the subnormal flush threshold, and the special values — plus a
    /// deterministic pseudorandom sweep across the full f32 range.
    #[test]
    fn narrowing_matches_reference_on_specials_and_random_sweep() {
        let probes = [
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            65504.0,                          // F16::MAX
            65519.996,                        // just below the overflow midpoint
            65520.0,                          // midpoint: ties-to-even -> infinity
            65536.0,
            f32::MAX,
            2.0f32.powi(-14),                 // smallest normal
            2.0f32.powi(-24),                 // smallest subnormal
            2.0f32.powi(-25),                 // tie between 0 and 2^-24 -> even -> 0
            f32::from_bits(0x3300_0000 + 1),  // one ulp above 2^-25
            2.0f32.powi(-26),                 // below half the smallest subnormal
            f32::MIN_POSITIVE,                // f32 normal floor, far under f16 range
        ];
        for p in probes {
            for x in [p, -p] {
                assert_eq!(f32_to_f16_bits(x), ref_f32_to_f16(x), "probe {x:e}");
            }
        }
        assert_eq!(f32_to_f16_bits(f32::NAN) & 0x7c00, 0x7c00);
        assert_ne!(f32_to_f16_bits(f32::NAN) & 0x03ff, 0);

        // xorshift32 over raw f32 bit patterns; skip NaNs (payload freedom).
        let mut state = 0x9e37_79b9u32;
        for _ in 0..200_000 {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            let x = f32::from_bits(state);
            if x.is_nan() {
                continue;
            }
            assert_eq!(f32_to_f16_bits(x), ref_f32_to_f16(x), "random {x:e} ({state:#010x})");
        }
    }

    #[test]
    fn every_f16_round_trips_through_f32_exactly() {
        for bits in 0u16..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }
}
