//! The direct execution path — "TensorFlow removed" (§III-B1).
//!
//! The paper extracts every kernel participating in the force calculation
//! out of the TensorFlow graph and rewrites the DeePMD potential as straight
//! kernel calls. The ingredients reproduced here:
//!
//! * **No framework**: no graph interpretation, no session, no per-run
//!   scheduling overhead.
//! * **Preallocated memory**: [`DirectWorkspace`] sizes every intermediate
//!   once at startup for the maximum batch; steady-state runs perform zero
//!   heap allocation (tracked by [`DirectStats::allocations`]).
//! * **Kernel fusion**: bias add and activation fold into a single pass over
//!   the GEMM output ([`fused_bias_act`]).
//! * **NT → NN**: parameter transposes are precomputed at build time, so the
//!   backward pass (force evaluation) runs GEMM-NN only.
//! * **sve-gemm dispatch**: tall-and-skinny kernels when `m ≤ 3`.
//!
//! Numerical results in f64 are validated against the reference layer
//! implementation in this module's tests; the mixed-precision inference
//! variants live in the `deepmd` crate.

use crate::activation::Activation;
use crate::gemm;
use crate::layers::{Mlp, Resnet};
use crate::matrix::Matrix;

/// Counters describing direct-path execution (the graph runtime's
/// [`crate::graph::RunStats`] counterpart).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirectStats {
    /// Fused kernels executed.
    pub kernels: u64,
    /// Heap allocations performed (buffer growth only; zero in steady state).
    pub allocations: u64,
    /// GEMM FLOPs executed.
    pub matmul_flops: u64,
}

/// Fold a bias add and activation into one pass over a GEMM output block:
/// `y[r, :] = act(y[r, :] + b)` — the paper's kernel fusion applied to the
/// affine tail of every dense layer.
pub fn fused_bias_act(m: usize, n: usize, y: &mut [f64], b: &[f64], act: Activation) {
    debug_assert!(y.len() >= m * n && b.len() >= n);
    for r in 0..m {
        let row = &mut y[r * n..(r + 1) * n];
        for (v, &bb) in row.iter_mut().zip(b) {
            *v = act.apply(*v + bb);
        }
    }
}

/// f32 variant of [`fused_bias_act`].
pub fn fused_bias_act_f32(m: usize, n: usize, y: &mut [f32], b: &[f32], act: Activation) {
    debug_assert!(y.len() >= m * n && b.len() >= n);
    for r in 0..m {
        let row = &mut y[r * n..(r + 1) * n];
        for (v, &bb) in row.iter_mut().zip(b) {
            *v = act.apply_f32(*v + bb);
        }
    }
}

/// Preallocated per-layer buffers for a [`DirectMlp`].
///
/// All buffers are sized for `max_batch` at construction; running a smaller
/// batch reuses them without touching the allocator.
#[derive(Clone, Debug, Default)]
struct DirectWorkspace {
    /// Biased pre-activation per layer (`xW + b`, saved for backward).
    pre: Vec<Vec<f64>>,
    /// Post-activation (+skip) outputs per layer.
    out: Vec<Vec<f64>>,
    /// Gradient w.r.t. the current layer's output.
    grad_out: Vec<f64>,
    /// Gradient w.r.t. the biased pre-activation (scratch).
    dpre: Vec<f64>,
    /// Gradient w.r.t. the current layer's input.
    grad_in: Vec<f64>,
    /// Buffer-growth events.
    allocations: u64,
}

impl DirectWorkspace {
    fn ensure(&mut self, in_dim: usize, dims: &[usize], batch: usize) {
        while self.pre.len() < dims.len() {
            self.pre.push(Vec::new());
            self.out.push(Vec::new());
        }
        fn grow(buf: &mut Vec<f64>, need: usize, allocs: &mut u64) {
            if buf.capacity() < need {
                *allocs += 1;
            }
            if buf.len() < need {
                buf.resize(need, 0.0);
            }
        }
        let mut allocs = self.allocations;
        for (i, &d) in dims.iter().enumerate() {
            grow(&mut self.pre[i], batch * d, &mut allocs);
            grow(&mut self.out[i], batch * d, &mut allocs);
        }
        let widest = dims.iter().copied().max().unwrap_or(0).max(in_dim);
        grow(&mut self.grad_out, batch * widest, &mut allocs);
        grow(&mut self.dpre, batch * widest, &mut allocs);
        grow(&mut self.grad_in, batch * widest, &mut allocs);
        self.allocations = allocs;
    }
}

/// An MLP compiled for direct execution: flat weight buffers, precomputed
/// transposes, fused kernels, workspace reuse.
#[derive(Clone, Debug)]
pub struct DirectMlp {
    in_dim: usize,
    dims: Vec<usize>,
    weights: Vec<Matrix<f64>>,
    /// Transposed weights (`out×in`), precomputed so the backward pass is
    /// pure GEMM-NN — the paper's NT→NN conversion.
    weights_t: Vec<Matrix<f64>>,
    biases: Vec<Vec<f64>>,
    acts: Vec<Activation>,
    resnets: Vec<Resnet>,
    ws: DirectWorkspace,
    stats: DirectStats,
}

impl DirectMlp {
    /// Compile a trained [`Mlp`] for direct execution, preallocating the
    /// workspace for batches up to `max_batch`.
    pub fn compile(mlp: &Mlp, max_batch: usize) -> Self {
        let in_dim = mlp.in_dim();
        let dims: Vec<usize> = mlp.layers.iter().map(|l| l.out_dim()).collect();
        let mut ws = DirectWorkspace::default();
        ws.ensure(in_dim, &dims, max_batch.max(1));
        DirectMlp {
            in_dim,
            dims,
            weights: mlp.layers.iter().map(|l| l.w.clone()).collect(),
            weights_t: mlp.layers.iter().map(|l| l.w.transpose()).collect(),
            biases: mlp.layers.iter().map(|l| l.b.clone()).collect(),
            acts: mlp.layers.iter().map(|l| l.act).collect(),
            resnets: mlp.layers.iter().map(|l| l.resnet).collect(),
            ws,
            stats: DirectStats::default(),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        *self.dims.last().expect("at least one layer")
    }

    /// Execution counters so far.
    pub fn stats(&self) -> DirectStats {
        self.stats
    }

    /// Forward pass for `batch` rows of `x` (row-major, `batch × in_dim`).
    ///
    /// Returns the final layer output as a slice of the internal workspace —
    /// valid until the next call.
    pub fn forward(&mut self, x: &[f64], batch: usize) -> &[f64] {
        assert!(x.len() >= batch * self.in_dim, "input buffer too short");
        self.ws.ensure(self.in_dim, &self.dims, batch);
        let nl = self.dims.len();
        for li in 0..nl {
            let m = batch;
            let k = if li == 0 { self.in_dim } else { self.dims[li - 1] };
            let n = self.dims[li];
            // Disjoint field borrows: previous output (read) vs this layer's
            // pre buffer (write) live in different Vec slots / fields.
            let (pre_done, pre_rest) = self.ws.pre.split_at_mut(li);
            let _ = pre_done;
            let pre_buf = &mut pre_rest[0];
            let prev: &[f64] = if li == 0 { &x[..m * k] } else { &self.ws.out[li - 1][..m * k] };
            gemm::auto_nn_f64(m, n, k, prev, self.weights[li].as_slice(), &mut pre_buf[..m * n]);
            // Bias folds into the saved pre-activation (backward needs
            // act'(xW + b)).
            for r in 0..m {
                let row = &mut pre_buf[r * n..(r + 1) * n];
                for (v, &bb) in row.iter_mut().zip(&self.biases[li]) {
                    *v += bb;
                }
            }
            // Activation into the output buffer (fused pass over `pre`).
            let (out_done, out_rest) = self.ws.out.split_at_mut(li);
            let out_buf = &mut out_rest[0];
            let prev: &[f64] = if li == 0 { &x[..m * k] } else { &out_done[li - 1][..m * k] };
            for i in 0..m * n {
                out_buf[i] = self.acts[li].apply(pre_buf[i]);
            }
            match self.resnets[li] {
                Resnet::None => {}
                Resnet::Identity => {
                    for (o, &i) in out_buf[..m * n].iter_mut().zip(prev) {
                        *o += i;
                    }
                }
                Resnet::Doubling => {
                    for r in 0..m {
                        for c in 0..k {
                            let v = prev[r * k + c];
                            out_buf[r * n + c] += v;
                            out_buf[r * n + c + k] += v;
                        }
                    }
                }
            }
            self.stats.matmul_flops += gemm::flops(m, n, k);
            self.stats.kernels += 2; // one GEMM + one fused epilogue
        }
        self.stats.allocations = self.ws.allocations;
        &self.ws.out[nl - 1][..batch * self.out_dim()]
    }

    /// Backward pass computing the input gradient `∂L/∂x` given the output
    /// cotangent `dout` (`batch × out_dim`), after a matching
    /// [`Self::forward`]. All matmuls run as GEMM-NN against the precomputed
    /// transposed weights. Returns a slice borrowed from the workspace.
    pub fn backward_input(&mut self, batch: usize, dout: &[f64]) -> &[f64] {
        let nl = self.dims.len();
        let od = self.out_dim();
        assert!(dout.len() >= batch * od, "cotangent too short");
        self.ws.grad_out[..batch * od].copy_from_slice(&dout[..batch * od]);
        for li in (0..nl).rev() {
            let m = batch;
            let n = self.dims[li];
            let k = if li == 0 { self.in_dim } else { self.dims[li - 1] };
            // dpre = g ⊙ act'(pre)
            let pre = &self.ws.pre[li];
            for ((d, &g), &p) in
                self.ws.dpre[..m * n].iter_mut().zip(&self.ws.grad_out[..m * n]).zip(&pre[..m * n])
            {
                *d = g * self.acts[li].derivative(p);
            }
            // grad_in = dpre · Wᵀ, executed as NN against weights_t (k wide).
            gemm::auto_nn_f64(
                m,
                k,
                n,
                &self.ws.dpre[..m * n],
                self.weights_t[li].as_slice(),
                &mut self.ws.grad_in[..m * k],
            );
            self.stats.matmul_flops += gemm::flops(m, k, n);
            self.stats.kernels += 1;
            // Skip-path gradient flows straight through from grad_out.
            match self.resnets[li] {
                Resnet::None => {}
                Resnet::Identity => {
                    for i in 0..m * k {
                        self.ws.grad_in[i] += self.ws.grad_out[i];
                    }
                }
                Resnet::Doubling => {
                    for r in 0..m {
                        for c in 0..k {
                            self.ws.grad_in[r * k + c] +=
                                self.ws.grad_out[r * n + c] + self.ws.grad_out[r * n + c + k];
                        }
                    }
                }
            }
            std::mem::swap(&mut self.ws.grad_out, &mut self.ws.grad_in);
        }
        &self.ws.grad_out[..batch * self.in_dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn plain_mlp(rng: &mut StdRng) -> Mlp {
        Mlp::new(vec![
            Dense::xavier(4, 8, Activation::Tanh, Resnet::None, rng),
            Dense::xavier(8, 8, Activation::Tanh, Resnet::None, rng),
            Dense::xavier(8, 1, Activation::Linear, Resnet::None, rng),
        ])
    }

    fn resnet_mlp(rng: &mut StdRng) -> Mlp {
        Mlp::new(vec![
            Dense::xavier(3, 6, Activation::Tanh, Resnet::Doubling, rng),
            Dense::xavier(6, 6, Activation::Tanh, Resnet::Identity, rng),
            Dense::xavier(6, 1, Activation::Linear, Resnet::None, rng),
        ])
    }

    #[test]
    fn direct_forward_matches_reference_mlp() {
        let mut rng = StdRng::seed_from_u64(11);
        for mlp in [plain_mlp(&mut rng), resnet_mlp(&mut rng)] {
            let mut direct = DirectMlp::compile(&mlp, 8);
            let ind = mlp.in_dim();
            let x = Matrix::from_fn(5, ind, |_, _| rng.random_range(-1.0..1.0));
            let reference = mlp.forward_infer(&x);
            let out = direct.forward(x.as_slice(), 5);
            for i in 0..5 {
                assert!((out[i] - reference[(i, 0)]).abs() < 1e-12, "row {i}");
            }
        }
    }

    #[test]
    fn direct_backward_matches_reference_mlp() {
        let mut rng = StdRng::seed_from_u64(12);
        for mlp in [plain_mlp(&mut rng), resnet_mlp(&mut rng)] {
            let mut direct = DirectMlp::compile(&mlp, 8);
            let ind = mlp.in_dim();
            let x = Matrix::from_fn(3, ind, |_, _| rng.random_range(-1.0..1.0));
            let (_, caches) = mlp.forward(&x);
            let dout = Matrix::from_fn(3, 1, |_, _| 1.0);
            let (dx_ref, _) = mlp.backward(&caches, &dout);

            direct.forward(x.as_slice(), 3);
            let dx = direct.backward_input(3, dout.as_slice());
            for (i, (&d, &r)) in dx.iter().zip(dx_ref.as_slice()).enumerate().take(3 * ind) {
                assert!((d - r).abs() < 1e-10, "idx {i}: {d} vs {r}");
            }
        }
    }

    #[test]
    fn steady_state_runs_do_not_allocate() {
        let mut rng = StdRng::seed_from_u64(13);
        let mlp = plain_mlp(&mut rng);
        let mut direct = DirectMlp::compile(&mlp, 8);
        let x: Vec<f64> = (0..8 * 4).map(|i| (i as f64).sin()).collect();
        direct.forward(&x, 8);
        let allocs_after_first = direct.stats().allocations;
        for _ in 0..10 {
            direct.forward(&x, 8);
            direct.forward(&x, 3); // smaller batch must reuse buffers too
            let d = vec![1.0; 8];
            direct.backward_input(3, &d);
        }
        assert_eq!(direct.stats().allocations, allocs_after_first, "steady state must not allocate");
    }

    #[test]
    fn fused_bias_act_equals_separate_ops() {
        let mut y = vec![0.5, -0.5, 1.0, 0.0];
        let b = vec![0.1, -0.1];
        fused_bias_act(2, 2, &mut y, &b, Activation::Tanh);
        assert!((y[0] - 0.6f64.tanh()).abs() < 1e-15);
        assert!((y[3] - (-0.1f64).tanh()).abs() < 1e-15);
    }

    #[test]
    fn fused_bias_act_f32_matches_f64_to_single_precision() {
        let mut y64 = vec![0.25f64, -1.5, 2.0, 0.75];
        let mut y32: Vec<f32> = y64.iter().map(|&v| v as f32).collect();
        let b64 = vec![0.5f64, -0.25];
        let b32: Vec<f32> = b64.iter().map(|&v| v as f32).collect();
        fused_bias_act(2, 2, &mut y64, &b64, Activation::Tanh);
        fused_bias_act_f32(2, 2, &mut y32, &b32, Activation::Tanh);
        for i in 0..4 {
            assert!((y64[i] - y32[i] as f64).abs() < 1e-6);
        }
    }
}
