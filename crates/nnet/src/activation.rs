//! Activation functions and their derivatives.
//!
//! Deep Potential uses `tanh` throughout (embedding and fitting nets). The
//! others are kept for ablations and to exercise the graph runtime with more
//! than one nonlinearity.

use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent — the Deep Potential default.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Identity (used by output layers).
    Linear,
}

impl Activation {
    /// Apply the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Gelu => {
                let c = (2.0 / std::f64::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
            }
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the *input* `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Gelu => {
                // d/dx of the tanh approximation.
                let c = (2.0 / std::f64::consts::PI).sqrt();
                let u = c * (x + 0.044715 * x * x * x);
                let t = u.tanh();
                let du = c * (1.0 + 3.0 * 0.044715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
            }
            Activation::Linear => 1.0,
        }
    }

    /// Fused value + derivative at an f32 input, sharing one transcendental
    /// evaluation where the math allows (tanh and sigmoid derivatives are
    /// functions of the activation value itself).
    ///
    /// **Bitwise contract:** returns exactly
    /// `(self.apply_f32(x), self.derivative(x as f64))` — the batched
    /// inference path relies on this to halve the transcendental count while
    /// staying bit-identical to the solo path, and
    /// `tests::fused_value_grad_is_bitwise_identical` enforces it.
    #[inline]
    pub fn value_grad_f32(self, x: f32) -> (f32, f64) {
        match self {
            Activation::Tanh => {
                let t = (x as f64).tanh();
                (t as f32, 1.0 - t * t)
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-(x as f64)).exp());
                (s as f32, s * (1.0 - s))
            }
            // Gelu's derivative is not a function of its value; no sharing.
            _ => (self.apply_f32(x), self.derivative(x as f64)),
        }
    }

    /// Apply in place over a buffer (the fused "activation kernel").
    pub fn apply_slice(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Single-precision apply — the `MIX-fp32` path evaluates activations in
    /// f32 (the paper keeps fitting-net activations in fp32 even under
    /// `MIX-fp16`, so there is intentionally no f16 variant).
    #[inline]
    pub fn apply_f32(self, x: f32) -> f32 {
        self.apply(x as f64) as f32
    }

    /// Apply in place over an f32 buffer.
    pub fn apply_slice_f32(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply_f32(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_values() {
        assert_eq!(Activation::Tanh.apply(0.0), 0.0);
        assert!((Activation::Tanh.apply(1.0) - 0.761594155955765).abs() < 1e-12);
        assert!(Activation::Tanh.apply(50.0) <= 1.0);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let h = 1e-6;
        for act in [Activation::Tanh, Activation::Sigmoid, Activation::Gelu, Activation::Linear] {
            for &x in &[-2.0, -0.5, 0.0, 0.3, 1.7] {
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let an = act.derivative(x);
                assert!((fd - an).abs() < 1e-6, "{act:?} at {x}: fd={fd} an={an}");
            }
        }
    }

    #[test]
    fn slice_apply_matches_scalar() {
        let mut xs = vec![-1.0, 0.0, 2.0];
        Activation::Sigmoid.apply_slice(&mut xs);
        assert!((xs[0] - Activation::Sigmoid.apply(-1.0)).abs() < 1e-15);
        assert_eq!(xs[1], 0.5);
    }

    #[test]
    fn fused_value_grad_is_bitwise_identical() {
        for act in [Activation::Tanh, Activation::Sigmoid, Activation::Gelu, Activation::Linear] {
            for i in -4000..4000 {
                let x = i as f32 * 2.5e-3;
                let (v, d) = act.value_grad_f32(x);
                assert_eq!(v.to_bits(), act.apply_f32(x).to_bits(), "{act:?} value at {x}");
                assert_eq!(d.to_bits(), act.derivative(x as f64).to_bits(), "{act:?} grad at {x}");
            }
        }
    }

    #[test]
    fn gelu_is_monotone_near_origin_and_bounded_below() {
        let g = Activation::Gelu;
        assert!(g.apply(0.0).abs() < 1e-15);
        assert!(g.apply(3.0) > g.apply(1.0));
        assert!(g.apply(-10.0).abs() < 1e-6);
    }
}
